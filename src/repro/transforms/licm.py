"""Loop-invariant code motion.

Hoists computations whose operands are defined outside the loop into
the loop preheader.  Only side-effect-free, non-trapping instructions
move (loads move only when the loop contains no possible memory write —
the conservative answer without running a full alias analysis).
"""

from __future__ import annotations

from ..analysis.cfg import split_critical_edge
from ..analysis.dominators import DominatorTree
from ..analysis.loops import Loop, LoopInfo
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    BinaryOperator, BranchInst, CastInst, GetElementPtrInst, Instruction,
    LoadInst, Opcode, PhiNode, ShiftInst,
)
from ..core.module import Function
from ..core.values import Constant, ConstantInt, Value


class LICM:
    """The pass object (see module docstring)."""

    name = "licm"

    def run_on_function(self, function: Function) -> bool:
        loop_info = LoopInfo(function)
        changed = False
        # Process inner loops first so hoisted code can keep moving out.
        loops = sorted(loop_info.all_loops(), key=lambda l: -l.depth)
        for loop in loops:
            changed |= self._process_loop(function, loop, loop_info.domtree)
        return changed

    def _process_loop(self, function: Function, loop: Loop,
                      domtree: DominatorTree) -> bool:
        preheader = loop.preheader()
        created = False
        if preheader is None:
            preheader = _create_preheader(function, loop)
            if preheader is None:
                return False
            # The rewiring alone (new block, phi and branch edits) is a
            # change, whether or not anything hoists into it.
            created = True
        loop_writes_memory = any(
            inst.may_write_memory()
            for block in loop.blocks
            for inst in block.instructions
        )
        changed = created
        moved = True
        while moved:
            moved = False
            for block in loop.blocks:
                for inst in list(block.instructions):
                    if not _is_hoistable(inst, loop_writes_memory):
                        continue
                    if not _operands_invariant(inst, loop):
                        continue
                    if isinstance(inst, LoadInst) and not _dominates_exits(
                        inst, loop, domtree
                    ):
                        # Hoisting a conditional load would speculate a
                        # possibly-trapping memory access.
                        continue
                    block.instructions.remove(inst)
                    inst.parent = None
                    preheader.insert_before_terminator(inst)
                    moved = True
                    changed = True
        return changed


def _is_hoistable(inst: Instruction, loop_writes_memory: bool) -> bool:
    if isinstance(inst, (CastInst, GetElementPtrInst, ShiftInst)):
        return True
    if isinstance(inst, BinaryOperator):
        # div/rem by a possibly-zero value would hoist a trap onto paths
        # that never executed it; require a non-zero constant divisor.
        if inst.opcode in (Opcode.DIV, Opcode.REM):
            divisor = inst.operands[1]
            return isinstance(divisor, Constant) and not divisor.is_null_value()
        return True
    if isinstance(inst, LoadInst):
        return not loop_writes_memory
    return False


def _dominates_exits(inst: Instruction, loop: Loop, domtree: DominatorTree) -> bool:
    block = inst.parent
    return all(
        domtree.dominates_block(block, src) for src, _ in loop.exit_edges()
    )


def _operands_invariant(inst: Instruction, loop: Loop) -> bool:
    for operand in inst.operands:
        if isinstance(operand, Instruction) and loop.contains(operand.parent):
            return False
    return True


def _create_preheader(function: Function, loop: Loop):
    """Insert a dedicated preheader block before the loop header."""
    outside = [
        p for p in loop.header.unique_predecessors() if not loop.contains(p)
    ]
    if not outside:
        return None
    preheader = BasicBlock(f"{loop.header.name}.preheader")
    position = function.blocks.index(loop.header)
    function.blocks.insert(position, preheader)
    preheader.parent = function
    preheader.append(BranchInst(loop.header))
    for phi in loop.header.phis():
        incoming_values = []
        for pred in outside:
            value = phi.incoming_for_block(pred)
            incoming_values.append((value, pred))
        if len({id(v) for v, _ in incoming_values}) == 1:
            merged: Value = incoming_values[0][0]
        else:
            merged_phi = PhiNode(phi.type, phi.name or "ph")
            preheader.insert(0, merged_phi)
            for value, pred in incoming_values:
                merged_phi.add_incoming(value, pred)
            merged = merged_phi
        for _, pred in incoming_values:
            phi.remove_incoming(pred)
        phi.add_incoming(merged, preheader)
    for pred in outside:
        term = pred.terminator
        for index, operand in enumerate(term.operands):
            if operand is loop.header:
                term.set_operand(index, preheader)
    return preheader
