"""Loop-invariant code motion.

Hoists computations whose operands are defined outside the loop into
the loop preheader.  Only side-effect-free, non-trapping instructions
move.  Loads move when no memory write in the loop can clobber the
loaded location: trivially when the loop writes no memory at all, and
otherwise when DSA node disambiguation (stores, frees) and Mod/Ref
analysis (direct calls) rule out every writer.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.alias import AliasResult, alias
from ..analysis.cfg import split_critical_edge
from ..analysis.dominators import DominatorTree
from ..analysis.loops import Loop, LoopInfo
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    BinaryOperator, BranchInst, CallInst, CastInst, FreeInst,
    GetElementPtrInst, Instruction, InvokeInst, LoadInst, Opcode, PhiNode,
    ShiftInst, StoreInst,
)
from ..core.module import Function
from ..core.values import Constant, ConstantInt, Value


class _MemoryDisambiguator:
    """DSA/ModRef answers to "may this writer clobber this pointer?".

    Built lazily, at most once per module: the first loop that both
    writes memory and contains a candidate load pays for the analysis,
    every later loop reuses it.  Two pointers are disjoint when their
    DSA nodes differ and *neither* is ``unknown`` — two distinct
    unknown nodes may still overlap, so unknown never disambiguates.
    """

    def __init__(self, module):
        from ..analysis.dsa import DataStructureAnalysis
        from ..analysis.modref import ModRefAnalysis

        self.dsa = DataStructureAnalysis(module)
        self.modref = ModRefAnalysis(module, self.dsa)

    def _node_of(self, pointer):
        return self.dsa._cell_of(pointer).node.find()

    def may_clobber(self, writer: Instruction, pointer: Value) -> bool:
        node = self._node_of(pointer)
        if node.unknown:
            return True
        if isinstance(writer, (StoreInst, FreeInst)):
            written = writer.pointer
            if isinstance(writer, StoreInst) and \
                    alias(pointer, written) is AliasResult.NO_ALIAS:
                return False
            other = self._node_of(written)
            return other.unknown or other is node
        if isinstance(writer, (CallInst, InvokeInst)):
            target = writer.callee
            if isinstance(target, Function):
                return self.modref.may_modify(target, pointer)
            return True  # indirect call: anything may be written
        return True  # vaarg and anything else that writes


class LICM:
    """The pass object (see module docstring)."""

    name = "licm"

    def __init__(self):
        self._disambiguators: dict = {}
        self.loads_hoisted_past_writes = 0

    def statistics(self) -> dict:
        return {"loads-hoisted-past-writes": self.loads_hoisted_past_writes}

    def run_on_function(self, function: Function) -> bool:
        loop_info = LoopInfo(function)
        changed = False
        # Process inner loops first so hoisted code can keep moving out.
        loops = sorted(loop_info.all_loops(), key=lambda l: -l.depth)
        for loop in loops:
            changed |= self._process_loop(function, loop, loop_info.domtree)
        return changed

    def _disambiguator(self, function: Function) -> \
            Optional[_MemoryDisambiguator]:
        module = function.parent
        if module is None:
            return None
        key = id(module)
        if key not in self._disambiguators:
            self._disambiguators[key] = _MemoryDisambiguator(module)
        return self._disambiguators[key]

    def _load_is_safe(self, load: LoadInst, writers: list,
                      function: Function) -> bool:
        """No writer in the loop can clobber what ``load`` reads."""
        if not writers:
            return True
        aa = self._disambiguator(function)
        if aa is None:
            return False
        return not any(aa.may_clobber(writer, load.pointer)
                       for writer in writers)

    def _process_loop(self, function: Function, loop: Loop,
                      domtree: DominatorTree) -> bool:
        preheader = loop.preheader()
        created = False
        if preheader is None:
            preheader = _create_preheader(function, loop)
            if preheader is None:
                return False
            # The rewiring alone (new block, phi and branch edits) is a
            # change, whether or not anything hoists into it.
            created = True
        writers = [
            inst
            for block in loop.blocks
            for inst in block.instructions
            if inst.may_write_memory()
        ]
        changed = created
        moved = True
        while moved:
            moved = False
            for block in loop.blocks:
                for inst in list(block.instructions):
                    if not _is_hoistable(inst):
                        continue
                    if not _operands_invariant(inst, loop):
                        continue
                    if isinstance(inst, LoadInst):
                        if not self._load_is_safe(inst, writers, function):
                            continue
                        if not _dominates_exits(inst, loop, domtree):
                            # Hoisting a conditional load would speculate
                            # a possibly-trapping memory access.
                            continue
                        if writers:
                            self.loads_hoisted_past_writes += 1
                    block.instructions.remove(inst)
                    inst.parent = None
                    preheader.insert_before_terminator(inst)
                    moved = True
                    changed = True
        return changed


def _is_hoistable(inst: Instruction) -> bool:
    if isinstance(inst, (CastInst, GetElementPtrInst, ShiftInst)):
        return True
    if isinstance(inst, BinaryOperator):
        # div/rem by a possibly-zero value would hoist a trap onto paths
        # that never executed it; require a non-zero constant divisor.
        if inst.opcode in (Opcode.DIV, Opcode.REM):
            divisor = inst.operands[1]
            return isinstance(divisor, Constant) and not divisor.is_null_value()
        return True
    return isinstance(inst, LoadInst)


def _dominates_exits(inst: Instruction, loop: Loop, domtree: DominatorTree) -> bool:
    block = inst.parent
    return all(
        domtree.dominates_block(block, src) for src, _ in loop.exit_edges()
    )


def _operands_invariant(inst: Instruction, loop: Loop) -> bool:
    for operand in inst.operands:
        if isinstance(operand, Instruction) and loop.contains(operand.parent):
            return False
    return True


def _create_preheader(function: Function, loop: Loop):
    """Insert a dedicated preheader block before the loop header."""
    outside = [
        p for p in loop.header.unique_predecessors() if not loop.contains(p)
    ]
    if not outside:
        return None
    preheader = BasicBlock(f"{loop.header.name}.preheader")
    position = function.blocks.index(loop.header)
    function.blocks.insert(position, preheader)
    preheader.parent = function
    preheader.append(BranchInst(loop.header))
    for phi in loop.header.phis():
        incoming_values = []
        for pred in outside:
            value = phi.incoming_for_block(pred)
            incoming_values.append((value, pred))
        if len({id(v) for v, _ in incoming_values}) == 1:
            merged: Value = incoming_values[0][0]
        else:
            merged_phi = PhiNode(phi.type, phi.name or "ph")
            preheader.insert(0, merged_phi)
            for value, pred in incoming_values:
                merged_phi.add_incoming(value, pred)
            merged = merged_phi
        for _, pred in incoming_values:
            phi.remove_incoming(pred)
        phi.add_incoming(merged, preheader)
    for pred in outside:
        term = pred.terminator
        for index, operand in enumerate(term.operands):
            if operand is loop.header:
                term.set_operand(index, preheader)
    return preheader
