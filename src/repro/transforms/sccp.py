"""Sparse conditional constant propagation (Wegman–Zadeck).

Runs a three-level lattice (undefined → constant → overdefined) over
SSA values while simultaneously tracking edge executability, so
constants are propagated *through* conditional structure: a branch
whose condition folds keeps its dead edge non-executable, and phi nodes
only merge values from executable edges.  This is the kind of fast,
flow-insensitive-cost / flow-sensitive-benefit algorithm the paper
credits SSA form with enabling.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core import constfold
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    BranchInst, CastInst, Instruction, Opcode, PhiNode, ShiftInst, SwitchInst,
)
from ..core.module import Function
from ..core.values import Constant, ConstantBool, ConstantInt, UndefValue, Value
from .utils import constant_fold_terminator, replace_and_erase

_UNDEFINED = "undefined"
_OVERDEFINED = "overdefined"

#: Lattice element: the sentinel strings or a Constant.
Lattice = Union[str, Constant]


class SCCP:
    """The pass object (see module docstring)."""

    name = "sccp"

    def run_on_function(self, function: Function) -> bool:
        solver = _Solver(function)
        solver.solve()
        return solver.rewrite()


class _Solver:
    def __init__(self, function: Function):
        self.function = function
        self.lattice: dict[int, Lattice] = {}
        self.executable_edges: set[tuple[int, int]] = set()
        self.executable_blocks: set[int] = set()
        self.ssa_worklist: list[Instruction] = []
        self.block_worklist: list[BasicBlock] = [function.entry_block]

    # -- lattice helpers ------------------------------------------------------

    def value_of(self, value: Value) -> Lattice:
        if isinstance(value, UndefValue):
            return _UNDEFINED
        if isinstance(value, Constant):
            return value
        if isinstance(value, Instruction):
            return self.lattice.get(id(value), _UNDEFINED)
        return _OVERDEFINED  # arguments, globals used as scalars, etc.

    def _raise_to(self, inst: Instruction, new_value: Lattice) -> None:
        old = self.lattice.get(id(inst), _UNDEFINED)
        if old == _OVERDEFINED or _lattice_equal(old, new_value):
            return
        if old != _UNDEFINED and not _lattice_equal(old, new_value):
            new_value = _OVERDEFINED
        self.lattice[id(inst)] = new_value
        for user in inst.users():
            if isinstance(user, Instruction):
                self.ssa_worklist.append(user)

    # -- solving --------------------------------------------------------------

    def solve(self) -> None:
        while self.block_worklist or self.ssa_worklist:
            while self.block_worklist:
                block = self.block_worklist.pop()
                if id(block) in self.executable_blocks:
                    continue
                self.executable_blocks.add(id(block))
                for inst in block.instructions:
                    self.visit(inst)
            while self.ssa_worklist:
                inst = self.ssa_worklist.pop()
                if inst.parent is not None and id(inst.parent) in self.executable_blocks:
                    self.visit(inst)

    def _mark_edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        edge = (id(src), id(dst))
        if edge in self.executable_edges:
            return
        self.executable_edges.add(edge)
        if id(dst) in self.executable_blocks:
            # New edge into an already-visited block: phis must re-merge.
            for phi in dst.phis():
                self.visit(phi)
        else:
            self.block_worklist.append(dst)

    def visit(self, inst: Instruction) -> None:
        if isinstance(inst, PhiNode):
            self._visit_phi(inst)
        elif isinstance(inst, BranchInst):
            self._visit_branch(inst)
        elif isinstance(inst, SwitchInst):
            self._visit_switch(inst)
        elif inst.is_terminator:
            for succ in inst.successors:  # invoke/unwind
                self._mark_edge(inst.parent, succ)
            if not inst.type.is_void:
                # An invoke produces a runtime value.
                self._raise_to(inst, _OVERDEFINED)
        elif inst.is_binary_op:
            self._visit_binary(inst)
        elif isinstance(inst, ShiftInst):
            self._visit_shift(inst)
        elif isinstance(inst, CastInst):
            self._visit_cast(inst)
        elif not inst.type.is_void:
            self._raise_to(inst, _OVERDEFINED)

    def _visit_phi(self, phi: PhiNode) -> None:
        merged: Lattice = _UNDEFINED
        for value, pred in phi.incoming:
            if (id(pred), id(phi.parent)) not in self.executable_edges:
                continue
            incoming = self.value_of(value)
            if incoming == _UNDEFINED:
                continue
            if incoming == _OVERDEFINED:
                merged = _OVERDEFINED
                break
            if merged == _UNDEFINED:
                merged = incoming
            elif not _lattice_equal(merged, incoming):
                merged = _OVERDEFINED
                break
        if merged != _UNDEFINED:
            self._raise_to(phi, merged)

    def _visit_branch(self, inst: BranchInst) -> None:
        block = inst.parent
        if not inst.is_conditional:
            self._mark_edge(block, inst.operands[0])
            return
        cond = self.value_of(inst.condition)
        if isinstance(cond, ConstantBool):
            taken = inst.operands[1] if cond.value else inst.operands[2]
            self._mark_edge(block, taken)
        elif cond == _OVERDEFINED:
            self._mark_edge(block, inst.operands[1])
            self._mark_edge(block, inst.operands[2])
        # undefined: no edge executable yet

    def _visit_switch(self, inst: SwitchInst) -> None:
        block = inst.parent
        value = self.value_of(inst.value)
        if isinstance(value, ConstantInt):
            target = inst.default_dest
            for case_value, dest in inst.cases:
                if case_value.value == value.value:  # type: ignore[attr-defined]
                    target = dest
                    break
            self._mark_edge(block, target)
        elif value == _OVERDEFINED:
            for succ in inst.successors:
                self._mark_edge(block, succ)

    def _visit_binary(self, inst: Instruction) -> None:
        lhs = self.value_of(inst.operands[0])
        rhs = self.value_of(inst.operands[1])
        if lhs == _OVERDEFINED or rhs == _OVERDEFINED:
            self._raise_to(inst, _OVERDEFINED)
            return
        if lhs == _UNDEFINED or rhs == _UNDEFINED:
            return
        folded = constfold.fold_binary(inst.opcode, lhs, rhs)
        self._raise_to(inst, folded if folded is not None else _OVERDEFINED)

    def _visit_shift(self, inst: ShiftInst) -> None:
        value = self.value_of(inst.value)
        amount = self.value_of(inst.amount)
        if value == _OVERDEFINED or amount == _OVERDEFINED:
            self._raise_to(inst, _OVERDEFINED)
            return
        if value == _UNDEFINED or amount == _UNDEFINED:
            return
        folded = constfold.fold_shift(inst.opcode, value, amount)
        self._raise_to(inst, folded if folded is not None else _OVERDEFINED)

    def _visit_cast(self, inst: CastInst) -> None:
        value = self.value_of(inst.value)
        if value == _OVERDEFINED:
            self._raise_to(inst, _OVERDEFINED)
            return
        if value == _UNDEFINED:
            return
        folded = constfold.fold_cast(value, inst.type)
        self._raise_to(inst, folded if folded is not None else _OVERDEFINED)

    # -- rewriting -----------------------------------------------------------------

    def rewrite(self) -> bool:
        changed = False
        for block in self.function.blocks:
            if id(block) not in self.executable_blocks:
                continue
            for inst in list(block.instructions):
                value = self.lattice.get(id(inst))
                if isinstance(value, Constant) and not inst.has_side_effects():
                    replace_and_erase(inst, value)
                    changed = True
        # Branches whose condition became constant fold here; the dead
        # blocks themselves are left for SimplifyCFG to sweep.
        for block in list(self.function.blocks):
            if id(block) in self.executable_blocks:
                changed |= constant_fold_terminator(block)
        return changed


def _lattice_equal(a: Lattice, b: Lattice) -> bool:
    if isinstance(a, str) or isinstance(b, str):
        return a is b or a == b
    if type(a) is not type(b) or a.type is not b.type:
        return False
    return getattr(a, "value", None) == getattr(b, "value", None)
