"""Pass management: scheduling function and module passes over a module.

The optimizations are "built into libraries, making it easy for
front-ends to use them" (paper section 3.2); the pass manager is that
library interface.  Passes are callables reporting whether they changed
anything; the manager sequences them, optionally re-verifying after
each pass so that a mis-transforming pass fails loudly at its own site.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Protocol, Sequence

from ..core.module import Function, Module
from ..core.verifier import verify_function, verify_module


class FunctionPass(Protocol):
    """A transformation over one function; returns True if it changed IR."""

    name: str

    def run_on_function(self, function: Function) -> bool: ...


class ModulePass(Protocol):
    """A transformation over a whole module; returns True if changed."""

    name: str

    def run_on_module(self, module: Module) -> bool: ...


class PassTimings:
    """Wall-clock time accumulated per pass name (paper Table 2 style)."""

    def __init__(self):
        self.seconds: dict[str, float] = {}
        self.runs: dict[str, int] = {}

    def record(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.runs[name] = self.runs.get(name, 0) + 1

    def report(self) -> str:
        lines = [f"{name:24s} {secs:8.4f}s ({self.runs[name]} runs)"
                 for name, secs in sorted(self.seconds.items())]
        return "\n".join(lines)


class PassManager:
    """Runs a sequence of module/function passes over a module."""

    def __init__(self, verify_each: bool = False):
        self.passes: list[object] = []
        self.verify_each = verify_each
        self.timings = PassTimings()

    def add(self, pass_obj) -> "PassManager":
        if not hasattr(pass_obj, "run_on_function") and not hasattr(pass_obj, "run_on_module"):
            raise TypeError(f"{pass_obj!r} is not a pass")
        self.passes.append(pass_obj)
        return self

    def run(self, module: Module) -> bool:
        changed = False
        for pass_obj in self.passes:
            start = time.perf_counter()
            if hasattr(pass_obj, "run_on_module"):
                this_changed = pass_obj.run_on_module(module)
            else:
                this_changed = False
                for function in list(module.defined_functions()):
                    if pass_obj.run_on_function(function):
                        this_changed = True
            self.timings.record(getattr(pass_obj, "name", type(pass_obj).__name__),
                                time.perf_counter() - start)
            changed |= this_changed
            if self.verify_each and this_changed:
                verify_module(module)
        return changed

    def statistics(self) -> dict[str, dict[str, int]]:
        """Aggregate per-pass counters (the ``lc-opt -stats`` report).

        A pass participates either by defining ``statistics() -> dict``
        or by carrying a ``stats`` object whose integer attributes are
        taken as counters.  Counters from repeated runs of a pass with
        the same name are summed.
        """
        merged: dict[str, dict[str, int]] = {}
        for pass_obj in self.passes:
            counters: dict[str, int] = {}
            stats_fn = getattr(pass_obj, "statistics", None)
            if callable(stats_fn):
                counters = dict(stats_fn())
            else:
                stats = getattr(pass_obj, "stats", None)
                if stats is not None:
                    for attr in dir(stats):
                        if attr.startswith("_"):
                            continue
                        value = getattr(stats, attr)
                        if isinstance(value, int) and not isinstance(value, bool):
                            counters[attr] = value
            if not counters:
                continue
            name = getattr(pass_obj, "name", type(pass_obj).__name__)
            bucket = merged.setdefault(name, {})
            for counter, value in counters.items():
                bucket[counter] = bucket.get(counter, 0) + value
        return merged

    def run_until_fixpoint(self, module: Module, max_iterations: int = 8) -> int:
        """Re-run the whole pipeline until nothing changes; returns iterations."""
        for iteration in range(max_iterations):
            if not self.run(module):
                return iteration + 1
        return max_iterations


class FunctionPassAdaptor:
    """Wrap a bare ``Callable[[Function], bool]`` as a function pass."""

    def __init__(self, fn: Callable[[Function], bool], name: Optional[str] = None):
        self._fn = fn
        self.name = name or fn.__name__

    def run_on_function(self, function: Function) -> bool:
        return self._fn(function)


class ModulePassAdaptor:
    """Wrap a bare ``Callable[[Module], bool]`` as a module pass."""

    def __init__(self, fn: Callable[[Module], bool], name: Optional[str] = None):
        self._fn = fn
        self.name = name or fn.__name__

    def run_on_module(self, module: Module) -> bool:
        return self._fn(module)
