"""Pass management: scheduling function and module passes over a module.

The optimizations are "built into libraries, making it easy for
front-ends to use them" (paper section 3.2); the pass manager is that
library interface.  Passes are callables reporting whether they changed
anything; the manager sequences them, optionally re-verifying after
each pass so that a mis-transforming pass fails loudly at its own site.

The changed flag each pass returns is load-bearing: fixpoint drivers
stop iterating on it, and managers skip re-verification on the strength
of a ``False``.  ``verify_each`` mode therefore *audits* the flag with
a serialization digest taken after every pass: a pass that mutates the
module while reporting "no change" raises :class:`ChangedFlagLie` at
its own site instead of shipping unverified IR, and a pass that
over-reports (claims a change but moved nothing) skips the redundant
re-verify.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, Protocol, Sequence

from ..core.module import Function, Module
from ..core.verifier import verify_function, verify_module


class ChangedFlagLie(Exception):
    """A pass mutated the module while reporting "no change"."""

    def __init__(self, pass_name: str):
        super().__init__(
            f"pass {pass_name!r} changed the module but reported no change")
        self.pass_name = pass_name


def _module_digest(module: Module) -> bytes:
    """Cheap change detector: a hash of the serialized module.

    Bytecode rather than text, because the bytecode carries flags the
    printer does not (function purity), so a pass cannot change
    anything observable without moving the digest.
    """
    from hashlib import sha256

    from ..bitcode import write_bytecode

    return sha256(write_bytecode(module, strip_names=False)).digest()


class FunctionPass(Protocol):
    """A transformation over one function; returns True if it changed IR."""

    name: str

    def run_on_function(self, function: Function) -> bool: ...


class ModulePass(Protocol):
    """A transformation over a whole module; returns True if changed."""

    name: str

    def run_on_module(self, module: Module) -> bool: ...


class PassTimings:
    """Wall-clock time accumulated per pass name (paper Table 2 style)."""

    def __init__(self):
        self.seconds: dict[str, float] = {}
        self.runs: dict[str, int] = {}

    def record(self, name: str, elapsed: float) -> None:
        self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
        self.runs[name] = self.runs.get(name, 0) + 1

    def report(self) -> str:
        lines = [f"{name:24s} {secs:8.4f}s ({self.runs[name]} runs)"
                 for name, secs in sorted(self.seconds.items())]
        return "\n".join(lines)


class PassManager:
    """Runs a sequence of module/function passes over a module."""

    def __init__(self, verify_each: bool = False,
                 timings: Optional[PassTimings] = None):
        self.passes: list[object] = []
        self.verify_each = verify_each
        # A caller may pass a shared sink so one -time-passes report
        # covers every manager a driver invocation creates.
        self.timings = timings if timings is not None else PassTimings()

    def add(self, pass_obj) -> "PassManager":
        if not hasattr(pass_obj, "run_on_function") and not hasattr(pass_obj, "run_on_module"):
            raise TypeError(f"{pass_obj!r} is not a pass")
        self.passes.append(pass_obj)
        return self

    def run(self, module: Module) -> bool:
        changed = False
        digest = _module_digest(module) if self.verify_each else None
        for pass_obj in self.passes:
            name = getattr(pass_obj, "name", type(pass_obj).__name__)
            start = time.perf_counter()
            if hasattr(pass_obj, "run_on_module"):
                this_changed = pass_obj.run_on_module(module)
            else:
                this_changed = False
                for function in list(module.defined_functions()):
                    if pass_obj.run_on_function(function):
                        this_changed = True
            # Timed before the audit below: digest/verify overhead is
            # the manager's, not the pass's.
            self.timings.record(name, time.perf_counter() - start)
            changed |= this_changed
            if self.verify_each:
                post = _module_digest(module)
                if post != digest:
                    if not this_changed:
                        raise ChangedFlagLie(name)
                    verify_module(module)
                digest = post
        return changed

    def statistics(self) -> dict[str, dict[str, int]]:
        """Aggregate per-pass counters (the ``lc-opt -stats`` report).

        A pass participates either by defining ``statistics() -> dict``
        or by carrying a ``stats`` object whose integer attributes are
        taken as counters.  Counters from repeated runs of a pass with
        the same name are summed.
        """
        merged: dict[str, dict[str, int]] = {}
        for pass_obj in self.passes:
            counters: dict[str, int] = {}
            stats_fn = getattr(pass_obj, "statistics", None)
            if callable(stats_fn):
                counters = dict(stats_fn())
            else:
                stats = getattr(pass_obj, "stats", None)
                if stats is not None:
                    for attr in dir(stats):
                        if attr.startswith("_"):
                            continue
                        value = getattr(stats, attr)
                        if isinstance(value, int) and not isinstance(value, bool):
                            counters[attr] = value
            if not counters:
                continue
            name = getattr(pass_obj, "name", type(pass_obj).__name__)
            bucket = merged.setdefault(name, {})
            for counter, value in counters.items():
                bucket[counter] = bucket.get(counter, 0) + value
        return merged

    def run_until_fixpoint(self, module: Module, max_iterations: int = 8) -> int:
        """Re-run the whole pipeline until nothing changes; returns iterations."""
        for iteration in range(max_iterations):
            if not self.run(module):
                return iteration + 1
        return max_iterations


class FunctionPassAdaptor:
    """Wrap a bare ``Callable[[Function], bool]`` as a function pass."""

    def __init__(self, fn: Callable[[Function], bool], name: Optional[str] = None):
        self._fn = fn
        self.name = name or fn.__name__

    def run_on_function(self, function: Function) -> bool:
        return self._fn(function)


class ModulePassAdaptor:
    """Wrap a bare ``Callable[[Module], bool]`` as a module pass."""

    def __init__(self, fn: Callable[[Module], bool], name: Optional[str] = None):
        self._fn = fn
        self.name = name or fn.__name__

    def run_on_module(self, module: Module) -> bool:
        return self._fn(module)
