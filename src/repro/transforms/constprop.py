"""Constant propagation: the simple worklist form.

Folds instructions whose operands are all constants and propagates the
results to their users; also folds branches on constants (leaving the
CFG cleanup to SimplifyCFG).  For the flow-sensitive version that
reasons about unreachable edges, see :mod:`repro.transforms.sccp`.
"""

from __future__ import annotations

from ..core.module import Function
from .utils import constant_fold_terminator, fold_instruction, replace_and_erase


class ConstantPropagation:
    """The pass object (see module docstring)."""

    name = "constprop"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        worklist = [inst for block in function.blocks for inst in block.instructions]
        while worklist:
            inst = worklist.pop()
            if inst.parent is None:
                continue
            folded = fold_instruction(inst)
            if folded is None:
                continue
            worklist.extend(
                user for user in inst.users() if user is not inst
            )
            replace_and_erase(inst, folded)
            changed = True
        for block in list(function.blocks):
            changed |= constant_fold_terminator(block)
        return changed
