"""SAFECode-style array bounds checking (paper section 4.2.2).

SAFECode "relies on the array type information in LLVM to enforce array
bounds safety, and uses interprocedural analysis to eliminate runtime
bounds checks in many cases".  This pass reproduces the mechanism:

* **insertion** — every ``getelementptr`` that indexes a sized array
  type with a run-time index gets a guard comparing the index against
  the array bound; out-of-range indexing calls the ``__rt_bounds_fail``
  runtime (which aborts), so a memory error becomes a defined trap;
* **elimination** — checks whose index is provably in range are never
  emitted: constant indices inside the bound, and (after the scalar
  pipeline has run) indices SCCP already folded.  The check counters
  record how many checks static reasoning removed, which is the
  statistic the SAFECode papers report.

The array *type* information that makes this possible is exactly what
the paper argues a low-level representation should keep.
"""

from __future__ import annotations

from ..core import types
from ..core.basicblock import BasicBlock
from ..core.builder import IRBuilder
from ..core.instructions import (
    BranchInst, GetElementPtrInst, Instruction, Opcode,
)
from ..core.module import Function, Module
from ..core.values import ConstantInt, Value


class BoundsCheckStats:
    def __init__(self):
        self.checks_inserted = 0
        self.checks_elided = 0


class BoundsCheckInsertion:
    """The pass object (see module docstring)."""

    name = "safecode-bounds"

    FAIL_FUNCTION = "__rt_bounds_fail"

    def __init__(self):
        self.stats = BoundsCheckStats()

    def statistics(self) -> dict:
        """Counters surfaced through ``lc-opt -stats``."""
        return {
            "checks_inserted": self.stats.checks_inserted,
            "checks_elided": self.stats.checks_elided,
        }

    def run_on_module(self, module: Module) -> bool:
        fail = module.get_or_insert_function(
            types.function(types.VOID, [types.LONG, types.LONG]),
            self.FAIL_FUNCTION,
        )
        changed = False
        for function in list(module.defined_functions()):
            if function.name == self.FAIL_FUNCTION:
                continue
            changed |= self._run_on_function(function, fail)
        return changed

    def _run_on_function(self, function: Function, fail: Function) -> bool:
        changed = False
        for block in list(function.blocks):
            for inst in list(block.instructions):
                if not isinstance(inst, GetElementPtrInst):
                    continue
                if inst.parent is None:
                    continue
                for position, bound in self._checkable_indices(inst):
                    index = inst.operands[1 + position]
                    if self._provably_in_range(index, bound):
                        self.stats.checks_elided += 1
                        continue
                    self._insert_guard(function, inst, index, bound, fail)
                    self.stats.checks_inserted += 1
                    changed = True
        return changed

    def _checkable_indices(self, gep: GetElementPtrInst):
        """(index position, array bound) pairs for sized-array steps."""
        current = gep.pointer.type.pointee
        result = []
        for position, index in enumerate(gep.indices):
            if position == 0:
                continue  # stepping over the pointer has no static bound
            if current.is_struct:
                current = current.fields[index.value]  # type: ignore[attr-defined]
            else:  # array
                result.append((position, current.count))
                current = current.element
        return result

    def _provably_in_range(self, index: Value, bound: int) -> bool:
        return isinstance(index, ConstantInt) and 0 <= index.value < bound

    def _insert_guard(self, function: Function, gep: GetElementPtrInst,
                      index: Value, bound: int, fail: Function) -> None:
        """Split before the GEP and branch to the failure path when the
        index is outside [0, bound)."""
        block = gep.parent
        position = block.instructions.index(gep)
        continuation = block.split_at(position, f"{block.name}.inbounds")

        # Replace the fall-through branch with the guarded dispatch.
        guard_builder = IRBuilder(block)
        block.terminator.erase_from_parent()
        wide = guard_builder.cast(index, types.LONG, "bc.idx")
        too_low = guard_builder.setlt(wide, ConstantInt(types.LONG, 0), "bc.lo")
        too_high = guard_builder.setge(wide, ConstantInt(types.LONG, bound),
                                       "bc.hi")
        out = guard_builder.or_(too_low, too_high, "bc.out")

        fail_block = BasicBlock(f"{block.name}.boundsfail")
        insert_at = function.blocks.index(continuation)
        function.blocks.insert(insert_at, fail_block)
        fail_block.parent = function
        fail_builder = IRBuilder(fail_block)
        fail_builder.call(fail, [wide, ConstantInt(types.LONG, bound)])
        fail_builder.unwind()

        guard_builder.cond_br(out, fail_block, continuation)


def bounds_fail_external(interp, args):
    """The runtime half: a bounds violation is a loud, defined fault."""
    from ..execution.interpreter import ExecutionError

    raise ExecutionError(
        f"array index {args[0]} out of bounds (size {args[1]})"
    )
