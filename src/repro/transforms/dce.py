"""Dead code elimination: trivial (DCE) and aggressive (ADCE).

ADCE assumes instructions are dead until proven otherwise (the same
"assume dead until proven live" stance as the aggressive DGE/DAE passes
in paper Table 2), so computation cycles that only feed themselves are
removed — plain DCE cannot do that.
"""

from __future__ import annotations

from ..core.instructions import Instruction, PhiNode
from ..core.module import Function
from ..core.values import UndefValue
from .utils import delete_dead_instructions


class DeadCodeElimination:
    """Deletes trivially dead (unused, side-effect-free) instructions."""

    name = "dce"

    def run_on_function(self, function: Function) -> bool:
        return delete_dead_instructions(function)


class AggressiveDCE:
    """Assumes everything dead; marks live from roots and deletes the rest.

    Roots are instructions with observable effects (stores, calls,
    terminators, ...).  Everything a live instruction uses becomes live.
    Dead instructions — including cyclic phi webs — are deleted.
    """

    name = "adce"

    def run_on_function(self, function: Function) -> bool:
        live: set[int] = set()
        worklist: list[Instruction] = []
        for block in function.blocks:
            for inst in block.instructions:
                if inst.has_side_effects():
                    live.add(id(inst))
                    worklist.append(inst)
        while worklist:
            inst = worklist.pop()
            for operand in inst.operands:
                if isinstance(operand, Instruction) and id(operand) not in live:
                    live.add(id(operand))
                    worklist.append(operand)
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if id(inst) in live:
                    continue
                if inst.is_used:
                    # Used only by other dead instructions; break the web.
                    if not inst.type.is_void:
                        inst.replace_all_uses_with(UndefValue(inst.type))
                inst.erase_from_parent()
                changed = True
        return changed
