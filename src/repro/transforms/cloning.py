"""IR cloning utilities: remap-and-copy of instructions, blocks, functions.

Shared by the inliner, the trace-formation runtime optimizer (which
duplicates hot paths into traces), and function specialization.
"""

from __future__ import annotations

from typing import Optional

from ..core import types
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    AllocaInst, BinaryOperator, BranchInst, CallInst, CastInst, FreeInst,
    GetElementPtrInst, Instruction, InvokeInst, LoadInst, MallocInst,
    Opcode, PhiNode, ReturnInst, ShiftInst, StoreInst, SwitchInst,
    UnwindInst, VAArgInst,
)
from ..core.module import Function, Module
from ..core.values import Value


def remap(value: Value, value_map: dict[int, Value]) -> Value:
    """Translate one operand through the clone map (identity if absent)."""
    return value_map.get(id(value), value)


def clone_instruction(inst: Instruction, value_map: dict[int, Value],
                      map_type=None) -> Instruction:
    """Copy ``inst`` with operands translated through ``value_map``.

    Block operands may map to not-yet-materialised blocks; callers must
    pre-create all target blocks in the map before cloning bodies.
    ``map_type`` translates explicitly-carried types (alloca/malloc
    element types, cast/phi/vaarg result types) — the linker passes its
    cross-module type unifier here; plain cloning leaves types alone.
    """
    get = lambda v: remap(v, value_map)  # noqa: E731
    if map_type is None:
        map_type = lambda t: t  # noqa: E731
    clone = _clone_instruction(inst, get, map_type)
    clone.loc = inst.loc
    return clone


def _clone_instruction(inst: Instruction, get, map_type) -> Instruction:
    op = inst.opcode
    if isinstance(inst, ReturnInst):
        value = inst.return_value
        return ReturnInst(None if value is None else get(value))
    if isinstance(inst, BranchInst):
        if inst.is_conditional:
            return BranchInst(get(inst.operands[1]), get(inst.operands[0]),
                              get(inst.operands[2]))
        return BranchInst(get(inst.operands[0]))
    if isinstance(inst, SwitchInst):
        cases = [(get(v), get(d)) for v, d in inst.cases]
        return SwitchInst(get(inst.value), get(inst.default_dest), cases)
    if isinstance(inst, InvokeInst):
        return InvokeInst(get(inst.callee), [get(a) for a in inst.args],
                          get(inst.normal_dest), get(inst.unwind_dest), inst.name)
    if isinstance(inst, UnwindInst):
        return UnwindInst()
    if isinstance(inst, BinaryOperator):
        return BinaryOperator(op, get(inst.operands[0]), get(inst.operands[1]), inst.name)
    if isinstance(inst, ShiftInst):
        return ShiftInst(op, get(inst.value), get(inst.amount), inst.name)
    if isinstance(inst, MallocInst):
        size = inst.array_size
        return MallocInst(map_type(inst.allocated_type),
                          None if size is None else get(size), inst.name)
    if isinstance(inst, AllocaInst):
        size = inst.array_size
        return AllocaInst(map_type(inst.allocated_type),
                          None if size is None else get(size), inst.name)
    if isinstance(inst, FreeInst):
        return FreeInst(get(inst.pointer))
    if isinstance(inst, LoadInst):
        return LoadInst(get(inst.pointer), inst.name)
    if isinstance(inst, StoreInst):
        return StoreInst(get(inst.value), get(inst.pointer))
    if isinstance(inst, GetElementPtrInst):
        return GetElementPtrInst(get(inst.pointer), [get(i) for i in inst.indices], inst.name)
    if isinstance(inst, PhiNode):
        phi = PhiNode(map_type(inst.type), inst.name)
        # Incoming entries are filled by the caller once all blocks exist.
        return phi
    if isinstance(inst, CastInst):
        return CastInst(get(inst.value), map_type(inst.type), inst.name)
    if isinstance(inst, CallInst):
        return CallInst(get(inst.callee), [get(a) for a in inst.args], inst.name)
    if isinstance(inst, VAArgInst):
        return VAArgInst(get(inst.valist), map_type(inst.type), inst.name)
    raise TypeError(f"cannot clone {inst!r}")


def clone_body(source_blocks: list[BasicBlock], target_function: Function,
               value_map: dict[int, Value],
               name_suffix: str = "", map_type=None) -> list[BasicBlock]:
    """Clone ``source_blocks`` into ``target_function``.

    ``value_map`` may pre-map arguments (for inlining: formal -> actual)
    and is extended with every cloned block and instruction.  Phi
    incoming entries are remapped after all instructions exist.
    Returns the cloned blocks in source order.
    """
    cloned_blocks: list[BasicBlock] = []
    for source in source_blocks:
        block = BasicBlock(source.name + name_suffix, parent=target_function)
        value_map[id(source)] = block
        cloned_blocks.append(block)
    # Pass 1: typed placeholders for every result, so uses that precede
    # their definition in block-layout order resolve.  Placeholder types
    # must already live in the *target* type space: constructors type-
    # check their operands, and a placeholder carrying the source
    # module's named-struct identity would fail against operands whose
    # types were translated by ``map_type``.
    placeholders: list[tuple[Instruction, Value]] = []
    for source in source_blocks:
        for inst in source.instructions:
            if not inst.type.is_void and id(inst) not in value_map:
                result_type = inst.type if map_type is None else map_type(inst.type)
                placeholder = Value(result_type, inst.name)
                value_map[id(inst)] = placeholder
                placeholders.append((inst, placeholder))
    # Pass 2: clone instructions (operands resolve to clones made so
    # far, or to placeholders).
    phis: list[tuple[PhiNode, PhiNode]] = []
    for source, block in zip(source_blocks, cloned_blocks):
        for inst in source.instructions:
            cloned = clone_instruction(inst, value_map, map_type)
            value_map[id(inst)] = cloned
            block.instructions.append(cloned)
            cloned.parent = block
            if isinstance(inst, PhiNode):
                phis.append((inst, cloned))
    for source_phi, cloned_phi in phis:
        for value, pred in source_phi.incoming:
            mapped_pred = value_map.get(id(pred))
            if mapped_pred is None:
                continue  # predecessor outside the cloned region
            cloned_phi.add_incoming(remap(value, value_map), mapped_pred)
    # Pass 3: splice placeholders out.
    for source_inst, placeholder in placeholders:
        if placeholder.uses:
            placeholder.replace_all_uses_with(value_map[id(source_inst)])
    return cloned_blocks


def clone_function(function: Function, new_name: str,
                   module: Optional[Module] = None) -> Function:
    """Deep-copy a function definition under a new name.

    Used for specialization and for the offline reoptimizer's "duplicate
    the original code into a trace" step.
    """
    target_module = module or function.parent
    clone = Function(function.function_type, new_name, function.linkage,
                     [a.name for a in function.args])
    if target_module is not None:
        target_module.add_function(clone)
    value_map: dict[int, Value] = {}
    for old_arg, new_arg in zip(function.args, clone.args):
        value_map[id(old_arg)] = new_arg
    clone_body(function.blocks, clone, value_map)
    return clone
