"""CFG simplification: the janitor pass run between other optimizations.

Performs, to a fixpoint per function:

* unreachable block deletion;
* constant-folding of conditional branches and switches;
* merging a block into its unique predecessor when that predecessor
  has it as unique successor;
* removal of trivial phi nodes (single predecessor / single value);
* skipping of empty forwarding blocks (a lone unconditional branch).
"""

from __future__ import annotations

from ..analysis.cfg import unreachable_blocks
from ..core.basicblock import BasicBlock
from ..core.instructions import BranchInst, PhiNode
from ..core.module import Function
from .utils import constant_fold_terminator, phi_single_value, remove_block_with_phis


class SimplifyCFG:
    """The pass object (see module docstring)."""

    name = "simplifycfg"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        while self._run_once(function):
            changed = True
        return changed

    def _run_once(self, function: Function) -> bool:
        changed = False
        for block in list(function.blocks):
            if block.parent is None:
                continue
            changed |= constant_fold_terminator(block)
        changed |= _remove_unreachable(function)
        for block in list(function.blocks):
            if block.parent is None:
                continue
            changed |= _simplify_phis(block)
        for block in list(function.blocks):
            if block.parent is None or block is function.entry_block:
                continue
            if _merge_into_predecessor(block):
                changed = True
                continue
            if _forward_empty_block(block):
                changed = True
        return changed


def _remove_unreachable(function: Function) -> bool:
    dead = unreachable_blocks(function)
    for block in dead:
        remove_block_with_phis(block)
    return bool(dead)


def _simplify_phis(block: BasicBlock) -> bool:
    changed = False
    for phi in list(block.phis()):
        value = phi_single_value(phi)
        if value is not None:
            phi.replace_all_uses_with(value)
            phi.erase_from_parent()
            changed = True
        elif not phi.is_used:
            phi.erase_from_parent()
            changed = True
    return changed


def _merge_into_predecessor(block: BasicBlock) -> bool:
    """Fold ``block`` into its single predecessor ``pred`` when ``pred``
    unconditionally branches to it."""
    preds = block.unique_predecessors()
    if len(preds) != 1:
        return False
    pred = preds[0]
    if pred is block:
        return False
    term = pred.terminator
    if not isinstance(term, BranchInst) or term.is_conditional:
        return False
    if term.operands[0] is not block:
        return False  # invoke or switch edge; leave it
    # Phis with a single predecessor fold to their value.
    for phi in list(block.phis()):
        incoming = phi.incoming_for_block(pred)
        phi.replace_all_uses_with(incoming)
        phi.erase_from_parent()
    term.erase_from_parent()
    for inst in list(block.instructions):
        block.instructions.remove(inst)
        inst.parent = pred
        pred.instructions.append(inst)
    # Successors' phis must now name pred instead of block.
    for succ in pred.successors():
        for phi in succ.phis():
            phi.replace_incoming_block(block, pred)
    if block.is_used:
        # Stragglers (e.g. phis in not-yet-cleaned unreachable blocks).
        block.replace_all_uses_with(pred)
    block.remove_from_parent()
    return True


def _forward_empty_block(block: BasicBlock) -> bool:
    """Remove a block containing only ``br label %dest``, retargeting
    predecessors straight to the destination."""
    if len(block.instructions) != 1:
        return False
    term = block.terminator
    if not isinstance(term, BranchInst) or term.is_conditional:
        return False
    dest = term.operands[0]
    if dest is block:
        return False
    # If the destination has phis, forwarding is only safe when no
    # predecessor of ``block`` is already a predecessor of ``dest``
    # (otherwise that phi would need two different entries per pred).
    dest_preds = {id(p) for p in dest.unique_predecessors()}
    preds = block.unique_predecessors()
    has_phis = any(True for _ in dest.phis())
    if has_phis:
        for pred in preds:
            if id(pred) in dest_preds:
                return False
    if not preds:
        return False
    for phi in dest.phis():
        value = phi.incoming_for_block(block)
        phi.remove_incoming(block)
        for pred in preds:
            phi.add_incoming(value, pred)
    for pred in preds:
        pred_term = pred.terminator
        for index, operand in enumerate(pred_term.operands):
            if operand is block:
                pred_term.set_operand(index, dest)
    term.erase_from_parent()
    block.remove_from_parent()
    return True
