"""Demote SSA registers to stack slots (the inverse of ``mem2reg``).

After this pass no value is used outside its defining block and no phi
nodes remain, so blocks can be freely duplicated or rewired (the trace
former uses exactly this before tail-duplicating a hot path); a
follow-up ``mem2reg`` rebuilds pristine SSA form afterwards.
"""

from __future__ import annotations

from ..core.instructions import (
    AllocaInst, Instruction, LoadInst, PhiNode, StoreInst,
)
from ..core.module import Function
from ..core.values import Value


class DemoteRegisters:
    """The pass object (see module docstring)."""

    name = "reg2mem"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        entry = function.entry_block
        # 0. Hoist fixed-size allocas to the entry block so later block
        #    duplication cannot re-execute an allocation.
        for block in function.blocks:
            if block is entry:
                continue
            for inst in list(block.instructions):
                if isinstance(inst, AllocaInst) and inst.array_size is None:
                    block.instructions.remove(inst)
                    inst.parent = entry
                    entry.insert(0, inst)
                    changed = True
        # 1. Demote phi nodes: stores in predecessors, load at the phi.
        for block in list(function.blocks):
            for phi in list(block.phis()):
                slot = AllocaInst(phi.type, None, f"{phi.name or 'phi'}.slot")
                entry.insert(0, slot)
                for value, pred in phi.incoming:
                    store = StoreInst(value, slot)
                    pred.insert_before_terminator(store)
                load = LoadInst(slot, phi.name)
                index = block.instructions.index(phi)
                block.insert(index, load)
                phi.replace_all_uses_with(load)
                phi.erase_from_parent()
                changed = True
        # 2. Demote values with cross-block uses.
        for block in list(function.blocks):
            for inst in list(block.instructions):
                if inst.type.is_void or isinstance(inst, AllocaInst):
                    continue
                cross_uses = [
                    use for use in list(inst.uses)
                    if isinstance(use.user, Instruction)
                    and use.user.parent is not block
                ]
                if not cross_uses:
                    continue
                slot = AllocaInst(inst.type, None, f"{inst.name or 'reg'}.slot")
                entry.insert(0, slot)
                index = block.instructions.index(inst)
                block.insert(index + 1, StoreInst(inst, slot))
                for use in cross_uses:
                    user = use.user
                    reload = LoadInst(slot, inst.name)
                    user_block = user.parent
                    user_index = user_block.instructions.index(user)
                    user_block.insert(user_index, reload)
                    user.set_operand(use.index, reload)
                changed = True
        return changed
