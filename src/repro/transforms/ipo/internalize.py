"""Internalize: mark symbols internal after whole-program linking.

After the linker has combined all translation units (paper section 3.3,
"uniform, whole-program compilation"), only the entry point and an
explicit API list need external linkage; everything else becomes
internal, unlocking DGE/DAE/IPCP and single-call-site inlining.
"""

from __future__ import annotations

from typing import Iterable

from ...core.module import Linkage, Module


class Internalize:
    """The pass object (see module docstring)."""

    name = "internalize"

    def __init__(self, preserved: Iterable[str] = ("main",)):
        self.preserved = set(preserved)

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for function in module.functions.values():
            if function.is_declaration or function.name in self.preserved:
                continue
            if function.linkage == Linkage.EXTERNAL:
                function.linkage = Linkage.INTERNAL
                changed = True
        for global_var in module.globals.values():
            if global_var.is_declaration or global_var.name in self.preserved:
                continue
            if global_var.linkage == Linkage.EXTERNAL:
                global_var.linkage = Linkage.INTERNAL
                changed = True
        return changed
