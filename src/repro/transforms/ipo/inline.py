"""Function integration (inlining) — the ``inline`` pass of paper Table 2.

Inlines function bodies at call sites bottom-up over the call graph.
Inlining at an ``invoke`` site also rewrites the callee's ``unwind``
instructions into direct branches to the invoke's handler — the paper's
observation that LLVM can "turn stack unwinding operations into direct
branches when the unwind target is in the same function as the unwinder
(this often occurs due to inlining)".
"""

from __future__ import annotations

from typing import Optional

from ...analysis.callgraph import CallGraph
from ...core.basicblock import BasicBlock
from ...core.instructions import (
    BranchInst, CallInst, Instruction, InvokeInst, Opcode, PhiNode,
    ReturnInst, UnwindInst,
)
from ...core.module import Function, Module
from ...core.values import UndefValue, Value
from ..cloning import clone_body


class InlineStats:
    """Counters in the style of the paper's Table 2 notes."""

    def __init__(self):
        self.calls_inlined = 0
        self.functions_deleted = 0


class FunctionInlining:
    """The pass object (see module docstring)."""

    name = "inline"

    def __init__(self, threshold: int = 40, delete_unused: bool = True):
        #: Callees at most this many instructions are inlined; internal
        #: functions with a single call site are inlined regardless.
        self.threshold = threshold
        self.delete_unused = delete_unused
        self.stats = InlineStats()

    def run_on_module(self, module: Module) -> bool:
        callgraph = CallGraph(module)
        changed = False
        for function in callgraph.post_order():
            if function.is_declaration:
                continue
            for inst in [i for i in function.instructions()]:
                if inst.parent is None:
                    continue
                if not isinstance(inst, (CallInst, InvokeInst)):
                    continue
                callee = inst.callee
                if not isinstance(callee, Function) or callee.is_declaration:
                    continue
                if callee is function:
                    continue  # recursion: never fully inlinable
                if not self._should_inline(callee, callgraph):
                    continue
                if inline_call_site(inst):
                    self.stats.calls_inlined += 1
                    changed = True
        if self.delete_unused and changed:
            self.stats.functions_deleted += _delete_dead_functions(module)
        return changed

    def _should_inline(self, callee: Function, callgraph: CallGraph) -> bool:
        if callee.is_vararg:
            return False
        size = callee.instruction_count()
        if size <= self.threshold:
            return True
        node = callgraph.node(callee)
        if (callee.is_internal and not node.has_unknown_callers
                and len(callee.uses) == 1):
            return True  # single call site: inlining shrinks the program
        return False


def inline_call_site(call: Instruction) -> bool:
    """Inline the direct callee of ``call`` (a CallInst or InvokeInst).

    Returns False when the site cannot be inlined (indirect callee,
    declaration, or an invoke whose handler edges are shared).
    """
    callee = call.operands[0]
    if not isinstance(callee, Function) or callee.is_declaration:
        return False
    caller = call.function
    if caller is None:
        return False
    if isinstance(call, InvokeInst):
        # Keep the rewrite simple: both continuation blocks must be
        # exclusive to this invoke.
        if (len(call.normal_dest.unique_predecessors()) != 1
                or len(call.unwind_dest.unique_predecessors()) != 1):
            return False
        # Single-predecessor phis are trivial; fold them away so the
        # continuation blocks are phi-free before rewiring.
        for dest in (call.normal_dest, call.unwind_dest):
            for phi in list(dest.phis()):
                value = phi.incoming[0][0]
                phi.replace_all_uses_with(value)
                phi.erase_from_parent()
        return _inline_site(call, caller, callee,
                            normal_dest=call.normal_dest,
                            unwind_dest=call.unwind_dest)
    return _inline_site(call, caller, callee, normal_dest=None, unwind_dest=None)


def _inline_site(call: Instruction, caller: Function, callee: Function,
                 normal_dest: Optional[BasicBlock],
                 unwind_dest: Optional[BasicBlock]) -> bool:
    block = call.parent
    args = call.operands[1:-2] if isinstance(call, InvokeInst) else call.operands[1:]

    # 1. Split the call block so everything after the call starts a new
    #    continuation block (for a call; an invoke already has one).
    if normal_dest is None:
        call_index = block.instructions.index(call)
        continuation = block.split_at(call_index + 1, f"{callee.name}.exit")
    else:
        continuation = normal_dest

    # 2. Clone the callee body into the caller.
    value_map: dict[int, Value] = {}
    for formal, actual in zip(callee.args, list(args)):
        value_map[id(formal)] = actual
    cloned = clone_body(callee.blocks, caller, value_map, name_suffix=".i")

    # 3. Rewire: the call block now branches to the cloned entry.
    block_term = block.terminator  # the split's branch, or the invoke
    entry_clone = cloned[0]
    if normal_dest is None:
        block_term.set_operand(0, entry_clone)
    else:
        call.erase_from_parent()
        block.append(BranchInst(entry_clone))

    # 4. Returns become branches to the continuation; collect values.
    return_values: list[tuple[Value, BasicBlock]] = []
    for cloned_block in cloned:
        term = cloned_block.terminator
        if isinstance(term, ReturnInst):
            value = term.return_value
            term.erase_from_parent()
            cloned_block.append(BranchInst(continuation))
            if value is not None:
                return_values.append((value, cloned_block))
        elif isinstance(term, UnwindInst) and unwind_dest is not None:
            # The paper's inlining benefit: unwinds whose handler is now
            # in the same function become direct branches.
            term.erase_from_parent()
            cloned_block.append(BranchInst(unwind_dest))

    # 5. Replace the call's value with a phi over returned values.
    if not call.type.is_void and call.is_used:
        if len(return_values) == 1 and normal_dest is None:
            call.replace_all_uses_with(return_values[0][0])
        elif return_values:
            phi = PhiNode(call.type, f"{callee.name}.ret")
            continuation.insert(0, phi)
            for value, pred in return_values:
                phi.add_incoming(value, pred)
            call.replace_all_uses_with(phi)
        else:
            call.replace_all_uses_with(UndefValue(call.type))

    # 6. Fix phis in the continuation blocks that named the call block.
    _retarget_phis(continuation, block, [b for _, b in return_values] or
                   [b for b in cloned if b.terminator is not None
                    and continuation in b.terminator.successors])
    if unwind_dest is not None:
        unwind_preds = [b for b in cloned
                        if isinstance(b.terminator, BranchInst)
                        and not b.terminator.is_conditional
                        and b.terminator.operands[0] is unwind_dest]
        _retarget_phis(unwind_dest, block, unwind_preds)

    # 7. Finally remove the call instruction itself.
    if call.parent is not None:
        call.erase_from_parent()
    return True


def _retarget_phis(dest: BasicBlock, old_pred: BasicBlock,
                   new_preds: list[BasicBlock]) -> None:
    for phi in dest.phis():
        value = phi.incoming_for_block(old_pred)
        if value is None:
            continue
        phi.remove_incoming(old_pred)
        seen: set[int] = set()
        for pred in new_preds:
            if id(pred) not in seen:
                seen.add(id(pred))
                phi.add_incoming(value, pred)


def _delete_dead_functions(module: Module) -> int:
    """Remove internal functions that no longer have uses."""
    deleted = 0
    changed = True
    while changed:
        changed = False
        for function in list(module.functions.values()):
            if function.is_internal and not function.is_used and function.name != "main":
                function.erase_from_parent()
                deleted += 1
                changed = True
    return deleted
