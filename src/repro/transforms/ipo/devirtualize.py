"""Virtual method call resolution (paper section 4.1.2).

"A virtual function table is represented as a global, constant array of
typed function pointers ... With this representation, virtual method
call resolution can be performed by the optimizer as effectively as by
a typical source compiler."

Two cooperating rewrites:

* loads at constant offsets into *constant* globals (the vtables) fold
  to the corresponding initializer element — this turns a loaded
  function pointer into a known function;
* indirect calls whose callee is a known function (possibly behind a
  pointer cast) become direct calls, which the inliner can then see.

The load folder works on byte offsets, so chains of GEPs (the natural
shape of ``load (gep (gep vtable, 0, 1, 0), slot)`` after store-load
forwarding) fold without needing GEP canonicalisation first.
"""

from __future__ import annotations

from typing import Optional

from ...core import types
from ...core.datalayout import DataLayout
from ...core.instructions import (
    CallInst, CastInst, GetElementPtrInst, InvokeInst, LoadInst,
)
from ...core.module import Function, GlobalVariable, Module
from ...core.values import (
    Constant, ConstantAggregateZero, ConstantArray, ConstantExpr,
    ConstantInt, ConstantStruct, null_value,
)
from ..utils import replace_and_erase


class DevirtStats:
    def __init__(self):
        self.loads_folded = 0
        self.calls_devirtualized = 0


class Devirtualize:
    """The pass object (see module docstring)."""

    name = "devirtualize"

    def __init__(self):
        self.stats = DevirtStats()

    def run_on_module(self, module: Module) -> bool:
        layout = module.data_layout
        changed = False
        for function in module.defined_functions():
            for block in function.blocks:
                for inst in list(block.instructions):
                    if isinstance(inst, LoadInst):
                        folded = _fold_constant_load(inst, layout)
                        if folded is not None:
                            replace_and_erase(inst, folded)
                            self.stats.loads_folded += 1
                            changed = True
                    elif isinstance(inst, (CallInst, InvokeInst)):
                        if self._devirtualize_call(inst):
                            changed = True
        return changed

    def _devirtualize_call(self, call) -> bool:
        callee = call.operands[0]
        target = _strip_pointer_casts(callee)
        if target is callee or not isinstance(target, Function):
            return False
        if target.type is not callee.type:
            # Signature mismatch after stripping casts: calling through
            # a mismatched type is not safely rewritable.
            if not _compatible_signature(call, target):
                return False
        call.set_operand(0, target)
        self.stats.calls_devirtualized += 1
        return True


def _strip_pointer_casts(value):
    while True:
        if isinstance(value, CastInst) and value.type.is_pointer:
            value = value.value
        elif isinstance(value, ConstantExpr) and value.opcode == "cast":
            value = value.operands[0]
        else:
            return value


def _compatible_signature(call, function: Function) -> bool:
    fn_ty = function.function_type
    args = call.args
    if fn_ty.is_vararg:
        if len(args) < len(fn_ty.params):
            return False
    elif len(args) != len(fn_ty.params):
        return False
    if not all(a.type is p for a, p in zip(args, fn_ty.params)):
        return False
    return fn_ty.return_type is call.type


def _fold_constant_load(load: LoadInst, layout: DataLayout) -> Optional[Constant]:
    resolved = _resolve_address(load.pointer, layout)
    if resolved is None:
        return None
    global_var, offset = resolved
    if not global_var.is_constant or global_var.initializer is None:
        return None
    return _element_at_offset(global_var.initializer, offset, load.type, layout)


def _resolve_address(pointer, layout: DataLayout) -> Optional[tuple[GlobalVariable, int]]:
    """Walk constant-index GEP chains down to (global, byte offset)."""
    offset = 0
    depth = 0
    while depth < 16:
        depth += 1
        if isinstance(pointer, GlobalVariable):
            return pointer, offset
        if isinstance(pointer, (GetElementPtrInst, ConstantExpr)):
            if isinstance(pointer, ConstantExpr):
                if pointer.opcode != "getelementptr":
                    return None
                base, indices = pointer.operands[0], pointer.operands[1:]
            else:
                base, indices = pointer.pointer, pointer.indices
            if not all(isinstance(i, ConstantInt) for i in indices):
                return None
            current = base.type.pointee
            for position, index in enumerate(indices):
                if position == 0:
                    offset += index.value * layout.size_of(current)
                elif current.is_struct:
                    offset += layout.field_offset(current, index.value)
                    current = current.fields[index.value]
                else:
                    offset += index.value * layout.size_of(current.element)
                    current = current.element
            pointer = base
            continue
        return None
    return None


def _element_at_offset(constant: Constant, offset: int,
                       want: types.Type, layout: DataLayout) -> Optional[Constant]:
    """The scalar constant at a byte offset within an initializer."""
    current = constant
    while True:
        ty = current.type
        if isinstance(current, ConstantAggregateZero):
            inner = _type_at_offset(ty, offset, layout)
            if inner is want and want.is_first_class:
                return null_value(want)
            return None
        if isinstance(current, ConstantArray):
            element_size = layout.size_of(ty.element)  # type: ignore[attr-defined]
            index = offset // element_size if element_size else 0
            if not 0 <= index < len(current.elements):
                return None
            offset -= index * element_size
            current = current.elements[index]  # type: ignore[assignment]
            continue
        if isinstance(current, ConstantStruct):
            fields = current.fields_values
            chosen = None
            for field_index in range(len(fields)):
                field_offset = layout.field_offset(ty, field_index)
                field_size = layout.size_of(ty.fields[field_index])  # type: ignore[attr-defined]
                if field_offset <= offset < field_offset + max(field_size, 1):
                    chosen = field_index
                    break
            if chosen is None:
                return None
            offset -= layout.field_offset(ty, chosen)
            current = fields[chosen]  # type: ignore[assignment]
            continue
        if offset == 0 and current.type is want:
            return current
        # A function pointer stored behind a cast still resolves when
        # the load wants the cast-to type.
        if (offset == 0 and isinstance(current, ConstantExpr)
                and current.opcode == "cast" and current.type is want):
            return current
        return None


def _type_at_offset(ty: types.Type, offset: int, layout: DataLayout):
    while True:
        if ty.is_array:
            element_size = layout.size_of(ty.element)  # type: ignore[attr-defined]
            if element_size == 0:
                return None
            offset %= element_size
            ty = ty.element  # type: ignore[attr-defined]
            continue
        if ty.is_struct:
            for index in range(len(ty.fields)):  # type: ignore[attr-defined]
                field_offset = layout.field_offset(ty, index)
                field = ty.fields[index]  # type: ignore[attr-defined]
                if field_offset <= offset < field_offset + max(layout.size_of(field), 1):
                    offset -= field_offset
                    ty = field
                    break
            else:
                return None
            continue
        return ty if offset == 0 else None
