"""Unused exception-handler removal (paper section 4.1.2).

"Having this information available at link time enables LLVM to use an
interprocedural analysis to eliminate unused exception handlers.  This
optimization is much less effective if done on a per-module basis in a
source-level compiler."

The analysis computes, bottom-up over the call graph, whether each
function *may unwind* (executes ``unwind`` reachable from entry, or
calls something that may).  Any ``invoke`` of a no-unwind callee is
demoted to a plain ``call`` + branch, after which its handler code
usually becomes unreachable and is swept by SimplifyCFG.
"""

from __future__ import annotations

from ...analysis.callgraph import CallGraph
from ...core.instructions import (
    BranchInst, CallInst, InvokeInst, Opcode, UnwindInst,
)
from ...core.module import Function, Module


class PruneEHStats:
    def __init__(self):
        self.invokes_demoted = 0


class PruneExceptionHandlers:
    """The pass object (see module docstring)."""

    name = "prune-eh"

    #: Runtime functions that never unwind even though they are externals.
    KNOWN_NO_UNWIND = frozenset({
        "printf", "puts", "putchar", "exit",
        "llvm_cxxeh_alloc_exc", "llvm_cxxeh_get_exc",
        "llvm_cxxeh_free_exc", "llvm_cxxeh_current_typeid",
        "__lc_longjmp", "__lc_longjmp_catch", "__profile_count",
    })

    def __init__(self):
        self.stats = PruneEHStats()

    def run_on_module(self, module: Module) -> bool:
        may_unwind = self._compute_may_unwind(module)
        changed = False
        for function in list(module.defined_functions()):
            for block in list(function.blocks):
                term = block.terminator
                if not isinstance(term, InvokeInst):
                    continue
                callee = term.callee
                if isinstance(callee, Function) and not may_unwind.get(
                    callee.name, True
                ):
                    _demote_invoke(term)
                    self.stats.invokes_demoted += 1
                    changed = True
        return changed

    def _compute_may_unwind(self, module: Module) -> dict[str, bool]:
        callgraph = CallGraph(module)
        may_unwind: dict[str, bool] = {}
        for function in module.functions.values():
            if function.is_declaration:
                may_unwind[function.name] = (
                    function.name not in self.KNOWN_NO_UNWIND
                )
            else:
                may_unwind[function.name] = any(
                    isinstance(inst, UnwindInst) for inst in function.instructions()
                )
        # Propagate through calls to a fixpoint.  An invoke catches the
        # callee's unwind, so it does not propagate it upward — but the
        # handler itself may re-unwind, which the direct scan covers.
        changed = True
        while changed:
            changed = False
            for function in module.defined_functions():
                if may_unwind[function.name]:
                    continue
                for inst in function.instructions():
                    if inst.opcode == Opcode.CALL:
                        callee = inst.operands[0]
                        callee_unwinds = (
                            may_unwind.get(callee.name, True)
                            if isinstance(callee, Function)
                            else True  # indirect: assume the worst
                        )
                        if callee_unwinds:
                            may_unwind[function.name] = True
                            changed = True
                            break
        return may_unwind


def _demote_invoke(invoke: InvokeInst) -> None:
    """Rewrite ``invoke f() to %ok unwind to %handler`` into
    ``call f(); br %ok`` (the handler edge disappears from the CFG)."""
    block = invoke.parent
    normal = invoke.normal_dest
    handler = invoke.unwind_dest
    call = CallInst(invoke.callee, list(invoke.args), invoke.name)
    index = block.instructions.index(invoke)
    block.insert(index, call)
    if invoke.is_used:
        invoke.replace_all_uses_with(call)
    for phi in handler.phis():
        phi.remove_incoming(block)
    invoke.erase_from_parent()
    block.append(BranchInst(normal))
