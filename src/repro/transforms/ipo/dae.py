"""Aggressive Dead Argument (and return value) Elimination — paper Table 2's
``DAE`` pass.

For internal functions whose call sites are all visible, removes formal
arguments that no instruction reads, and demotes the return type to
``void`` when no call site consumes the result.  Both the function and
every call site are rewritten.  (Paper: "DAE eliminates 103 arguments
and 96 return values from 176.gcc".)
"""

from __future__ import annotations

from typing import Optional

from ...analysis.callgraph import CallGraph
from ...core import types
from ...core.instructions import CallInst, InvokeInst, Instruction, ReturnInst
from ...core.module import Function, Module
from ...core.values import Value


class DAEStats:
    def __init__(self):
        self.arguments_deleted = 0
        self.returns_deleted = 0


class DeadArgumentElimination:
    """The pass object (see module docstring)."""

    name = "dae"

    def __init__(self):
        self.stats = DAEStats()

    def run_on_module(self, module: Module) -> bool:
        callgraph = CallGraph(module)
        changed = False
        for function in list(module.functions.values()):
            if function.is_declaration or function.is_vararg:
                continue
            node = callgraph.node(function)
            if node.has_unknown_callers or callgraph.is_address_taken(function):
                continue
            dead_args = [
                arg.index for arg in function.args if not arg.is_used
            ]
            dead_return = (not function.return_type.is_void
                           and not _any_result_used(function))
            if not dead_args and not dead_return:
                continue
            _rewrite_function(module, function, set(dead_args), dead_return)
            self.stats.arguments_deleted += len(dead_args)
            self.stats.returns_deleted += int(dead_return)
            changed = True
        return changed


def _any_result_used(function: Function) -> bool:
    for use in function.uses:
        user = use.user
        if isinstance(user, (CallInst, InvokeInst)) and use.index == 0:
            if user.is_used:
                return True
        else:
            return True  # non-call use: be conservative
    return False


def _rewrite_function(module: Module, function: Function,
                      dead_args: set[int], dead_return: bool) -> None:
    old_fn_ty = function.function_type
    kept = [i for i in range(len(old_fn_ty.params)) if i not in dead_args]
    new_return = types.VOID if dead_return else old_fn_ty.return_type
    new_fn_ty = types.function(new_return, [old_fn_ty.params[i] for i in kept])

    name = function.name
    replacement = Function(new_fn_ty, name, function.linkage,
                           [function.args[i].name for i in kept])
    replacement.is_pure = function.is_pure

    # Move the body across and rebind surviving arguments.
    for new_index, old_index in enumerate(kept):
        function.args[old_index].replace_all_uses_with(replacement.args[new_index])
    replacement.blocks = function.blocks
    function.blocks = []
    for block in replacement.blocks:
        block.parent = replacement
    if dead_return:
        for block in replacement.blocks:
            term = block.terminator
            if isinstance(term, ReturnInst) and term.return_value is not None:
                term.erase_from_parent()
                block.instructions.append(ReturnInst(None))
                block.instructions[-1].parent = block

    # Rewrite every call site.
    for use in list(function.uses):
        site = use.user
        if isinstance(site, CallInst):
            new_args = [site.args[i] for i in kept]
            new_call = CallInst(replacement, new_args, site.name)
            _replace_site(site, new_call, dead_return)
        elif isinstance(site, InvokeInst):
            new_args = [site.args[i] for i in kept]
            new_call = InvokeInst(replacement, new_args, site.normal_dest,
                                  site.unwind_dest, site.name)
            _replace_site(site, new_call, dead_return)
        else:  # pragma: no cover - guarded by address-taken check
            raise AssertionError("DAE saw a non-call use it did not expect")

    module._remove_function(function)
    module.add_function(replacement)


def _replace_site(old: Instruction, new: Instruction, dead_return: bool) -> None:
    block = old.parent
    index = block.instructions.index(old)
    block.instructions.insert(index, new)
    new.parent = block
    if old.is_used and not dead_return:
        old.replace_all_uses_with(new)
    old.erase_from_parent()
