"""Interprocedural (link-time) optimizations — paper section 3.3.

"Link time is the first phase of the compilation process where most of
the program is available for analysis and transformation ... the
link-time optimizations in LLVM operate on the LLVM representation
directly, taking advantage of the semantic information it contains."
"""

from .dae import DeadArgumentElimination
from .devirtualize import Devirtualize
from .dge import DeadGlobalElimination
from .heap2stack import HeapToStackPromotion
from .inline import FunctionInlining
from .internalize import Internalize
from .ipcp import IPConstantPropagation
from .prune_eh import PruneExceptionHandlers

__all__ = [
    "DeadArgumentElimination", "Devirtualize", "DeadGlobalElimination",
    "HeapToStackPromotion", "FunctionInlining", "Internalize",
    "IPConstantPropagation", "PruneExceptionHandlers",
]
