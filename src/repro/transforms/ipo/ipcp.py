"""Interprocedural constant propagation (paper section 3.3).

When every visible call site passes the same constant for a formal
argument of an internal function, the argument is replaced by that
constant inside the function body; intraprocedural SCCP then finishes
the job.  Also propagates constant return values to call sites.
"""

from __future__ import annotations

from typing import Optional

from ...analysis.callgraph import CallGraph
from ...core.instructions import CallInst, InvokeInst, ReturnInst
from ...core.module import Function, Module
from ...core.values import Constant, ConstantBool, ConstantFP, ConstantInt


class IPConstantPropagation:
    """The pass object (see module docstring)."""

    name = "ipcp"

    def run_on_module(self, module: Module) -> bool:
        callgraph = CallGraph(module)
        changed = False
        for function in module.functions.values():
            if function.is_declaration:
                continue
            node = callgraph.node(function)
            if node.has_unknown_callers or callgraph.is_address_taken(function):
                continue
            changed |= self._propagate_arguments(function)
            changed |= self._propagate_return(function)
        return changed

    def _propagate_arguments(self, function: Function) -> bool:
        sites = _call_sites(function)
        if not sites:
            return False
        changed = False
        for index, arg in enumerate(function.args):
            if not arg.is_used:
                continue
            constant = _common_constant(sites, index)
            if constant is not None:
                arg.replace_all_uses_with(constant)
                changed = True
        return changed

    def _propagate_return(self, function: Function) -> bool:
        if function.return_type.is_void:
            return False
        returned: Optional[Constant] = None
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, ReturnInst):
                value = term.return_value
                if not isinstance(value, Constant) or not _is_scalar(value):
                    return False
                if returned is None:
                    returned = value
                elif not _same_constant(returned, value):
                    return False
        if returned is None:
            return False
        changed = False
        for site in _call_sites(function):
            if site.is_used:
                site.replace_all_uses_with(returned)
                changed = True
        return changed


def _call_sites(function: Function) -> list:
    sites = []
    for use in function.uses:
        user = use.user
        if isinstance(user, (CallInst, InvokeInst)) and use.index == 0:
            sites.append(user)
    return sites


def _common_constant(sites, index: int) -> Optional[Constant]:
    constant: Optional[Constant] = None
    for site in sites:
        actual = site.args[index]
        if not isinstance(actual, Constant) or not _is_scalar(actual):
            return None
        if constant is None:
            constant = actual
        elif not _same_constant(constant, actual):
            return None
    return constant


def _is_scalar(constant: Constant) -> bool:
    return isinstance(constant, (ConstantInt, ConstantBool, ConstantFP)) or (
        constant.type.is_pointer and constant.is_null_value()
    )


def _same_constant(a: Constant, b: Constant) -> bool:
    if a.type is not b.type:
        return False
    return getattr(a, "value", None) == getattr(b, "value", None)
