"""Aggressive Dead Global Elimination — the ``DGE`` pass of paper Table 2.

"Aggressive DCEs assume objects are dead until proven otherwise,
allowing dead objects with cycles to be deleted": liveness is seeded
from externally-visible symbols and propagated through initializers and
function bodies; everything unmarked — including mutually-referential
dead globals — is deleted.  (Paper: "DGE eliminates 331 functions and
557 global variables ... from 255.vortex".)
"""

from __future__ import annotations

from ...core.instructions import Instruction
from ...core.module import Function, GlobalVariable, Module
from ...core.values import Constant, Value


class DGEStats:
    def __init__(self):
        self.functions_deleted = 0
        self.globals_deleted = 0


class DeadGlobalElimination:
    """The pass object (see module docstring)."""

    name = "dge"

    def __init__(self):
        self.stats = DGEStats()

    def run_on_module(self, module: Module) -> bool:
        live: set[int] = set()
        worklist: list[Value] = []
        for function in module.functions.values():
            if not function.is_internal or function.name == "main":
                worklist.append(function)
        for global_var in module.globals.values():
            if not global_var.is_internal:
                worklist.append(global_var)
        while worklist:
            symbol = worklist.pop()
            if id(symbol) in live:
                continue
            live.add(id(symbol))
            if isinstance(symbol, Function):
                for inst in symbol.instructions():
                    for operand in inst.operands:
                        self._mark_operand(operand, live, worklist)
            elif isinstance(symbol, GlobalVariable):
                initializer = symbol.initializer
                if initializer is not None:
                    self._mark_operand(initializer, live, worklist)
        changed = False
        for function in list(module.functions.values()):
            if id(function) not in live:
                self._drop_symbol(function)
                function.erase_from_parent()
                self.stats.functions_deleted += 1
                changed = True
        for global_var in list(module.globals.values()):
            if id(global_var) not in live:
                self._drop_symbol(global_var)
                global_var.erase_from_parent()
                self.stats.globals_deleted += 1
                changed = True
        return changed

    def _mark_operand(self, operand: Value, live: set[int],
                      worklist: list[Value]) -> None:
        if isinstance(operand, (Function, GlobalVariable)):
            if id(operand) not in live:
                worklist.append(operand)
        elif isinstance(operand, Constant):
            for nested in getattr(operand, "operands", ()):
                self._mark_operand(nested, live, worklist)

    def _drop_symbol(self, symbol) -> None:
        """Symbols in a dead cycle may still reference each other; clear
        bodies/initializers so erasure never dangles."""
        if isinstance(symbol, Function):
            symbol.delete_body()
        elif isinstance(symbol, GlobalVariable):
            symbol.set_initializer(None)
