"""Heap-to-stack promotion: a DSA-client optimization.

The paper positions DSA as the enabler of "aggressive transformations
that would traditionally be attempted only on type-safe languages"
(section 4.1.1/4.2.1, with Automatic Pool Allocation as the flagship).
This pass is the simplest member of that family: a ``malloc`` whose
object provably never escapes the allocating function — no store of its
pointer into memory, no pass to an unknown callee, no return — is
turned into an ``alloca``, and its ``free`` calls are deleted (stack
storage dies with the frame).

Escape is judged structurally over the SSA graph (the use-closure of
the allocation through GEPs, casts, and phis), which is sound without a
full DSA solve; the DSA-backed version would catch more cases, this one
is deliberately conservative.
"""

from __future__ import annotations

from ...core.instructions import (
    AllocaInst, CastInst, FreeInst, GetElementPtrInst, Instruction,
    LoadInst, MallocInst, Opcode, PhiNode, StoreInst,
)
from ...core.module import Function, Module
from ...core.values import Value


class Heap2StackStats:
    def __init__(self):
        self.mallocs_promoted = 0
        self.frees_deleted = 0


class HeapToStackPromotion:
    """The pass object (see module docstring)."""

    name = "heap2stack"

    def __init__(self, max_bytes: int = 4096):
        #: Objects bigger than this stay on the heap (stack frames are
        #: not the place for megabyte buffers).
        self.max_bytes = max_bytes
        self.stats = Heap2StackStats()

    def run_on_module(self, module: Module) -> bool:
        changed = False
        for function in module.defined_functions():
            changed |= self.run_on_function(function, module)
        return changed

    def run_on_function(self, function: Function, module: Module) -> bool:
        changed = False
        layout = module.data_layout
        for block in function.blocks:
            for inst in list(block.instructions):
                if not isinstance(inst, MallocInst):
                    continue
                if inst.array_size is not None:
                    continue  # dynamic sizes stay on the heap
                if layout.size_of(inst.allocated_type) > self.max_bytes:
                    continue
                escapes, frees = _escape_analysis(inst)
                if escapes:
                    continue
                # Rewrite: alloca in place, frees deleted.
                replacement = AllocaInst(inst.allocated_type, None,
                                         inst.name or "stackified")
                index = block.instructions.index(inst)
                block.insert(index, replacement)
                inst.replace_all_uses_with(replacement)
                inst.erase_from_parent()
                for free in frees:
                    free.erase_from_parent()
                self.stats.mallocs_promoted += 1
                self.stats.frees_deleted += len(frees)
                changed = True
        return changed


def _escape_analysis(malloc: MallocInst) -> tuple[bool, list[FreeInst]]:
    """Does any alias of the allocation escape the function?

    Returns (escapes, the free instructions that release it).
    """
    frees: list[FreeInst] = []
    seen: set[int] = set()
    worklist: list[Value] = [malloc]
    while worklist:
        pointer = worklist.pop()
        if id(pointer) in seen:
            continue
        seen.add(id(pointer))
        for use in pointer.uses:
            user = use.user
            if isinstance(user, LoadInst):
                continue  # reading through it is fine
            if isinstance(user, StoreInst):
                if user.value is pointer:
                    return True, []  # the pointer itself is stored away
                continue
            if isinstance(user, FreeInst):
                if isinstance(pointer, MallocInst):
                    frees.append(user)
                    continue
                return True, []  # freeing a derived pointer: leave alone
            if isinstance(user, (GetElementPtrInst, CastInst, PhiNode)):
                if user.type.is_pointer:
                    worklist.append(user)
                    continue
                return True, []  # cast to integer: address escapes
            if isinstance(user, Instruction) and user.is_comparison:
                continue  # null checks don't capture
            if isinstance(user, Instruction) and user.opcode == Opcode.RET:
                return True, []
            # Calls, invokes, switches on the address, anything else:
            # treat as escaping.
            return True, []
    return False, frees
