"""Instruction combining: algebraic peephole simplification.

A worklist pass that canonicalizes and simplifies individual
instructions using algebraic identities (``x+0``, ``x^x``, casts that
lose nothing, multiplies by powers of two, ...).  Works uniformly on
the typed low-level representation, so the same rules serve every
source language.
"""

from __future__ import annotations

from typing import Optional

from ..core import types
from ..core.instructions import (
    BinaryOperator, CastInst, GetElementPtrInst, Instruction, Opcode,
    ShiftInst,
)
from ..core.module import Function
from ..core.values import (
    Constant, ConstantBool, ConstantInt, Value, null_value,
)
from .utils import fold_instruction, is_trivially_dead, replace_and_erase


class InstCombine:
    """The pass object (see module docstring)."""

    name = "instcombine"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        worklist = [inst for block in function.blocks for inst in block.instructions]
        while worklist:
            inst = worklist.pop()
            if inst.parent is None:
                continue
            if is_trivially_dead(inst):
                inst.erase_from_parent()
                changed = True
                continue
            folded = fold_instruction(inst)
            if folded is not None:
                worklist.extend(u for u in inst.users() if u is not inst)
                replace_and_erase(inst, folded)
                changed = True
                continue
            if _canonicalize(inst):
                changed = True
                worklist.append(inst)
                continue
            simplified = _simplify(inst)
            if simplified is not None:
                worklist.extend(u for u in inst.users() if u is not inst)
                replace_and_erase(inst, simplified)
                changed = True
        return changed


def _canonicalize(inst: Instruction) -> bool:
    """Move constants to the right of commutative operators."""
    if isinstance(inst, BinaryOperator) and inst.is_commutative:
        lhs, rhs = inst.operands
        if isinstance(lhs, Constant) and not isinstance(rhs, Constant):
            inst.set_operand(0, rhs)
            inst.set_operand(1, lhs)
            return True
    return False


def _int_constant(value: Value, expected: int) -> bool:
    return isinstance(value, ConstantInt) and value.value == expected


def _all_ones(value: Value) -> bool:
    if not isinstance(value, ConstantInt):
        return False
    ty = value.type
    return value.value == ty.wrap(-1)  # type: ignore[attr-defined]


def _is_zero(value: Value) -> bool:
    return isinstance(value, Constant) and value.is_null_value() and not value.type.is_floating


def _simplify(inst: Instruction) -> Optional[Value]:
    if isinstance(inst, BinaryOperator):
        return _simplify_binary(inst)
    if isinstance(inst, ShiftInst):
        if _int_constant(inst.amount, 0):
            return inst.value
        if _is_zero(inst.value):
            return inst.value
        return None
    if isinstance(inst, CastInst):
        return _simplify_cast(inst)
    if isinstance(inst, GetElementPtrInst):
        if inst.has_all_zero_indices() and inst.type is inst.pointer.type:
            return inst.pointer
        return None
    return None


def _simplify_binary(inst: BinaryOperator) -> Optional[Value]:
    opcode = inst.opcode
    lhs, rhs = inst.operands
    ty = lhs.type
    is_fp = ty.is_floating

    if opcode == Opcode.ADD:
        if _is_zero(rhs):
            return lhs
        return None
    if opcode == Opcode.SUB:
        if _is_zero(rhs):
            return lhs
        if lhs is rhs and not is_fp:
            return null_value(ty)
        return None
    if opcode == Opcode.MUL:
        if _int_constant(rhs, 1) or (is_fp and _fp_constant(rhs, 1.0)):
            return lhs
        if _is_zero(rhs):
            return rhs  # x * 0 == 0 for integers
        return None
    if opcode == Opcode.DIV:
        if _int_constant(rhs, 1) or (is_fp and _fp_constant(rhs, 1.0)):
            return lhs
        return None
    if opcode == Opcode.AND:
        if _is_zero(rhs):
            return rhs
        if _all_ones(rhs) or (ty.is_bool and _bool_constant(rhs, True)):
            return lhs
        if lhs is rhs:
            return lhs
        return None
    if opcode == Opcode.OR:
        if _is_zero(rhs) or (ty.is_bool and _bool_constant(rhs, False)):
            return lhs
        if _all_ones(rhs):
            return rhs
        if lhs is rhs:
            return lhs
        return None
    if opcode == Opcode.XOR:
        if _is_zero(rhs) or (ty.is_bool and _bool_constant(rhs, False)):
            return lhs
        if lhs is rhs:
            return null_value(ty)
        return None
    if opcode in (Opcode.SETEQ, Opcode.SETLE, Opcode.SETGE):
        if lhs is rhs and not is_fp:  # NaN != NaN, so skip floats
            return ConstantBool(True)
        return None
    if opcode in (Opcode.SETNE, Opcode.SETLT, Opcode.SETGT):
        if lhs is rhs and not is_fp:
            return ConstantBool(False)
        return None
    return None


def _fp_constant(value: Value, expected: float) -> bool:
    from ..core.values import ConstantFP

    return isinstance(value, ConstantFP) and value.value == expected


def _bool_constant(value: Value, expected: bool) -> bool:
    return isinstance(value, ConstantBool) and value.value is expected


def _cast_pair_foldable(src: types.Type, mid: types.Type,
                        dst: types.Type) -> bool:
    """Is ``cast (cast X: src to mid) to dst`` == ``cast X to dst``?

    Losslessness of src->mid is necessary but not sufficient: a
    same-width integer cast keeps every bit yet flips the signedness
    the outer cast *reinterprets*.  ``(long)(uint)x`` zero-extends; if
    x is ``int``, folding to ``(long)x`` sign-extends — a miscompile
    (found by lc-fuzz, reduced by lc-bugpoint).  The outer cast only
    ignores the reinterpretation when it never widens past the middle
    type's width.
    """
    if not types.is_losslessly_convertible(src, mid):
        return False
    if src is mid:
        return True
    if src.is_pointer and mid.is_pointer:
        # Pointer casts are pure reinterpretation; the representation
        # is a bare address either way.
        return True
    # Remaining lossless pairs are same-width integers of opposite
    # signedness.  The middle cast matters exactly when the outer cast
    # widens (the extension picks sign by the middle type) — anything
    # that stays within mid's bits sees the same low bits.
    if dst.is_bool:
        return True
    return dst.is_integer and dst.bits <= mid.bits


def _simplify_cast(inst: CastInst) -> Optional[Value]:
    source = inst.value
    if source.type is inst.type:
        return source
    if isinstance(source, CastInst):
        # cast (cast X to B) to C == cast X to C when the middle step
        # loses nothing and C does not reinterpret what B changed.
        inner = source.value
        if _cast_pair_foldable(inner.type, source.type, inst.type):
            if inner.type is inst.type:
                return inner
            builder_parent = inst.parent
            if builder_parent is not None:
                replacement = CastInst(inner, inst.type)
                index = builder_parent.instructions.index(inst)
                builder_parent.insert(index, replacement)
                return replacement
    return None
