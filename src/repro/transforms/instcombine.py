"""Instruction combining: algebraic peephole simplification.

A worklist pass that canonicalizes and simplifies individual
instructions using algebraic identities (``x+0``, ``x^x``, casts that
lose nothing, multiplies by powers of two, ...).  Works uniformly on
the typed low-level representation, so the same rules serve every
source language.

Two rule populations drive the worklist: the hand-written folds below,
and the **generated** rules of ``instcombine_generated.py`` — rewrites
discovered by ``lc-synth`` and admitted only after exhaustive
narrow-bitwidth verification (docs/ANALYSIS.md).  The generated set
loads by default; pass ``generated_rules=[]`` to run bare.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core import types
from ..core.instructions import (
    BinaryOperator, CastInst, GetElementPtrInst, Instruction, Opcode,
    ShiftInst,
)
from ..core.module import Function
from ..core.values import (
    Constant, ConstantBool, ConstantInt, Value, null_value,
)
from .peephole import Rule, try_apply
from .utils import fold_instruction, is_trivially_dead, replace_and_erase


class InstCombineStats:
    """-stats counters (picked up via the pass's ``stats`` attribute)."""

    def __init__(self):
        self.generated_rules_loaded = 0
        self.generated_rules_fired = 0


class InstCombine:
    """The pass object (see module docstring).

    ``unsafe_cast_fold`` resurrects the pre-fix double-cast fold (the
    PR-4 miscompile: ``(long)(uint)x -> (long)x``) for the translation
    validator's regression tests.  It exists so the *real* bug can be
    planted through the *real* pipeline; never enable it outside a
    test.
    """

    name = "instcombine"

    def __init__(self, generated_rules: Optional[Sequence[Rule]] = None,
                 unsafe_cast_fold: bool = False):
        if generated_rules is None:
            generated_rules = _default_rules()
        self.generated_rules = list(generated_rules)
        self.unsafe_cast_fold = unsafe_cast_fold
        self.stats = InstCombineStats()
        self.stats.generated_rules_loaded = len(self.generated_rules)
        #: generated rules bucketed by LHS root opcode name for O(1)
        #: candidate lookup in the worklist loop
        self._rules_by_root: dict[str, list[Rule]] = {}
        for rule in self.generated_rules:
            self._rules_by_root.setdefault(rule.root_op, []).append(rule)

    def fresh(self) -> "InstCombine":
        """Same configuration, clean run state (for crash probing)."""
        return InstCombine(generated_rules=self.generated_rules,
                           unsafe_cast_fold=self.unsafe_cast_fold)

    def run_on_function(self, function: Function) -> bool:
        changed = False
        worklist = [inst for block in function.blocks for inst in block.instructions]
        while worklist:
            inst = worklist.pop()
            if inst.parent is None:
                continue
            if is_trivially_dead(inst):
                inst.erase_from_parent()
                changed = True
                continue
            folded = fold_instruction(inst)
            if folded is not None:
                worklist.extend(u for u in inst.users() if u is not inst)
                replace_and_erase(inst, folded)
                changed = True
                continue
            if _canonicalize(inst):
                changed = True
                worklist.append(inst)
                continue
            simplified = _simplify(inst, self.unsafe_cast_fold)
            if simplified is None:
                simplified = self._apply_generated(inst)
            if simplified is not None:
                worklist.extend(u for u in inst.users() if u is not inst)
                replace_and_erase(inst, simplified)
                changed = True
        return changed

    def _apply_generated(self, inst: Instruction) -> Optional[Value]:
        rules = self._rules_by_root.get(_root_op_name(inst))
        if not rules:
            return None
        for rule in rules:
            replacement = try_apply(rule, inst)
            if replacement is not None:
                self.stats.generated_rules_fired += 1
                return replacement
        return None


def _root_op_name(inst: Instruction) -> str:
    return inst.opcode.value


_DEFAULT_RULES: Optional[list] = None


def _default_rules() -> list:
    """The checked-in lc-synth rule set, loaded once per process."""
    global _DEFAULT_RULES
    if _DEFAULT_RULES is None:
        try:
            from .peephole import load_generated_rules

            _DEFAULT_RULES = load_generated_rules()
        except Exception:
            _DEFAULT_RULES = []  # no generated file: run bare
    return _DEFAULT_RULES


def _canonicalize(inst: Instruction) -> bool:
    """Move constants to the right of commutative operators."""
    if isinstance(inst, BinaryOperator) and inst.is_commutative:
        lhs, rhs = inst.operands
        if isinstance(lhs, Constant) and not isinstance(rhs, Constant):
            inst.set_operand(0, rhs)
            inst.set_operand(1, lhs)
            return True
    return False


def _int_constant(value: Value, expected: int) -> bool:
    return isinstance(value, ConstantInt) and value.value == expected


def _all_ones(value: Value) -> bool:
    if not isinstance(value, ConstantInt):
        return False
    ty = value.type
    return value.value == ty.wrap(-1)  # type: ignore[attr-defined]


def _is_zero(value: Value) -> bool:
    return isinstance(value, Constant) and value.is_null_value() and not value.type.is_floating


def _simplify(inst: Instruction,
              unsafe_cast_fold: bool = False) -> Optional[Value]:
    if isinstance(inst, BinaryOperator):
        return _simplify_binary(inst)
    if isinstance(inst, ShiftInst):
        if _int_constant(inst.amount, 0):
            return inst.value
        if _is_zero(inst.value):
            return inst.value
        return None
    if isinstance(inst, CastInst):
        return _simplify_cast(inst, unsafe_cast_fold)
    if isinstance(inst, GetElementPtrInst):
        if inst.has_all_zero_indices() and inst.type is inst.pointer.type:
            return inst.pointer
        return None
    return None


def _simplify_binary(inst: BinaryOperator) -> Optional[Value]:
    opcode = inst.opcode
    lhs, rhs = inst.operands
    ty = lhs.type
    is_fp = ty.is_floating

    if opcode == Opcode.ADD:
        if _is_zero(rhs):
            return lhs
        return None
    if opcode == Opcode.SUB:
        if _is_zero(rhs):
            return lhs
        if lhs is rhs and not is_fp:
            return null_value(ty)
        return None
    if opcode == Opcode.MUL:
        if _int_constant(rhs, 1) or (is_fp and _fp_constant(rhs, 1.0)):
            return lhs
        if _is_zero(rhs):
            return rhs  # x * 0 == 0 for integers
        return None
    if opcode == Opcode.DIV:
        if _int_constant(rhs, 1) or (is_fp and _fp_constant(rhs, 1.0)):
            return lhs
        return None
    if opcode == Opcode.AND:
        if _is_zero(rhs):
            return rhs
        if _all_ones(rhs) or (ty.is_bool and _bool_constant(rhs, True)):
            return lhs
        if lhs is rhs:
            return lhs
        return None
    if opcode == Opcode.OR:
        if _is_zero(rhs) or (ty.is_bool and _bool_constant(rhs, False)):
            return lhs
        if _all_ones(rhs):
            return rhs
        if lhs is rhs:
            return lhs
        return None
    if opcode == Opcode.XOR:
        if _is_zero(rhs) or (ty.is_bool and _bool_constant(rhs, False)):
            return lhs
        if lhs is rhs:
            return null_value(ty)
        return None
    if opcode in (Opcode.SETEQ, Opcode.SETLE, Opcode.SETGE):
        if lhs is rhs and not is_fp:  # NaN != NaN, so skip floats
            return ConstantBool(True)
        return None
    if opcode in (Opcode.SETNE, Opcode.SETLT, Opcode.SETGT):
        if lhs is rhs and not is_fp:
            return ConstantBool(False)
        return None
    return None


def _fp_constant(value: Value, expected: float) -> bool:
    from ..core.values import ConstantFP

    return isinstance(value, ConstantFP) and value.value == expected


def _bool_constant(value: Value, expected: bool) -> bool:
    return isinstance(value, ConstantBool) and value.value is expected


def _cast_pair_foldable(src: types.Type, mid: types.Type,
                        dst: types.Type) -> bool:
    """Is ``cast (cast X: src to mid) to dst`` == ``cast X to dst``?

    Losslessness of src->mid is necessary but not sufficient: a
    same-width integer cast keeps every bit yet flips the signedness
    the outer cast *reinterprets*.  ``(long)(uint)x`` zero-extends; if
    x is ``int``, folding to ``(long)x`` sign-extends — a miscompile
    (found by lc-fuzz, reduced by lc-bugpoint).  The outer cast only
    ignores the reinterpretation when it never widens past the middle
    type's width.
    """
    if not types.is_losslessly_convertible(src, mid):
        return False
    if src is mid:
        return True
    if src.is_pointer and mid.is_pointer:
        # Pointer casts are pure reinterpretation; the representation
        # is a bare address either way.
        return True
    # Remaining lossless pairs are same-width integers of opposite
    # signedness.  The middle cast matters exactly when the outer cast
    # widens (the extension picks sign by the middle type) — anything
    # that stays within mid's bits sees the same low bits.
    if dst.is_bool:
        return True
    return dst.is_integer and dst.bits <= mid.bits


def _simplify_cast(inst: CastInst,
                   unsafe_cast_fold: bool = False) -> Optional[Value]:
    source = inst.value
    if source.type is inst.type:
        return source
    if isinstance(source, CastInst):
        # cast (cast X to B) to C == cast X to C when the middle step
        # loses nothing and C does not reinterpret what B changed.
        inner = source.value
        foldable = (types.is_losslessly_convertible(inner.type, source.type)
                    if unsafe_cast_fold  # the resurrected PR-4 bug
                    else _cast_pair_foldable(inner.type, source.type,
                                             inst.type))
        if foldable:
            if inner.type is inst.type:
                return inner
            builder_parent = inst.parent
            if builder_parent is not None:
                replacement = CastInst(inner, inst.type)
                index = builder_parent.instructions.index(inst)
                builder_parent.insert(index, replacement)
                return replacement
    return None
