"""Transformations: scalar passes, SSA construction, and IPO.

The standard pipelines (what ``-O1``/``-O3`` mean here) live in
:mod:`repro.driver.pipelines`.
"""

from .constprop import ConstantPropagation
from .dce import AggressiveDCE, DeadCodeElimination
from .gvn import GVN
from .instcombine import InstCombine
from .licm import LICM
from .mem2reg import PromoteMem2Reg
from .passmanager import (
    FunctionPassAdaptor, ModulePassAdaptor, PassManager, PassTimings,
)
from .rangeopt import RangeOpt
from .reassociate import Reassociate
from .sccp import SCCP
from .simplifycfg import SimplifyCFG
from .sroa import ScalarReplAggregates
from .tailrec import TailRecursionElimination

__all__ = [
    "ConstantPropagation", "AggressiveDCE", "DeadCodeElimination", "GVN",
    "InstCombine", "LICM", "PromoteMem2Reg", "FunctionPassAdaptor",
    "ModulePassAdaptor", "PassManager", "PassTimings", "RangeOpt",
    "Reassociate",
    "SCCP", "SimplifyCFG", "ScalarReplAggregates",
    "TailRecursionElimination",
]
