"""Range-driven optimization (correlated-value-propagation style).

Consumes the verified abstract interpretation facts from
:mod:`repro.analysis.absint` — per-SSA-value intervals and known bits —
and performs rewrites those facts *prove*:

* **value folding** — an instruction whose fact admits exactly one
  concrete value becomes that constant (comparisons fold to ``bool``,
  which in turn folds conditional branches);
* **remainder identity** — ``x rem y`` is ``x`` when the dividend's
  interval lies entirely below the divisor's (``0 <= x < y``);
* **strength reduction** — ``x div 2^k`` becomes ``x shr k`` and
  ``x rem 2^k`` becomes ``x and (2^k - 1)`` when the dividend is
  provably non-negative;
* **bit-identity simplification** — ``x and y`` is ``x`` when every
  bit ``y`` might clear is already known zero in ``x``; dually for
  ``x or y`` when every bit ``y`` might set is known one.

Every rewrite is justified by facts whose transformers are
machine-checked (``lc-absint --self-check``), and the pass runs under
translation validation in CI, so an unsound fold cannot ship silently.

Division/remainder instructions are only folded or erased when the
divisor's interval excludes zero — otherwise a trapping execution
would be removed, which, while technically licensed by refinement,
would change observable faulting behaviour the test suite pins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core import types
from ..core.constfold import make_constant
from ..core.instructions import (
    BinaryOperator,
    CastInst,
    Opcode,
    PhiNode,
    ShiftInst,
)
from ..core.module import Function
from ..core.values import ConstantInt
from .utils import constant_fold_terminator, replace_and_erase

if TYPE_CHECKING:
    from ..analysis.absint import ValueFacts


class RangeOpt:
    """The pass object (see module docstring)."""

    name = "rangeopt"

    def __init__(self):
        self.values_folded = 0
        self.cmps_folded = 0
        self.branches_folded = 0
        self.divrem_reduced = 0
        self.rem_identities = 0
        self.bitops_simplified = 0

    def statistics(self) -> dict:
        return {
            "values-folded": self.values_folded,
            "cmps-folded": self.cmps_folded,
            "branches-folded": self.branches_folded,
            "divrem-strength-reduced": self.divrem_reduced,
            "rem-identities": self.rem_identities,
            "bitops-simplified": self.bitops_simplified,
        }

    def run_on_function(self, function: Function) -> bool:
        if function.is_declaration:
            return False
        # Imported here, not at module scope: absint itself sits on the
        # sanalysis dataflow engine, whose package pulls the transforms
        # back in through the SSA-view checkers.
        from ..analysis.absint import analyze_function

        facts = analyze_function(function)
        changed = False
        for block in list(function.blocks):
            for inst in list(block.instructions):
                if inst.parent is None:
                    continue  # erased by an earlier rewrite
                changed |= self._simplify(inst, facts)
        for block in list(function.blocks):
            if block.parent is not None and constant_fold_terminator(block):
                self.branches_folded += 1
                changed = True
        return changed

    # -- rewrites -----------------------------------------------------------

    def _simplify(self, inst, facts: "ValueFacts") -> bool:
        if not isinstance(inst, (BinaryOperator, ShiftInst, CastInst,
                                 PhiNode)):
            return False
        fact = facts.abs_of(inst)
        if fact is None:
            return False
        if self._fold_singleton(inst, fact, facts):
            return True
        if isinstance(inst, BinaryOperator):
            if inst.opcode in (Opcode.DIV, Opcode.REM):
                return self._simplify_divrem(inst, facts)
            if inst.opcode in (Opcode.AND, Opcode.OR):
                return self._simplify_bitop(inst, facts)
        return False

    def _fold_singleton(self, inst, fact, facts: "ValueFacts") -> bool:
        value = fact.singleton()
        if value is None:
            return False
        if isinstance(inst, BinaryOperator) and \
                inst.opcode in (Opcode.DIV, Opcode.REM):
            divisor = facts.interval_of(inst.rhs)
            if divisor is None or divisor.contains(0):
                return False  # folding would erase a possible trap
        replacement = make_constant(inst.type, value)
        if inst.is_comparison:
            self.cmps_folded += 1
        else:
            self.values_folded += 1
        replace_and_erase(inst, replacement)
        return True

    def _simplify_divrem(self, inst, facts: "ValueFacts") -> bool:
        dividend = facts.interval_of(inst.lhs)
        divisor = facts.interval_of(inst.rhs)
        if dividend is None or divisor is None:
            return False
        # x rem y == x when every execution has 0 <= x < y.
        if inst.opcode == Opcode.REM and dividend.lo >= 0 \
                and divisor.lo > dividend.hi:
            self.rem_identities += 1
            replace_and_erase(inst, inst.lhs)
            return True
        # x div/rem 2^k with x provably non-negative: shift/mask.
        if not isinstance(inst.rhs, ConstantInt):
            return False
        power = inst.rhs.value
        if power <= 1 or power & (power - 1) or dividend.lo < 0:
            return False
        block = inst.parent
        index = block.instructions.index(inst)
        if inst.opcode == Opcode.DIV:
            shift = power.bit_length() - 1
            replacement = ShiftInst(Opcode.SHR, inst.lhs,
                                    ConstantInt(types.UBYTE, shift),
                                    inst.name)
        else:
            replacement = BinaryOperator(Opcode.AND, inst.lhs,
                                         ConstantInt(inst.type, power - 1),
                                         inst.name)
        replacement.loc = inst.loc
        block.insert(index, replacement)
        self.divrem_reduced += 1
        replace_and_erase(inst, replacement)
        return True

    def _simplify_bitop(self, inst, facts: "ValueFacts") -> bool:
        from ..analysis.absint import shape_of

        shape = shape_of(inst.type)
        if shape is None:
            return False
        mask = (1 << shape[0]) - 1
        for kept, other in ((inst.lhs, inst.rhs), (inst.rhs, inst.lhs)):
            kept_kb = facts.knownbits_of(kept)
            other_kb = facts.knownbits_of(other)
            if kept_kb is None or other_kb is None:
                continue
            if inst.opcode == Opcode.AND:
                # Bits the other side might clear are already zero.
                may_clear = mask & ~other_kb.ones
                redundant = may_clear & kept_kb.zeros == may_clear
            else:
                # Bits the other side might set are already one.
                may_set = mask & ~other_kb.zeros
                redundant = may_set & kept_kb.ones == may_set
            if redundant:
                self.bitops_simplified += 1
                replace_and_erase(inst, kept)
                return True
        return False
