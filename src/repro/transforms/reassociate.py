"""Reassociation: reorder commutative expression trees to expose folding.

Rewrites chains like ``(a + 4) + (b + 3)`` into ``(a + b) + 7`` by
flattening trees of one commutative-associative opcode, folding the
constants, and rebuilding with constants last.  The paper calls out
reassociation as one of the optimizations that explicit ``getelementptr``
address arithmetic is exposed to; this pass supplies it for the scalar
component of address computations.
"""

from __future__ import annotations

from typing import Optional

from ..core import constfold
from ..core.builder import IRBuilder
from ..core.instructions import BinaryOperator, Instruction, Opcode
from ..core.module import Function
from ..core.values import Constant, Value
from .utils import delete_dead_instructions

#: Opcodes that are commutative and associative over their integral types.
_REASSOCIABLE = (Opcode.ADD, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR)


class Reassociate:
    """The pass object (see module docstring)."""

    name = "reassociate"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        for block in function.blocks:
            for inst in list(block.instructions):
                if inst.parent is None:
                    continue
                if self._reassociate(inst):
                    changed = True
        if changed:
            delete_dead_instructions(function)
        return changed

    def _reassociate(self, inst: Instruction) -> bool:
        if not isinstance(inst, BinaryOperator):
            return False
        if inst.opcode not in _REASSOCIABLE:
            return False
        if inst.type.is_floating:
            return False  # FP reassociation changes results
        # Only rewrite tree roots: an operand of the same opcode is a
        # subtree we flatten from the top.
        for user in inst.users():
            if (isinstance(user, BinaryOperator) and user.opcode == inst.opcode
                    and user.type is inst.type and user.parent is not None):
                return False
        leaves: list[Value] = []
        constants: list[Constant] = []
        count = 1
        count += self._flatten(inst.operands[0], inst.opcode, leaves, constants)
        count += self._flatten(inst.operands[1], inst.opcode, leaves, constants)
        if count < 2 or not constants:
            return False
        if len(constants) == 1 and constants[0] is inst.operands[1]:
            return False  # already in canonical (expr op constant) shape
        folded: Optional[Constant] = constants[0]
        for constant in constants[1:]:
            folded = constfold.fold_binary(inst.opcode, folded, constant)
            if folded is None:
                return False
        builder = IRBuilder()
        builder.position_before(inst)
        result: Optional[Value] = None
        for leaf in leaves:
            if result is None:
                result = leaf
            else:
                result = builder._binary(inst.opcode, result, leaf, "reassoc")
        if result is None:
            result = folded
        elif not _is_identity(inst.opcode, folded):
            result = builder._binary(inst.opcode, result, folded, "reassoc")
        if result is inst:
            return False
        inst.replace_all_uses_with(result)
        inst.erase_from_parent()
        return True

    def _flatten(self, value: Value, opcode: Opcode,
                 leaves: list[Value], constants: list[Constant]) -> int:
        """Collect leaves/constants of the operator tree; returns node count."""
        if isinstance(value, Constant):
            constants.append(value)
            return 0
        # Only descend through single-use internal nodes: a shared
        # subtree feeding other expressions must stay intact.
        if (isinstance(value, BinaryOperator) and value.opcode == opcode
                and value.parent is not None and len(value.uses) == 1):
            count = 1
            count += self._flatten(value.operands[0], opcode, leaves, constants)
            count += self._flatten(value.operands[1], opcode, leaves, constants)
            return count
        leaves.append(value)
        return 0


def _is_identity(opcode: Opcode, constant: Constant) -> bool:
    value = getattr(constant, "value", None)
    if opcode in (Opcode.ADD, Opcode.OR, Opcode.XOR):
        return value == 0
    if opcode == Opcode.MUL:
        return value == 1
    if opcode == Opcode.AND:
        ty = constant.type
        if ty.is_integer:
            return value == ty.wrap(-1)  # type: ignore[attr-defined]
        return value is True
    return False
