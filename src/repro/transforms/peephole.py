"""Generated peephole rules: the tree language, matcher, and builder.

``lc-synth`` (:mod:`repro.tvalid.synth`) enumerates candidate rewrite
rules over a small expression-tree language, verifies each one
exhaustively at narrow bitwidths, and emits the survivors into
``instcombine_generated.py``.  This module is the *runtime* half: it
evaluates trees (shared with the synthesizer, so verification and
application can never diverge), structurally matches a rule's LHS
against live IR, and builds the RHS in place.

Tree grammar (JSON-serializable lists):

* ``["var", i]`` — the i-th pattern variable, of the subject type T;
* ``["const", c]`` — the integer constant ``T.wrap(c)`` (width-generic:
  -1 is all-ones at every width);
* ``["cvar", i]`` — the i-th *constant* variable: matches any
  ``ConstantInt`` of type T and binds its value (the generalized
  constant-reassociation rules use these);
* ``["cfold", op, a, b]`` — RHS-only: fold ``op`` over two bound
  constants at rewrite time, producing a new ``ConstantInt``
  (``(x + C1) + C2 -> x + (C1+C2)`` without enumerating constants);
* ``["bool", b]`` — a boolean constant (comparison-rooted rules);
* ``["amt", n]`` — a ubyte shift-amount constant;
* ``[op, a, b]`` — ``op`` in add/sub/mul/and/or/xor (operands and
  result typed T), seteq/setne/setlt/setgt/setle/setge (operands T,
  result bool), or shl/shr (value T, amount an ``amt`` node).

Evaluation envs are ``(x, y, c0, c1)`` tuples: pattern variables read
slots 0-1, constant variables slots 2-3.  For *verification* a
constant variable is just another universally-quantified input; only
matching treats it specially.

A rule's ``applies`` field restricts the subject type's signedness:
``"int"`` (any integer type), ``"sint"``, or ``"uint"`` — rules true
only at one signedness (``x shr 1`` identities, ordered comparisons)
are verified and emitted per class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..core import types
from ..core.constfold import eval_binary, eval_shift
from ..core.instructions import (
    BinaryOperator, COMMUTATIVE_OPCODES, COMPARISON_OPCODES, Instruction,
    Opcode, ShiftInst,
)
from ..core.values import ConstantBool, ConstantInt, Value

_BINARY_OPS = {
    "add": Opcode.ADD, "sub": Opcode.SUB, "mul": Opcode.MUL,
    "and": Opcode.AND, "or": Opcode.OR, "xor": Opcode.XOR,
    "seteq": Opcode.SETEQ, "setne": Opcode.SETNE, "setlt": Opcode.SETLT,
    "setgt": Opcode.SETGT, "setle": Opcode.SETLE, "setge": Opcode.SETGE,
}
_SHIFT_OPS = {"shl": Opcode.SHL, "shr": Opcode.SHR}
_CMP_OPS = frozenset(op for op, code in _BINARY_OPS.items()
                     if code in COMPARISON_OPCODES)


@dataclass(frozen=True)
class Rule:
    """One verified rewrite: ``lhs`` tree -> ``rhs`` tree."""

    name: str
    lhs: tuple
    rhs: tuple
    applies: str = "int"          # "int" | "sint" | "uint"

    @classmethod
    def from_dict(cls, record: dict) -> "Rule":
        return cls(name=record["name"], lhs=_freeze(record["lhs"]),
                   rhs=_freeze(record["rhs"]),
                   applies=record.get("applies", "int"))

    @property
    def root_op(self) -> str:
        return self.lhs[0]


def _freeze(tree) -> tuple:
    if isinstance(tree, (list, tuple)):
        return tuple(_freeze(item) for item in tree)
    return tree


_LEAF_HEADS = ("var", "const", "bool", "amt", "cvar")


def tree_cost(tree) -> int:
    """Instructions the tree takes to compute (op nodes; a ``cfold``
    collapses to a constant at rewrite time, so it is free)."""
    head = tree[0]
    if head in _LEAF_HEADS:
        return 0
    if head == "cfold":
        return 0
    return 1 + sum(tree_cost(operand) for operand in tree[1:])


def tree_vars(tree) -> set:
    head = tree[0]
    if head == "var":
        return {tree[1]}
    if head in ("const", "bool", "amt", "cvar"):
        return set()
    operands = tree[2:] if head == "cfold" else tree[1:]
    return set().union(*(tree_vars(operand) for operand in operands))


def tree_cvars(tree) -> set:
    """Constant-variable indices the tree reads."""
    head = tree[0]
    if head == "cvar":
        return {tree[1]}
    if head in ("var", "const", "bool", "amt"):
        return set()
    operands = tree[2:] if head == "cfold" else tree[1:]
    return set().union(*(tree_cvars(operand) for operand in operands))


def tree_name(tree) -> str:
    """A compact human-readable spelling, used for rule names."""
    head = tree[0]
    if head == "var":
        return "xy"[tree[1]] if tree[1] < 2 else f"v{tree[1]}"
    if head == "cvar":
        return f"C{tree[1]}"
    if head == "const":
        return str(tree[1]).replace("-", "m")
    if head == "bool":
        return "true" if tree[1] else "false"
    if head == "amt":
        return str(tree[1])
    if head == "cfold":
        inner = ", ".join(tree_name(o) for o in tree[2:])
        return f"[{tree[1]} {inner}]"
    return f"{head}({', '.join(tree_name(o) for o in tree[1:])})"


def eval_tree(tree, ty: types.IntegerType, env: Sequence):
    """Evaluate a tree on concrete values of the subject type ``ty``.

    The single semantic authority is :mod:`repro.core.constfold` — the
    same evaluators the interpreter and the constant folder use — so a
    rule verified here is a rule the execution engines obey.
    """
    head = tree[0]
    if head == "var":
        return env[tree[1]]
    if head == "cvar":
        return env[2 + tree[1]]
    if head == "const":
        return ty.wrap(tree[1])
    if head == "bool":
        return tree[1]
    if head == "cfold":
        lhs = eval_tree(tree[2], ty, env)
        rhs = eval_tree(tree[3], ty, env)
        return eval_binary(_BINARY_OPS[tree[1]], ty, lhs, rhs)
    if head in _SHIFT_OPS:
        value = eval_tree(tree[1], ty, env)
        amount = tree[2]
        assert amount[0] == "amt"
        return eval_shift(_SHIFT_OPS[head], ty, value, amount[1])
    opcode = _BINARY_OPS[head]
    lhs = eval_tree(tree[1], ty, env)
    rhs = eval_tree(tree[2], ty, env)
    return eval_binary(opcode, ty, lhs, rhs)


# ----------------------------------------------------------------------
# Matching against live IR
# ----------------------------------------------------------------------

def _match(tree, value: Value, subject_ty: types.Type,
           bindings: dict) -> bool:
    head = tree[0]
    if head == "var":
        bound = bindings.get(tree[1])
        if bound is None:
            if value.type is not subject_ty:
                return False
            bindings[tree[1]] = value
            return True
        return bound is value
    if head == "const":
        return (isinstance(value, ConstantInt) and value.type is subject_ty
                and value.value == subject_ty.wrap(tree[1]))  # type: ignore[attr-defined]
    if head == "cvar":
        if not (isinstance(value, ConstantInt) and value.type is subject_ty):
            return False
        key = ("c", tree[1])
        bound = bindings.get(key)
        if bound is None:
            bindings[key] = value.value
            return True
        return bound == value.value
    if head == "bool":
        return isinstance(value, ConstantBool) and value.value is tree[1]
    if head == "amt":
        return (isinstance(value, ConstantInt)
                and value.type is types.UBYTE and value.value == tree[1])
    if head in _SHIFT_OPS:
        if not isinstance(value, ShiftInst):
            return False
        if value.opcode is not _SHIFT_OPS[head]:
            return False
        return _match_pair(tree, value.operands[0], value.operands[1],
                           subject_ty, bindings)
    opcode = _BINARY_OPS.get(head)
    if opcode is None or not isinstance(value, BinaryOperator):
        return False
    if value.opcode is not opcode:
        return False
    lhs, rhs = value.operands
    if _match_pair(tree, lhs, rhs, subject_ty, bindings):
        return True
    if opcode in COMMUTATIVE_OPCODES:
        return _match_pair(tree, rhs, lhs, subject_ty, bindings)
    return False


def _match_pair(tree, first: Value, second: Value, subject_ty: types.Type,
                bindings: dict) -> bool:
    """Match both operand subtrees transactionally: a failed attempt
    must not leak partial bindings into the caller's state (the
    commutative retry, and any outer match, would see stale vars)."""
    trial = dict(bindings)
    if (_match(tree[1], first, subject_ty, trial)
            and _match(tree[2], second, subject_ty, trial)):
        bindings.clear()
        bindings.update(trial)
        return True
    return False


def _subject_type(rule: Rule, inst: Instruction) -> Optional[types.Type]:
    """The integer type T that instantiates the rule at this site."""
    if rule.root_op in _CMP_OPS:
        ty = inst.operands[0].type
    else:
        ty = inst.type
    if not ty.is_integer:
        return None
    if rule.applies == "sint" and not ty.signed:  # type: ignore[attr-defined]
        return None
    if rule.applies == "uint" and ty.signed:  # type: ignore[attr-defined]
        return None
    return ty


def _build(tree, subject_ty: types.Type, bindings: dict,
           anchor: Instruction) -> Value:
    """Materialize the RHS; new instructions insert before ``anchor``."""
    head = tree[0]
    if head == "var":
        return bindings[tree[1]]
    if head == "cvar":
        return ConstantInt(subject_ty, bindings[("c", tree[1])])
    if head == "const":
        return ConstantInt(subject_ty, subject_ty.wrap(tree[1]))  # type: ignore[attr-defined]
    if head == "bool":
        return ConstantBool(tree[1])
    if head == "amt":
        return ConstantInt(types.UBYTE, tree[1])
    if head == "cfold":
        folded = eval_binary(_BINARY_OPS[tree[1]], subject_ty,
                             _const_value(tree[2], subject_ty, bindings),
                             _const_value(tree[3], subject_ty, bindings))
        return ConstantInt(subject_ty, folded)
    operands = [_build(operand, subject_ty, bindings, anchor)
                for operand in tree[1:]]
    if head in _SHIFT_OPS:
        built: Instruction = ShiftInst(_SHIFT_OPS[head], operands[0],
                                       operands[1])
    else:
        built = BinaryOperator(_BINARY_OPS[head], operands[0], operands[1])
    block = anchor.parent
    block.insert(block.instructions.index(anchor), built)
    return built


def _const_value(tree, subject_ty: types.Type, bindings: dict) -> int:
    """A ``cfold`` operand (cvar/const/nested cfold) as a plain int."""
    head = tree[0]
    if head == "cvar":
        return bindings[("c", tree[1])]
    if head == "const":
        return subject_ty.wrap(tree[1])  # type: ignore[attr-defined]
    if head == "cfold":
        return eval_binary(_BINARY_OPS[tree[1]], subject_ty,
                           _const_value(tree[2], subject_ty, bindings),
                           _const_value(tree[3], subject_ty, bindings))
    raise ValueError(f"non-constant cfold operand: {tree!r}")


def try_apply(rule: Rule, inst: Instruction) -> Optional[Value]:
    """Match ``rule`` at ``inst``; on success build and return the
    replacement value (the caller RAUWs and erases)."""
    subject_ty = _subject_type(rule, inst)
    if subject_ty is None:
        return None
    bindings: dict = {}
    if not _match(rule.lhs, inst, subject_ty, bindings):
        return None
    if tree_vars(rule.rhs) - set(bindings):
        return None  # RHS needs a variable the LHS never bound
    if tree_cvars(rule.rhs) - {k[1] for k in bindings
                               if isinstance(k, tuple)}:
        return None  # likewise for constant variables
    return _build(rule.rhs, subject_ty, bindings, inst)


def load_generated_rules() -> list[Rule]:
    """The checked-in, lc-synth-verified rule set."""
    from .instcombine_generated import RULES

    return [Rule.from_dict(record) for record in RULES]
