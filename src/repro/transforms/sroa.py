"""Scalar expansion: scalar replacement of aggregates (paper section 3.2).

"Scalar expansion ... expands local structures to scalars wherever
possible, so that their fields can be mapped to SSA registers as well."
An ``alloca`` of a struct or small array whose address is used only in
constant-index GEPs (whose results in turn are only loaded/stored) is
split into one alloca per element; ``mem2reg`` then promotes those.
"""

from __future__ import annotations

from typing import Optional

from ..core import types
from ..core.instructions import (
    AllocaInst, GetElementPtrInst, Instruction, LoadInst, StoreInst,
)
from ..core.module import Function
from ..core.values import ConstantInt

#: Arrays bigger than this stay in memory (splitting huge arrays into
#: thousands of allocas would bloat the function for no benefit).
MAX_ARRAY_ELEMENTS = 16


class ScalarReplAggregates:
    """The pass object (see module docstring)."""

    name = "sroa"

    def run_on_function(self, function: Function) -> bool:
        changed = False
        again = True
        while again:  # splitting nested aggregates exposes more candidates
            again = False
            for block in function.blocks:
                for inst in list(block.instructions):
                    if isinstance(inst, AllocaInst) and _is_splittable(inst):
                        _split(inst)
                        changed = True
                        again = True
        return changed


def _is_splittable(alloca: AllocaInst) -> bool:
    ty = alloca.allocated_type
    if alloca.array_size is not None:
        return False
    if ty.is_struct:
        if ty.is_opaque or not ty.fields:
            return False
    elif ty.is_array:
        if ty.count == 0 or ty.count > MAX_ARRAY_ELEMENTS:
            return False
    else:
        return False
    for use in alloca.uses:
        user = use.user
        if not isinstance(user, GetElementPtrInst):
            return False
        if user.pointer is not alloca:
            return False  # alloca used as an index (absurd, but be safe)
        if not user.has_all_constant_indices():
            return False
        indices = user.indices
        if len(indices) < 2:
            return False
        first = indices[0]
        if not isinstance(first, ConstantInt) or first.value != 0:
            return False
        if ty.is_array:
            second = indices[1]
            if not (0 <= second.value < ty.count):  # type: ignore[attr-defined]
                return False
    return True


def _split(alloca: AllocaInst) -> None:
    ty = alloca.allocated_type
    if ty.is_struct:
        element_types = list(ty.fields)
    else:
        element_types = [ty.element] * ty.count
    block = alloca.parent
    position = block.instructions.index(alloca)
    pieces = []
    for index, element_ty in enumerate(element_types):
        piece = AllocaInst(element_ty, None, f"{alloca.name or 'agg'}.{index}")
        block.insert(position, piece)
        position += 1
        pieces.append(piece)
    for use in list(alloca.uses):
        gep: GetElementPtrInst = use.user  # type: ignore[assignment]
        element_index = gep.indices[1].value  # type: ignore[attr-defined]
        piece = pieces[element_index]
        remaining = gep.indices[2:]
        if remaining:
            # Deeper access: rebase the GEP onto the piece.
            zero = ConstantInt(types.LONG, 0)
            new_gep = GetElementPtrInst(piece, [zero, *remaining], gep.name)
            gep_block = gep.parent
            gep_position = gep_block.instructions.index(gep)
            gep_block.insert(gep_position, new_gep)
            gep.replace_all_uses_with(new_gep)
        else:
            gep.replace_all_uses_with(piece)
        gep.erase_from_parent()
    alloca.erase_from_parent()
