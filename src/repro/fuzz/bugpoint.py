"""lc-bugpoint: turn a failing fuzz case into a named pass + tiny IR.

Two classic debuggers in one module, modelled on LLVM's ``bugpoint``:

* **pass bisection** — given a program whose optimized behaviour
  diverges from the ``-O0`` reference, binary-search the prefix length
  of the standard pipeline to find the first pass whose addition makes
  the divergence appear.  The pipeline prefix is re-run from a fresh
  module each probe (passes mutate in place), so the search is exact.

* **delta reduction** — shrink a module while an arbitrary
  *interestingness* predicate keeps holding.  Reduction proceeds
  top-down: drop whole function bodies, then simplify control flow by
  forcing conditional branches, then delete individual instructions
  (replacing uses with a zero of the right type).  Every accepted step
  is verifier-clean; a candidate that fails the verifier or the
  predicate is rolled back by construction (we mutate clones).

Modules are cloned through the bytecode writer/reader — the cheapest
faithful deep-copy in the system, and a free round-trip test besides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..bitcode import read_bytecode, write_bytecode
from ..core import print_module, verify_module
from ..core.instructions import BranchInst, Opcode
from ..core.module import Module
from ..core.values import Constant, null_value
from ..driver import pipelines
from ..frontend import compile_source
from ..transforms import PassManager
from .harness import (
    DEFAULT_STEP_LIMIT, Outcome, run_interpreter, run_machine,
)

Predicate = Callable[[Module], bool]


def clone_module(module: Module) -> Module:
    """Deep-copy a module (bytecode round-trip)."""
    return read_bytecode(write_bytecode(module, strip_names=False))


# ----------------------------------------------------------------------
# Pass bisection
# ----------------------------------------------------------------------

@dataclass
class BisectionResult:
    guilty_pass: Optional[str]      # None: divergence needs no passes
    prefix_length: int              # passes needed to expose the bug
    pass_names: list[str]


def _run_prefix(module: Module, passes: Sequence, length: int) -> Module:
    manager = PassManager()
    for pass_obj in passes[:length]:
        manager.add(pass_obj)
    manager.run(module)
    return module


def bisect_passes(module_factory: Callable[[], Module],
                  interesting: Predicate,
                  level: int = 2,
                  passes: Optional[Sequence] = None) -> BisectionResult:
    """Find the first pass of the ``-O<level>`` pipeline that makes
    ``interesting`` become true.

    ``module_factory`` must produce a fresh, equivalent module per call
    (e.g. recompile the source); ``interesting`` is evaluated on the
    module *after* running a pipeline prefix over it.  ``passes``
    overrides the pipeline (used by the self-test to plant a known-bad
    pass and check it gets named).
    """
    if passes is None:
        passes = pipelines.standard_pipeline(level).passes
    names = [getattr(p, "name", type(p).__name__) for p in passes]

    def probe(length: int) -> bool:
        return interesting(_run_prefix(module_factory(), passes, length))

    if probe(0):
        return BisectionResult(None, 0, names)
    if not probe(len(passes)):
        raise ValueError("divergence does not reproduce under the "
                         "full pipeline; nothing to bisect")
    low, high = 0, len(passes)  # probe(low) False, probe(high) True
    while high - low > 1:
        mid = (low + high) // 2
        if probe(mid):
            high = mid
        else:
            low = mid
    return BisectionResult(names[high - 1], high, names)


# ----------------------------------------------------------------------
# Delta reduction
# ----------------------------------------------------------------------

def _still_interesting(module: Module, interesting: Predicate) -> bool:
    try:
        verify_module(module)
    except Exception:
        return False
    # Hand the predicate a clone: running it (optimizing, executing)
    # must not contaminate the candidate we may keep reducing.
    return interesting(clone_module(module))


def _try_drop_function_bodies(module: Module,
                              interesting: Predicate) -> tuple[Module, bool]:
    changed = False
    for name in [f.name for f in module.defined_functions()]:
        if len(list(module.defined_functions())) <= 1:
            break
        candidate = clone_module(module)
        candidate.functions[name].delete_body()
        if _still_interesting(candidate, interesting):
            module = candidate
            changed = True
    return module, changed


def _conditional_branches(function) -> list[BranchInst]:
    return [inst for block in function.blocks for inst in block
            if isinstance(inst, BranchInst) and inst.is_conditional]


def _force_branches(module: Module,
                    interesting: Predicate) -> tuple[Module, bool]:
    """Try rewriting conditional branches as unconditional ones."""
    changed = False
    for fn_name in [f.name for f in module.defined_functions()]:
        index = 0
        while index < len(_conditional_branches(module.functions[fn_name])):
            accepted = False
            for side in (0, 1):
                trial = clone_module(module)
                branch = _conditional_branches(
                    trial.functions[fn_name])[index]
                kept = branch.successors[side]
                dropped = branch.successors[1 - side]
                parent_block = branch.parent
                if dropped is not kept:
                    for phi in dropped.phis():
                        phi.remove_incoming(parent_block)
                position = parent_block.instructions.index(branch)
                branch.erase_from_parent()
                parent_block.insert(position, BranchInst(kept))
                if _still_interesting(trial, interesting):
                    module = trial
                    changed = True
                    accepted = True
                    break
            if not accepted:
                index += 1
    return module, changed


def _instruction_count(module: Module) -> int:
    return sum(f.instruction_count() for f in module.defined_functions())


def _try_simplify_cfg(module: Module,
                      interesting: Predicate) -> tuple[Module, bool]:
    """Collapse the branch chains the other reducers leave behind.

    Instruction deletion empties blocks but never touches terminators,
    so a reduced function is often a long ``br`` daisy-chain.  One
    guarded SimplifyCFG sweep merges it away — guarded, because the
    pass under reduction may *be* SimplifyCFG (or the chain may tickle
    the same bug), in which case the candidate is simply rejected.
    """
    candidate = clone_module(module)
    try:
        from ..transforms import SimplifyCFG

        for function in list(candidate.defined_functions()):
            SimplifyCFG().run_on_function(function)
        verify_module(candidate)
    except Exception:
        return module, False
    if (_instruction_count(candidate) < _instruction_count(module)
            and _still_interesting(candidate, interesting)):
        return candidate, True
    return module, False


def _replacements(value_type, function) -> list:
    """Candidate stand-ins for a deleted instruction's value.

    Zero first, then one for integers (a divergence often hinges on an
    operand being non-zero: ``a+x`` and a miscompiled ``a-x`` agree at
    ``x == 0``), then same-typed function arguments — constants get
    folded by the very pipeline under test, so keeping an *opaque*
    value in place is often the only way a deletion preserves the bug.
    """
    candidates: list = [null_value(value_type)]
    if value_type.is_integer:
        from ..core.constfold import make_constant

        candidates.append(make_constant(value_type, 1))
    candidates.extend(arg for arg in function.args
                      if arg.type is value_type)
    return candidates


def _try_delete_instructions(module: Module,
                             interesting: Predicate) -> tuple[Module, bool]:
    changed = False
    for fn_name in [f.name for f in module.defined_functions()]:
        index = 0
        while True:
            function = module.functions[fn_name]
            flat = [
                (b, i) for b in function.blocks
                for i, inst in enumerate(b.instructions)
                if inst.opcode not in (Opcode.RET, Opcode.BR, Opcode.SWITCH,
                                       Opcode.INVOKE, Opcode.UNWIND,
                                       Opcode.PHI)
            ]
            if index >= len(flat):
                break
            block, position = flat[index]
            block_index = function.blocks.index(block)
            inst_type = block.instructions[position].type
            stand_in_count = (len(_replacements(inst_type, function))
                              if not inst_type.is_void else 1)
            accepted = False
            for stand_in_index in range(stand_in_count):
                candidate = clone_module(module)
                cand_fn = candidate.functions[fn_name]
                cand_block = cand_fn.blocks[block_index]
                inst = cand_block.instructions[position]
                if not inst_type.is_void:
                    stand_in = _replacements(inst.type,
                                             cand_fn)[stand_in_index]
                    inst.replace_all_uses_with(stand_in)
                inst.erase_from_parent()
                if _still_interesting(candidate, interesting):
                    module = candidate
                    changed = True
                    accepted = True
                    break
            if not accepted:
                index += 1
    return module, changed


def reduce_module(module: Module, interesting: Predicate,
                  max_rounds: int = 6) -> Module:
    """Shrink ``module`` while ``interesting`` holds; returns the
    reduced module (always verifier-clean, always still interesting).
    """
    if not _still_interesting(module, interesting):
        raise ValueError("input module is not interesting; refusing to "
                         "reduce toward nothing")
    module = clone_module(module)
    for _ in range(max_rounds):
        any_change = False
        for reducer in (_try_drop_function_bodies, _force_branches,
                        _try_delete_instructions, _try_simplify_cfg):
            module, changed = reducer(module, interesting)
            any_change = any_change or changed
        if not any_change:
            break
    verify_module(module)
    return module


# ----------------------------------------------------------------------
# The common driver: from a failing source to a verdict
# ----------------------------------------------------------------------

@dataclass
class BugpointResult:
    oracle: str
    guilty_pass: Optional[str]
    reduced: Module
    reduced_text: str
    reference: Outcome
    instruction_count: int


def _oracle_runner(oracle: str, step_limit: int):
    """Map a harness oracle name to (opt level, candidate runner)."""
    from ..backend.targets import SPARC, X86

    if oracle.startswith("interp-O"):
        level = int(oracle[len("interp-O"):])
        return level, lambda m: run_interpreter(m, step_limit)
    if oracle.startswith("sim-"):
        _, target_name, olevel = oracle.split("-")
        target = X86 if target_name == "x86" else SPARC
        return (int(olevel[1:]),
                lambda m: run_machine(m, target, step_limit * 8))
    raise ValueError(f"cannot bugpoint oracle {oracle!r}")


def bugpoint_source(source: str, oracle: str,
                    step_limit: int = DEFAULT_STEP_LIMIT,
                    reduce_step_limit: int = 100_000) -> BugpointResult:
    """Full workflow for one failing LC source + oracle name.

    Names the guilty pass (when the oracle involves the optimizer) and
    delta-reduces the ``-O0`` module under "this oracle still diverges
    from the interpreter on the same module".

    ``reduce_step_limit`` bounds each reduction probe: forcing a loop's
    backedge unconditionally makes the candidate spin, and burning the
    full fuzzing budget on every such probe would make reduction
    quadratic in wall-clock.  Probes that exceed it are simply deemed
    uninteresting (rolled back).  Raise it if the divergence itself
    needs many steps to manifest.
    """
    level, runner = _oracle_runner(oracle, step_limit)

    def fresh() -> Module:
        return compile_source(source, "bugpoint")

    reference = run_interpreter(fresh(), step_limit)

    guilty: Optional[str] = None
    if level > 0:
        def interesting_after_passes(module: Module) -> bool:
            candidate = runner(module)
            return (candidate.kind != "timeout"
                    and candidate != reference)

        result = bisect_passes(fresh, interesting_after_passes, level)
        guilty = result.guilty_pass

    # Reduce at -O0 against "optimizing/lowering the reduced module
    # still diverges from interpreting it" — the baseline is recomputed
    # per candidate because reduction legitimately changes behaviour.
    _, probe_runner = _oracle_runner(oracle, reduce_step_limit)

    def interesting(module: Module) -> bool:
        base = run_interpreter(clone_module(module), reduce_step_limit)
        if base.kind == "timeout":
            return False
        probe = clone_module(module)
        if level > 0:
            try:
                pipelines.optimize_module(probe, level=level)
            except Exception:
                return True  # crash while optimizing: still a bug
        try:
            candidate = probe_runner(probe)
        except Exception:
            return True  # codegen/engine crash: still a bug
        return candidate.kind != "timeout" and candidate != base

    reduced = reduce_module(fresh(), interesting)
    text = print_module(reduced)
    count = sum(f.instruction_count()
                for f in reduced.defined_functions())
    return BugpointResult(oracle, guilty, reduced, text, reference, count)
