"""Differential fuzzing and automatic bug reduction (lc-fuzz/lc-bugpoint).

The three representations (in-memory IR, text, bytecode), the two
execution engines (IR interpreter, machine-code simulator), the two
targets, and the optimization levels all claim to preserve one
semantics.  This package generates programs and holds every pair of
those paths to that claim — then shrinks whatever breaks it to a
minimal, named reproducer.
"""

from .bugpoint import (
    BisectionResult, BugpointResult, bisect_passes, bugpoint_source,
    clone_module, reduce_module,
)
from .faultinject import (
    FaultMatrixReport, FaultOutcome, FaultPlan, InjectedFault, injected,
    registered_sites, run_fault_matrix,
)
from .generator import ProgramGenerator, generate_program
from .harness import (
    Divergence, FuzzReport, HarnessConfig, Outcome, ProgramResult,
    check_program, fuzz, run_interpreter, run_interpreter_traced,
    run_machine,
)

__all__ = [
    "BisectionResult", "BugpointResult", "Divergence", "FaultMatrixReport",
    "FaultOutcome", "FaultPlan", "FuzzReport", "HarnessConfig",
    "InjectedFault", "Outcome", "ProgramGenerator", "ProgramResult",
    "bisect_passes", "bugpoint_source", "check_program", "clone_module",
    "fuzz", "generate_program", "injected", "reduce_module",
    "registered_sites", "run_fault_matrix", "run_interpreter",
    "run_interpreter_traced", "run_machine",
]
