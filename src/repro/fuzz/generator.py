"""Seeded generation of well-typed, well-defined LC programs.

The generator is the front half of ``lc-fuzz``: given a seed it emits a
deterministic, self-contained LC source whose behaviour is fully
defined under the reference semantics, so that *any* behavioural
difference between two compilation/execution paths is a compiler bug
and never "the program's fault".

Defined-by-construction rules (the generator's contract with the
differential harness):

* every local is initialized at its declaration; every global has a
  constant initializer;
* array indices are masked with ``& (N - 1)`` against power-of-two
  array sizes, so no access is out of bounds;
* integer division/remainder denominators are ``(expr | 1)`` — never
  zero (a trap would be legal but optimizers may legally delete dead
  traps, which would look like a divergence);
* loops have literal trip counts; recursion has a literal depth bound;
* no exceptions, no varargs calls, no address printing, no ``clock()``
  — constructs whose observable behaviour legitimately differs across
  engines (step counts, allocation addresses) or that the backends do
  not model (unwinding);
* ``float`` is avoided (``double`` only), keeping re-rounding out of
  the picture.

Output is observed through ``print_int``/``print_long``/``print_char``
/``puts`` plus the process exit code, giving the harness a rich
behavioural fingerprint per program.
"""

from __future__ import annotations

import random

_PRELUDE = """\
extern int print_int(int x);
extern int print_long(long x);
extern int print_char(int c);
extern int puts(char *s);
"""

#: Scalar types the generator works in, with (suffix for literals,
#: bits, signedness).  float is deliberately absent; double is handled
#: separately.
_INT_TYPES = {
    "char": (8, True), "short": (16, True), "int": (32, True),
    "long": (64, True),
    "uchar": (8, False), "ushort": (16, False), "uint": (32, False),
    "ulong": (64, False),
}

_ARITH = ["+", "-", "*", "&", "|", "^"]
_CMP = ["<", ">", "<=", ">=", "==", "!="]


class _Scope:
    """Variables visible at a generation site, grouped by type."""

    def __init__(self):
        self.scalars: dict[str, list[str]] = {}
        self.arrays: list[tuple[str, str, int]] = []  # (name, elem ty, size)

    def add(self, name: str, ty: str) -> None:
        self.scalars.setdefault(ty, []).append(name)

    def pick(self, rng: random.Random, ty: str):
        names = self.scalars.get(ty)
        return rng.choice(names) if names else None

    def pick_any(self, rng: random.Random):
        pool = [(name, ty) for ty, names in self.scalars.items()
                for name in names]
        return rng.choice(pool) if pool else None


class ProgramGenerator:
    """One seeded program. ``generate()`` returns the LC source text."""

    def __init__(self, seed: int, size: int = 3):
        self.rng = random.Random(seed)
        self.seed = seed
        #: Rough size knob: number of helper functions.
        self.size = max(1, size)
        self.functions: list[tuple[str, str, list[tuple[str, str]]]] = []
        self._counter = 0

    # -- naming ----------------------------------------------------------

    def _name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    @staticmethod
    def _child_scope(scope: _Scope) -> _Scope:
        child = _Scope()
        child.scalars = {ty: list(names)
                         for ty, names in scope.scalars.items()}
        child.arrays = list(scope.arrays)
        return child

    # -- literals and leaves ---------------------------------------------

    def _literal(self, ty: str) -> str:
        rng = self.rng
        if ty == "double":
            return f"{rng.randint(-50, 50)}.{rng.randint(0, 99):02d}"
        bits, signed = _INT_TYPES[ty]
        if rng.random() < 0.15:
            # Boundary-ish values, clamped into the *literal* grammar;
            # the cast below makes the type exact.
            value = rng.choice([0, 1, 127, 128, 255, 32767, 65535,
                                2147483647, 4294967295])
        else:
            value = rng.randint(0, min(2 ** bits - 1, 10 ** 6))
        if signed:
            value = min(value, 2 ** (bits - 1) - 1)
            if rng.random() < 0.4:
                value = -value
        suffix = ""
        if ty in ("ulong", "uint"):
            suffix = "u" if ty == "uint" else "ul"
        elif ty == "long":
            suffix = "l"
        if ty in ("char", "uchar", "short", "ushort"):
            return f"(({ty}){value})"
        return f"{value}{suffix}"

    def _leaf(self, ty: str, scope: _Scope) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.45:
            name = scope.pick(rng, ty)
            if name is not None:
                return name
        if roll < 0.7:
            picked = scope.pick_any(rng)
            if picked is not None:
                name, _ = picked
                return f"(({ty}){name})"
        return self._literal(ty)

    # -- expressions ------------------------------------------------------

    def _expr(self, ty: str, scope: _Scope, depth: int) -> str:
        rng = self.rng
        if depth <= 0:
            return self._leaf(ty, scope)
        if ty == "double":
            return self._double_expr(scope, depth)
        choice = rng.random()
        if choice < 0.30:
            op = rng.choice(_ARITH)
            return (f"({self._expr(ty, scope, depth - 1)} {op} "
                    f"{self._expr(ty, scope, depth - 1)})")
        if choice < 0.40:
            op = rng.choice(["/", "%"])
            return (f"({self._expr(ty, scope, depth - 1)} {op} "
                    f"({self._expr(ty, scope, depth - 1)} | ({ty})1))")
        if choice < 0.50:
            op = rng.choice(["<<", ">>"])
            bits, _ = _INT_TYPES[ty]
            # Occasionally over-wide: saturating shifts are defined
            # behaviour here and a classic backend divergence source.
            amount = rng.randint(0, bits + 3 if rng.random() < 0.2
                                 else bits - 1)
            return f"({self._expr(ty, scope, depth - 1)} {op} {amount})"
        if choice < 0.62:
            # Comparisons produce bool; cast back into the int domain.
            cmp_ty = rng.choice(list(_INT_TYPES) + ["double"])
            op = rng.choice(_CMP)
            return (f"(({ty})({self._expr(cmp_ty, scope, depth - 1)} {op} "
                    f"{self._expr(cmp_ty, scope, depth - 1)}))")
        if choice < 0.74:
            # Cast chains: the instcombine double-cast territory.
            mid = rng.choice(list(_INT_TYPES))
            return f"(({ty}){self._expr(mid, scope, depth - 1)})"
        if choice < 0.80:
            # The space avoids "--literal" lexing as a decrement.
            return f"(- {self._expr(ty, scope, depth - 1)})"
        if choice < 0.86:
            return f"(~{self._expr(ty, scope, depth - 1)})"
        if choice < 0.93 and scope.arrays:
            name, elem_ty, sz = rng.choice(scope.arrays)
            index = self._expr("int", scope, depth - 1)
            return f"(({ty}){name}[({index}) & {sz - 1}])"
        if self.functions and rng.random() < 0.8:
            fname, ret_ty, params = rng.choice(self.functions)
            actuals = ", ".join(
                f"({pty})({self._expr(pty, scope, max(0, depth - 2))})"
                for _, pty in params
            )
            return f"(({ty}){fname}({actuals}))"
        return self._leaf(ty, scope)

    def _double_expr(self, scope: _Scope, depth: int) -> str:
        rng = self.rng
        choice = rng.random()
        if choice < 0.45:
            op = rng.choice(["+", "-", "*"])
            return (f"({self._double_expr(scope, depth - 1)} {op} "
                    f"{self._double_expr(scope, depth - 1)})")
        if choice < 0.65:
            src = rng.choice(list(_INT_TYPES))
            return f"((double){self._expr(src, scope, depth - 1)})"
        return self._leaf("double", scope)

    # -- statements -------------------------------------------------------

    def _statements(self, scope: _Scope, budget: int,
                    indent: str = "  ") -> list[str]:
        rng = self.rng
        lines: list[str] = []
        while budget > 0:
            budget -= 1
            roll = rng.random()
            if roll < 0.30:
                ty = rng.choice(list(_INT_TYPES) + ["double"])
                name = self._name("v")
                lines.append(f"{indent}{ty} {name} = "
                             f"{self._expr(ty, scope, 2)};")
                scope.add(name, ty)
            elif roll < 0.55:
                picked = scope.pick_any(rng)
                if picked is None:
                    continue
                name, ty = picked
                lines.append(f"{indent}{name} = {self._expr(ty, scope, 2)};")
            elif roll < 0.68:
                cond_ty = rng.choice(list(_INT_TYPES))
                cond = (f"{self._expr(cond_ty, scope, 1)} "
                        f"{rng.choice(_CMP)} {self._expr(cond_ty, scope, 1)}")
                # Branch bodies get a scope *copy*: their declarations
                # are block-scoped and must not leak to later code.
                then = self._statements(self._child_scope(scope), 1,
                                        indent + "  ")
                lines.append(f"{indent}if ({cond}) {{")
                lines.extend(then)
                if rng.random() < 0.5:
                    lines.append(f"{indent}}} else {{")
                    lines.extend(self._statements(self._child_scope(scope),
                                                  1, indent + "  "))
                lines.append(f"{indent}}}")
            elif roll < 0.82:
                # Bounded counting loop mutating an accumulator.
                ivar = self._name("i")
                trips = rng.randint(1, 12)
                acc = scope.pick(rng, "long") or scope.pick(rng, "int")
                lines.append(f"{indent}int {ivar} = 0;")
                lines.append(f"{indent}for ({ivar} = 0; {ivar} < {trips}; "
                             f"{ivar} = {ivar} + 1) {{")
                inner = self._child_scope(scope)
                inner.add(ivar, "int")
                lines.extend(self._statements(inner, 1, indent + "  "))
                if acc is not None:
                    lines.append(f"{indent}  {acc} = {acc} + ({ivar});")
                lines.append(f"{indent}}}")
                scope.add(ivar, "int")
            elif roll < 0.92 and scope.arrays:
                name, elem_ty, sz = rng.choice(scope.arrays)
                index = self._expr("int", scope, 1)
                lines.append(f"{indent}{name}[({index}) & {sz - 1}] = "
                             f"{self._expr(elem_ty, scope, 2)};")
            else:
                call = None
                if self.functions:
                    fname, ret_ty, params = rng.choice(self.functions)
                    actuals = ", ".join(
                        f"({pty})({self._expr(pty, scope, 1)})"
                        for _, pty in params
                    )
                    call = f"{fname}({actuals})"
                if call is not None:
                    target_ty = "long"
                    acc = scope.pick(rng, target_ty)
                    if acc is not None:
                        lines.append(f"{indent}{acc} = {acc} ^ "
                                     f"(long)({call});")
                    else:
                        lines.append(f"{indent}print_long((long)({call}));")
        return lines

    # -- functions --------------------------------------------------------

    def _helper(self) -> str:
        rng = self.rng
        ret_ty = rng.choice(list(_INT_TYPES))
        fname = self._name("f")
        nparams = rng.randint(1, 3)
        params = [(self._name("p"), rng.choice(list(_INT_TYPES)))
                  for _ in range(nparams)]
        scope = _Scope()
        for pname, pty in params:
            scope.add(pname, pty)
        lines = [f"{ret_ty} {fname}("
                 + ", ".join(f"{pty} {pname}" for pname, pty in params)
                 + ") {"]
        recursive = rng.random() < 0.35 and params[0][1] in (
            "int", "long", "short", "char")
        if recursive:
            pname, pty = params[0]
            rest = ", ".join(
                self._expr(q, scope, 1) for _, q in params[1:])
            rest = (", " + rest) if rest else ""
            lines.append(f"  if ({pname} > ({pty})1) {{")
            lines.append(f"    return ({ret_ty})({fname}"
                         f"(({pty})({pname} - ({pty})2){rest}) "
                         f"+ ({ret_ty}){pname});")
            lines.append("  }")
        lines.extend(self._statements(scope, rng.randint(1, 3)))
        lines.append(f"  return {self._expr(ret_ty, scope, 3)};")
        lines.append("}")
        self.functions.append((fname, ret_ty, params))
        return "\n".join(lines)

    def _globals(self) -> tuple[str, _Scope]:
        rng = self.rng
        scope = _Scope()
        lines = []
        for _ in range(rng.randint(0, 2)):
            # Plain-literal types only: the front-end wants the global
            # initializer's constant type to match the slot exactly.
            ty = rng.choice(["int", "uint", "long", "ulong"])
            name = self._name("g")
            lines.append(f"{ty} {name} = {self._literal(ty)};")
            scope.add(name, ty)
        return "\n".join(lines), scope

    def _main(self, global_scope: _Scope) -> str:
        rng = self.rng
        scope = _Scope()
        scope.scalars = {t: list(ns)
                         for t, ns in global_scope.scalars.items()}
        lines = ["int main() {"]
        # A couple of arrays (power-of-two sizes for maskable indexing).
        for _ in range(rng.randint(1, 2)):
            elem_ty = rng.choice(["int", "long", "uint", "ulong"])
            size = rng.choice([4, 8, 16])
            name = self._name("a")
            lines.append(f"  {elem_ty} {name}[{size}];")
            ivar = self._name("i")
            lines.append(f"  int {ivar} = 0;")
            lines.append(f"  for ({ivar} = 0; {ivar} < {size}; "
                         f"{ivar} = {ivar} + 1) {{")
            lines.append(f"    {name}[{ivar}] = ({elem_ty})"
                         f"({ivar} * {rng.randint(1, 9)} "
                         f"- {rng.randint(0, 20)});")
            lines.append("  }")
            scope.arrays.append((name, elem_ty, size))
            scope.add(ivar, "int")
        lines.append("  long checksum = 0;")
        scope.add("checksum", "long")
        lines.extend(self._statements(scope, rng.randint(4, 8)))
        # Fold everything observable into the checksum and print it.
        for ty, names in sorted(scope.scalars.items()):
            if ty == "double":
                continue
            for name in names:
                lines.append(f"  checksum = checksum * 31 + (long){name};")
        for name, elem_ty, size in scope.arrays:
            ivar = self._name("i")
            lines.append(f"  int {ivar} = 0;")
            lines.append(f"  for ({ivar} = 0; {ivar} < {size}; "
                         f"{ivar} = {ivar} + 1) {{")
            lines.append(f"    checksum = checksum * 31 + "
                         f"(long){name}[{ivar}];")
            lines.append("  }")
        doubles = scope.scalars.get("double", [])
        for name in doubles:
            # Doubles join the fingerprint through a bounded comparison
            # (printing raw doubles would test formatting, not codegen).
            lines.append(f"  if ({name} < 0.0) {{ checksum = checksum + 7; }}")
            lines.append(f"  if ({name} > 1000000.0) "
                         "{ checksum = checksum - 3; }")
        lines.append("  print_long(checksum);")
        lines.append("  print_int((int)(checksum % 1000));")
        lines.append("  print_char((int)((checksum & 25) + 97));")
        lines.append('  puts("done");')
        lines.append("  return (int)(((ulong)checksum) % 251ul);")
        lines.append("}")
        return "\n".join(lines)

    def generate(self) -> str:
        globals_text, global_scope = self._globals()
        helpers = [self._helper() for _ in range(self.size)]
        parts = [_PRELUDE]
        if globals_text:
            parts.append(globals_text)
        parts.extend(helpers)
        parts.append(self._main(global_scope))
        return "\n\n".join(parts) + "\n"


def generate_program(seed: int, size: int = 3) -> str:
    """The module-level entry point: seed -> LC source text."""
    return ProgramGenerator(seed, size).generate()
