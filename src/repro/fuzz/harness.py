"""The differential harness: one program, many oracles, zero excuses.

Each generated (or hand-written) LC program is pushed through every
pair of paths that the system claims are semantically equivalent:

* **optimizer oracle** — the interpreter at ``-O0`` (the reference)
  versus the interpreter on the ``-O1``/``-O2`` pipelines;
* **representation oracles** — textual print -> parse and bytecode
  write -> read must reproduce the module *exactly* (modulo the
  printer's own canonical form, which is compared by printing both);
* **backend oracle** — the machine simulators for the x86-like and
  sparc-like targets, at ``-O0`` and ``-O2``, versus the reference;
* **translation-validation oracle** (opt-in,
  ``translation_validate=True``) — each optimized compile additionally
  runs under the per-pass refinement validator
  (:mod:`repro.tvalid`); a validation failure is its own finding
  (``tvalid-O<level>``) with the guilty pass and the concrete
  counterexample.  The two oracles cross-check each other: an
  end-to-end divergence with no validation finding is reported as
  ``tvalid-miss-O<level>`` — either validator incompleteness (a
  skipped function hides the bug) or a bug in a pass the validator
  exempts (module-level passes).

Behaviour is summarised as an :class:`Outcome` (exit code or trap
class, plus everything printed).  Any mismatch is a
:class:`Divergence`; ``lc-bugpoint`` consumes these to bisect and
reduce.  Step-limit exhaustion is *not* comparable across engines
(machine code executes more, and differently many, instructions than
IR) and is reported as a skip rather than a divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..backend.simulator import MachineSimulator
from ..backend.targets import SPARC, X86, Target
from ..bitcode import read_bytecode, write_bytecode
from ..core import parse_module, print_module, verify_module
from ..core.constfold import ArithmeticFault
from ..core.module import Module
from ..driver.pipelines import optimize_module
from ..execution.interpreter import (
    ExecutionError, Interpreter, StepLimitExceeded,
)
from ..execution.memory import MemoryFault
from ..frontend import compile_source

DEFAULT_STEP_LIMIT = 5_000_000
#: Machine code retires more instructions than the IR for the same
#: program (spills, copies, address arithmetic), so its budget is wider.
MACHINE_STEP_FACTOR = 8


@dataclass(frozen=True)
class Outcome:
    """The observable behaviour of one execution."""

    kind: str                 # "exit" | "trap" | "timeout"
    code: Optional[int] = None
    trap: Optional[str] = None
    output: str = ""

    def describe(self) -> str:
        if self.kind == "exit":
            head = f"exit({self.code})"
        elif self.kind == "trap":
            head = f"trap({self.trap})"
        else:
            head = "timeout"
        body = self.output if len(self.output) <= 200 else (
            self.output[:200] + "...")
        return f"{head} output={body!r}"


@dataclass
class Divergence:
    """One oracle pair that disagreed on one program."""

    oracle: str
    expected: str
    actual: str
    source: str = ""

    def describe(self) -> str:
        return (f"[{self.oracle}] expected {self.expected}; "
                f"got {self.actual}")


def run_interpreter(module: Module,
                    step_limit: int = DEFAULT_STEP_LIMIT) -> Outcome:
    """Reference execution: the IR interpreter."""
    interp = Interpreter(module, step_limit=step_limit)
    try:
        code = interp.run("main")
    except StepLimitExceeded:
        return Outcome("timeout", output="".join(interp.output))
    except (ArithmeticFault, MemoryFault, ExecutionError) as fault:
        return Outcome("trap", trap=type(fault).__name__,
                       output="".join(interp.output))
    return Outcome("exit", code=int(code or 0),
                   output="".join(interp.output))


def run_interpreter_traced(module: Module,
                           step_limit: int = DEFAULT_STEP_LIMIT,
                           hot_threshold: int = 8) -> Outcome:
    """The trace-JIT tier: interpreter plus compiled hot-path traces.

    A deliberately low hot threshold so even small generated loops
    promote to recording, compile, and run through the guard/side-exit
    machinery this oracle exists to exercise.
    """
    from ..execution.tracejit import TraceManager

    interp = Interpreter(module, step_limit=step_limit)
    TraceManager(hot_threshold=hot_threshold).attach(interp)
    try:
        code = interp.run("main")
    except StepLimitExceeded:
        return Outcome("timeout", output="".join(interp.output))
    except (ArithmeticFault, MemoryFault, ExecutionError) as fault:
        return Outcome("trap", trap=type(fault).__name__,
                       output="".join(interp.output))
    return Outcome("exit", code=int(code or 0),
                   output="".join(interp.output))


def run_machine(module: Module, target: Target,
                step_limit: int = DEFAULT_STEP_LIMIT
                * MACHINE_STEP_FACTOR) -> Outcome:
    """Backend execution: post-regalloc machine code simulation."""
    simulator = MachineSimulator(module, target, step_limit=step_limit)
    try:
        code = simulator.run("main")
    except StepLimitExceeded:
        return Outcome("timeout", output="".join(simulator.output))
    except (ArithmeticFault, MemoryFault, ExecutionError) as fault:
        return Outcome("trap", trap=type(fault).__name__,
                       output="".join(simulator.output))
    return Outcome("exit", code=int(code or 0),
                   output="".join(simulator.output))


def _outcomes_differ(reference: Outcome, candidate: Outcome) -> bool:
    if "timeout" in (reference.kind, candidate.kind):
        return False  # incomparable budgets; skip, never flag
    return reference != candidate


@dataclass
class HarnessConfig:
    levels: Sequence[int] = (1, 2)
    targets: Sequence[Target] = (X86, SPARC)
    machine_levels: Sequence[int] = (0, 2)
    step_limit: int = DEFAULT_STEP_LIMIT
    check_roundtrips: bool = True
    translation_validate: bool = False
    jit_traces: bool = False
    jit_trace_threshold: int = 8


@dataclass
class ProgramResult:
    """Everything the harness learned about one program."""

    reference: Optional[Outcome] = None
    divergences: list[Divergence] = field(default_factory=list)
    skipped: bool = False          # reference timed out / failed upstream
    error: Optional[str] = None    # compile/verify crash (also a finding)


def _compile(source: str, name: str, level: int, policy=None) -> Module:
    module = compile_source(source, name)
    if level > 0:
        optimize_module(module, level=level, policy=policy)
    verify_module(module)
    return module


def _validation_policy():
    """A FaultPolicy armed for per-pass refinement checking.  Testcase
    reduction stays off: the fuzz loop wants throughput, and the
    counterexample in the report already replays the bug."""
    from ..driver import FaultPolicy

    return FaultPolicy(translation_validate=True, reduce_testcases=False)


def check_program(source: str,
                  config: Optional[HarnessConfig] = None) -> ProgramResult:
    """Run one LC source through the full oracle matrix."""
    config = config or HarnessConfig()
    result = ProgramResult()
    try:
        module_o0 = _compile(source, "fuzz", 0)
    except Exception as error:  # compile crash: a real finding
        result.error = f"compile -O0 failed: {type(error).__name__}: {error}"
        return result
    reference = run_interpreter(module_o0, config.step_limit)
    result.reference = reference
    if reference.kind == "timeout":
        result.skipped = True
        return result

    def record(oracle: str, candidate: Outcome) -> None:
        if _outcomes_differ(reference, candidate):
            result.divergences.append(Divergence(
                oracle, reference.describe(), candidate.describe(), source))

    # Optimizer oracle: interpreter at each -O level.  With
    # translation validation on, the same compile also runs the
    # per-pass refinement validator as a third oracle column.
    for level in config.levels:
        policy = (_validation_policy()
                  if config.translation_validate and level > 0 else None)
        try:
            module = _compile(source, f"fuzz_o{level}", level, policy)
        except Exception as error:
            result.divergences.append(Divergence(
                f"interp-O{level}", reference.describe(),
                f"compile failed: {type(error).__name__}: {error}", source))
            continue
        validation_findings = 0
        if policy is not None:
            for crash in policy.crash_reports:
                if crash.error_type != "TranslationValidationError":
                    continue
                validation_findings += 1
                result.divergences.append(Divergence(
                    f"tvalid-O{level}",
                    "every changed function refines its input",
                    f"{crash.pass_name}: {crash.error_message}", source))
        before = len(result.divergences)
        record(f"interp-O{level}", run_interpreter(module,
                                                   config.step_limit))
        if (policy is not None and len(result.divergences) > before
                and validation_findings == 0):
            # The oracles disagree: end-to-end behaviour changed, yet
            # every per-pass validation passed.  Distinct finding —
            # validator incompleteness or an exempted (module) pass.
            result.divergences.append(Divergence(
                f"tvalid-miss-O{level}",
                "a validation finding for the divergent compile",
                "optimizer output diverges but per-pass validation "
                "reported nothing", source))

    # Trace-JIT oracle: the same -O0 module with the trace tier armed
    # (low threshold, so generated loops actually promote) must match
    # the plain interpreter exactly — same exit/trap, same output.
    if config.jit_traces:
        try:
            record("jit-traces", run_interpreter_traced(
                module_o0, config.step_limit,
                config.jit_trace_threshold))
        except Exception as error:  # trace-compiler crash: a finding
            result.divergences.append(Divergence(
                "jit-traces", reference.describe(),
                f"trace tier crashed: {type(error).__name__}: {error}",
                source))

    # Representation oracles: print->parse and write->read identity.
    if config.check_roundtrips:
        canonical = print_module(module_o0)
        try:
            reparsed = print_module(parse_module(canonical))
            if reparsed != canonical:
                result.divergences.append(Divergence(
                    "text-roundtrip", "identical module text",
                    "re-printed module differs after parse", source))
        except Exception as error:
            result.divergences.append(Divergence(
                "text-roundtrip", "parseable printed module",
                f"parse failed: {type(error).__name__}: {error}", source))
        try:
            reread = print_module(read_bytecode(
                write_bytecode(module_o0, strip_names=False)))
            if reread != canonical:
                result.divergences.append(Divergence(
                    "bytecode-roundtrip", "identical module text",
                    "module differs after bytecode write/read", source))
        except Exception as error:
            result.divergences.append(Divergence(
                "bytecode-roundtrip", "readable written bytecode",
                f"read failed: {type(error).__name__}: {error}", source))

    # Backend oracle: both simulated targets, unoptimized and optimized.
    machine_limit = config.step_limit * MACHINE_STEP_FACTOR
    for level in config.machine_levels:
        try:
            module = (module_o0 if level == 0
                      else _compile(source, f"fuzz_m{level}", level))
        except Exception:
            continue  # already reported by the optimizer oracle
        for target in config.targets:
            oracle = f"sim-{target.name}-O{level}"
            try:
                candidate = run_machine(module, target, machine_limit)
            except Exception as error:  # codegen crash: a real finding
                result.divergences.append(Divergence(
                    oracle, reference.describe(),
                    f"codegen failed: {type(error).__name__}: {error}",
                    source))
                continue
            record(oracle, candidate)
    return result


@dataclass
class FuzzReport:
    checked: int = 0
    skipped: int = 0
    divergent: list[tuple[int, ProgramResult]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.divergent


def fuzz(seed: int, count: int, size: int = 3,
         config: Optional[HarnessConfig] = None,
         on_program: Optional[Callable[[int, ProgramResult], None]] = None,
         ) -> FuzzReport:
    """Generate+check ``count`` programs from one master seed.

    Program ``i`` uses seed ``seed + i`` so a finding is reproducible
    in isolation (``lc-fuzz --seed <seed+i> --count 1``).
    """
    from .generator import generate_program

    config = config or HarnessConfig()
    report = FuzzReport()
    for index in range(count):
        program_seed = seed + index
        source = generate_program(program_seed, size)
        result = check_program(source, config)
        report.checked += 1
        if result.skipped:
            report.skipped += 1
        if result.divergences or result.error:
            report.divergent.append((program_seed, result))
        if on_program is not None:
            on_program(program_seed, result)
    return report
