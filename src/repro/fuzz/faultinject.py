"""Deterministic seeded fault injection, and the single-fault matrix.

The robustness claim of the fault-tolerant driver (docs/ROBUSTNESS.md)
is only credible if it is *tested* against the failures it promises to
contain.  This module provides the failures: a registry of named
injection sites wired into the production code paths, a single-shot
armed plan (one site, one seed, fires once), and a harness that runs
the whole single-fault matrix — for every registered site, compile a
fixed-seed fuzz program with that fault armed and assert the pipeline
still completes and produces the interpreter-checked ``-O0`` behaviour.

Sites fall into two families:

* **check sites** — ``faultinject.check("site")`` raises
  :class:`InjectedFault` at the marked point: inside a chosen transform
  pass (``pass:<name>``, hooked in the transactional pass manager) or
  in the linker (``linker.symbol-clash``).
* **mangle sites** — ``faultinject.mangle(...)`` corrupts data flowing
  past the marked point: flip one byte (``cache.read``) or several
  (``bytecode.corrupt``) of a stored cache entry before its integrity
  frame is checked — modelling disk corruption, caught by the digest —
  truncate decoded bytecode before the reader runs
  (``bytecode.truncate``, caught by the decoder's structured errors),
  or make a summary sidecar unparseable (``sidecar.corrupt``).

A plan is *single-shot*: it fires at the first matching site and then
disarms itself, modelling one transient fault.  Everything is seeded —
the same ``SITE:SEED`` pair corrupts the same byte every run.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence


class InjectedFault(Exception):
    """The exception raised by an armed check site."""

    def __init__(self, site: str, message: Optional[str] = None):
        super().__init__(message or f"injected fault at {site}")
        self.site = site


#: Sites that exist independent of the pass pipeline.
STATIC_SITES: dict[str, str] = {
    "cache.read": "flip one byte of a stored cache entry (digest catches)",
    "bytecode.truncate": "truncate cached bytecode before decoding",
    "bytecode.corrupt": "flip four bits of a stored cache entry",
    "sidecar.corrupt": "make an analysis-summary sidecar unparseable",
    "linker.symbol-clash": "raise a duplicate-symbol error while linking",
    "cache.evict-race": "delete an LRU eviction victim out from under "
                        "the evictor (concurrent-daemon race)",
    "server.worker-crash": "kill the lc-serverd worker process "
                           "mid-request (supervisor restarts it)",
    "server.queue-overflow": "treat the admission queue as full for one "
                             "request (structured BUSY shed)",
    "server.request-timeout": "stall one request past its deadline "
                              "(dispatch watchdog kills the worker)",
}

#: Sites exercised through a live lc-serverd daemon rather than a
#: plain batch compile; the matrix runs them in a dedicated cell.
SERVER_SITES = ("server.worker-crash", "server.queue-overflow",
                "server.request-timeout")


class FaultPlan:
    """One armed fault: a site name, a seed, and a fired flag."""

    def __init__(self, site: str, seed: int = 0):
        self.site = site
        self.seed = seed
        self.fired = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "fired" if self.fired else "armed"
        return f"<FaultPlan {self.site}:{self.seed} {state}>"


_lock = threading.Lock()
_plan: Optional[FaultPlan] = None


def registered_sites(level: int = 3) -> dict[str, str]:
    """Every known injection site -> description.

    Pass sites are derived from the standard ``-O<level>`` pipeline and
    the link-time pipeline, so the catalogue tracks the real pipelines
    instead of a hand-maintained list.
    """
    from ..driver.pipelines import lto_pipeline, standard_pipeline

    sites = dict(STATIC_SITES)
    for manager in (standard_pipeline(level), lto_pipeline()):
        for pass_obj in manager.passes:
            name = getattr(pass_obj, "name", type(pass_obj).__name__)
            sites.setdefault(f"pass:{name}",
                             f"raise inside the {name} pass")
    return sites


def arm(site: str, seed: int = 0, strict: bool = True) -> FaultPlan:
    """Arm one single-shot fault; returns the plan (watch ``.fired``)."""
    global _plan
    if strict and site not in registered_sites():
        known = ", ".join(sorted(registered_sites()))
        raise ValueError(f"unknown fault site {site!r} (known: {known})")
    plan = FaultPlan(site, seed)
    with _lock:
        _plan = plan
    return plan


def disarm() -> Optional[FaultPlan]:
    """Remove the armed plan (fired or not); returns it for inspection."""
    global _plan
    with _lock:
        plan, _plan = _plan, None
    return plan


@contextmanager
def injected(site: str, seed: int = 0) -> Iterator[FaultPlan]:
    """``with injected("pass:gvn", 7) as plan: ...`` — always disarms."""
    plan = arm(site, seed)
    try:
        yield plan
    finally:
        disarm()


def _claim(site: str) -> Optional[FaultPlan]:
    """Atomically consume the armed plan if it targets ``site``."""
    with _lock:
        plan = _plan
        if plan is not None and plan.site == site and not plan.fired:
            plan.fired = True
            return plan
    return None


def claim(site: str) -> Optional[FaultPlan]:
    """Atomically consume the armed plan if it targets ``site``.

    The public face of :func:`_claim`, for components that *carry* a
    fault to where it happens rather than raising on the spot — the
    lc-serverd supervisor claims ``server.*`` plans at dispatch time
    and ships the injection to the worker process in the job itself
    (the armed plan lives in supervisor memory; the worker is a
    different process).
    """
    return _claim(site)


def check(site: str) -> None:
    """Check site: raise :class:`InjectedFault` if armed for ``site``."""
    plan = _claim(site)
    if plan is not None:
        if site == "linker.symbol-clash":
            raise InjectedFault(site, "injected fault: symbol 'main' "
                                      "defined twice at link time")
        raise InjectedFault(site)


def mangle(site: str, data: bytes) -> bytes:
    """Mangle site for binary artifacts: corrupt ``data`` if armed."""
    plan = _claim(site)
    if plan is None or not data:
        return data
    rng = random.Random(plan.seed)
    if site == "bytecode.truncate":
        return data[:rng.randrange(0, len(data))]
    flips = 4 if site == "bytecode.corrupt" else 1
    buffer = bytearray(data)
    for _ in range(flips):
        buffer[rng.randrange(len(buffer))] ^= 1 << rng.randrange(8)
    return bytes(buffer)


def race_delete(site: str, path: str) -> None:
    """Race site for file deletes: if armed, delete ``path`` first —
    modelling a concurrent process winning the eviction race, so the
    caller's own ``unlink`` finds the file already gone."""
    plan = _claim(site)
    if plan is None:
        return
    import os

    try:
        os.unlink(path)
    except OSError:
        pass


def mangle_text(site: str, text: str) -> str:
    """Mangle site for text sidecars: garble ``text`` if armed."""
    plan = _claim(site)
    if plan is None:
        return text
    # Keep it textual but unparseable regardless of the format inside.
    return "\x00corrupt{" + text[:len(text) // 2]


# ----------------------------------------------------------------------
# The single-fault matrix
# ----------------------------------------------------------------------

@dataclass
class FaultOutcome:
    """One (site, program) cell of the matrix."""

    site: str
    program_seed: int
    ok: bool
    fired: bool
    detail: str = ""

    def describe(self) -> str:
        status = "ok" if self.ok else "FAIL"
        fired = "" if self.fired else " [fault never fired]"
        tail = f" — {self.detail}" if self.detail else ""
        return f"{status:4s} {self.site:24s} seed {self.program_seed}{fired}{tail}"


@dataclass
class FaultMatrixReport:
    outcomes: list[FaultOutcome] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(o.ok and o.fired for o in self.outcomes)

    @property
    def failures(self) -> list[FaultOutcome]:
        return [o for o in self.outcomes if not (o.ok and o.fired)]


def run_fault_matrix(program_seeds: Sequence[int] = (401, 402, 403),
                     size: int = 2,
                     sites: Optional[Sequence[str]] = None,
                     fault_seed: int = 12345,
                     level: int = 2,
                     step_limit: int = 500_000,
                     crash_dir: Optional[str] = None) -> FaultMatrixReport:
    """Run every single-fault scenario over fixed-seed fuzz programs.

    For each (site, program) pair the pipeline runs with exactly that
    one fault armed, under the fault-tolerant driver policy, and the
    cell passes iff (a) no unhandled exception escapes, (b) the fault
    actually fired, and (c) the result still matches the clean ``-O0``
    reference — the interpreter-checked checksum for compile sites, the
    clean diagnostics for the lint sidecar site.
    """
    import tempfile

    from ..driver.cache import BytecodeCache
    from ..driver.passmanager import FaultPolicy
    from ..driver.pipelines import compile_and_link, lint_whole_program
    from .generator import generate_program
    from .harness import run_interpreter

    if sites is None:
        sites = sorted(registered_sites(level))
    report = FaultMatrixReport()
    for program_seed in program_seeds:
        source = generate_program(program_seed, size)
        reference = run_interpreter(
            compile_and_link([source], "ref", level=0, lto=False),
            step_limit)
        clean_lint = lint_whole_program([source], level=level)
        clean_diags = [d.render() for d in clean_lint.diagnostics]
        for site in sites:
            report.outcomes.append(_run_cell(
                site, program_seed, source, reference, clean_diags,
                fault_seed, level, step_limit, crash_dir,
                BytecodeCache, FaultPolicy, compile_and_link,
                lint_whole_program, run_interpreter, tempfile))
    return report


def _run_cell(site, program_seed, source, reference, clean_diags,
              fault_seed, level, step_limit, crash_dir,
              BytecodeCache, FaultPolicy, compile_and_link,
              lint_whole_program, run_interpreter, tempfile) -> FaultOutcome:
    if site in SERVER_SITES:
        return _run_server_cell(site, program_seed, source, reference,
                                fault_seed, level, step_limit, tempfile)
    if site == "cache.evict-race":
        return _run_evict_race_cell(site, program_seed, source, reference,
                                    fault_seed, level, step_limit,
                                    BytecodeCache, FaultPolicy,
                                    compile_and_link, run_interpreter,
                                    tempfile)
    with tempfile.TemporaryDirectory(prefix="lc-faultmatrix-") as tmp:
        policy = FaultPolicy(crash_dir=crash_dir or f"{tmp}/crashes",
                             reduce_testcases=False)
        cache = BytecodeCache(f"{tmp}/cache")
        needs_warm_cache = site in ("cache.read", "bytecode.truncate",
                                    "bytecode.corrupt")
        try:
            if site == "sidecar.corrupt":
                # Warm the summary sidecars, then lint with the armed
                # fault: the unparseable sidecar must be recomputed.
                lint_whole_program([source], level=level, cache=cache)
                with injected(site, fault_seed) as plan:
                    result = lint_whole_program([source], level=level,
                                                cache=cache)
                diags = [d.render() for d in result.diagnostics]
                ok = diags == clean_diags
                detail = "" if ok else "diagnostics changed"
            else:
                if needs_warm_cache:
                    compile_and_link([source], "fault", level=level,
                                     cache=cache, policy=policy)
                with injected(site, fault_seed) as plan:
                    module = compile_and_link(
                        [source], "fault", level=level,
                        cache=cache if needs_warm_cache else None,
                        policy=policy)
                    outcome = run_interpreter(module, step_limit)
                ok = outcome == reference
                detail = "" if ok else (f"expected {reference.describe()}, "
                                        f"got {outcome.describe()}")
        except Exception as error:  # the exact thing containment forbids
            disarm()
            return FaultOutcome(site, program_seed, False, True,
                                f"unhandled {type(error).__name__}: {error}")
        return FaultOutcome(site, program_seed, ok, plan.fired, detail)


def _run_evict_race_cell(site, program_seed, source, reference, fault_seed,
                         level, step_limit, BytecodeCache, FaultPolicy,
                         compile_and_link, run_interpreter,
                         tempfile) -> FaultOutcome:
    """cache.evict-race: a bounded cache evicting under a concurrent
    delete must lose only time, never correctness."""
    # A second, distinct TU whose cached entry becomes the LRU victim.
    victim_source = source + "\nint faultpad(int x) { return x + 1; }\n"
    with tempfile.TemporaryDirectory(prefix="lc-faultmatrix-") as tmp:
        policy = FaultPolicy(crash_dir=f"{tmp}/crashes",
                             reduce_testcases=False)
        # max_bytes=1: any second entry forces an eviction of the first.
        cache = BytecodeCache(f"{tmp}/cache", max_bytes=1)
        try:
            compile_and_link([victim_source], "warm", level=level,
                             cache=cache, policy=policy)
            with injected(site, fault_seed) as plan:
                module = compile_and_link([source], "fault", level=level,
                                          cache=cache, policy=policy)
                outcome = run_interpreter(module, step_limit)
            ok = outcome == reference and cache.lru_evictions >= 1
            detail = "" if ok else (f"expected {reference.describe()}, got "
                                    f"{outcome.describe()} "
                                    f"({cache.lru_evictions} evictions)")
        except Exception as error:
            disarm()
            return FaultOutcome(site, program_seed, False, True,
                                f"unhandled {type(error).__name__}: {error}")
        return FaultOutcome(site, program_seed, ok, plan.fired, detail)


def _run_server_cell(site, program_seed, source, reference, fault_seed,
                     level, step_limit, tempfile) -> FaultOutcome:
    """server.*: one fault through a live daemon.

    The cell passes iff the daemon survives, the faulted request comes
    back as either a clean result or a *structured* error, and a
    follow-up (or client-retried) request still produces the clean
    reference behaviour — one transient fault costs at most one
    request, never the service.
    """
    from ..bitcode import read_bytecode
    from ..serve import (
        ServeClient, ServeRequestError, Server, ServerConfig,
    )
    from .harness import run_interpreter

    with tempfile.TemporaryDirectory(prefix="lc-faultmatrix-") as tmp:
        server = Server(ServerConfig(socket_path=f"{tmp}/serve.sock",
                                     workers=1, queue_depth=4,
                                     cache_dir=f"{tmp}/cache",
                                     idle_reopt=False))
        client = ServeClient(server.address, retry_budget=4,
                             backoff_base=0.01, jitter_seed=fault_seed)
        plan = arm(site, fault_seed)
        # Tight deadline only for the stall site, so its watchdog cell
        # stays fast; everything else gets room to finish.
        deadline_ms = 2_000 if site == "server.request-timeout" else 60_000
        try:
            try:
                result = client.compile([source], "fault", level=level,
                                        deadline_ms=deadline_ms)
            except ServeRequestError:
                # The injected fault consumed one request with a
                # structured error (TIMEOUT is not client-retryable by
                # design); the fault is spent, so re-issuing must work.
                result = client.compile([source], "fault", level=level)
            outcome = run_interpreter(read_bytecode(result["bytecode"]),
                                      step_limit)
            alive = client.ping().get("pong") is True
            ok = outcome == reference and alive
            detail = "" if ok else (
                f"expected {reference.describe()}, got "
                f"{outcome.describe()}" if alive else "daemon died")
        except Exception as error:
            return FaultOutcome(site, program_seed, False, True,
                                f"unhandled {type(error).__name__}: {error}")
        finally:
            disarm()
            client.close()
            server.stop()
        return FaultOutcome(site, program_seed, ok, plan.fired, detail)
