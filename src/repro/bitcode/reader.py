"""Bytecode reader: decodes the binary representation back to IR.

Decoding per function body is two-pass: pass 1 creates a typed
placeholder for every instruction result (the packed type field carries
the result type, so forward references across the linear block layout
resolve cleanly); pass 2 materialises real instructions, resolving each
operand to the already-built instruction or to the placeholder, and
finally replaces every placeholder with its real value.
"""

from __future__ import annotations

from typing import Optional

from ..core import types
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    AllocaInst, BinaryOperator, BranchInst, CallInst, CastInst, FreeInst,
    GetElementPtrInst, InvokeInst, LoadInst, MallocInst, Opcode, PhiNode,
    ReturnInst, ShiftInst, StoreInst, SwitchInst, UnwindInst, VAArgInst,
    BINARY_OPCODES,
)
from ..core.module import Function, GlobalVariable, Linkage, Module
from ..core.values import (
    Constant, ConstantAggregateZero, ConstantArray, ConstantBool,
    ConstantExpr, ConstantFP, ConstantInt, ConstantPointerNull,
    ConstantString, ConstantStruct, UndefValue, Value,
)
from .errors import BytecodeError
from .stream import Reader
from .writer import (
    MAGIC, OLDEST_READABLE_VERSION, VERSION, _CONST_ARRAY, _CONST_BOOL, _CONST_EXPR_CAST,
    _CONST_EXPR_GEP, _CONST_FP, _CONST_INT, _CONST_NULL, _CONST_STRING,
    _CONST_STRUCT, _CONST_SYMBOL, _CONST_UNDEF, _CONST_ZERO,
    _PRIMITIVE_ORDER, _TY_ARRAY, _TY_FUNCTION, _TY_NAMED, _TY_POINTER,
    _TY_PRIMITIVE, _TY_STRUCT,
)

_OPCODES = list(Opcode)
_LINKAGES = [Linkage.EXTERNAL, Linkage.INTERNAL, Linkage.APPENDING]


class _Placeholder(Value):
    """Typed stand-in for a not-yet-decoded instruction result."""

    __slots__ = ()


def read_bytecode(data: bytes) -> Module:
    """Deserialize bytecode produced by :func:`write_bytecode`."""
    return _Decoder(data).decode()


def read_bytecode_lazy(data: bytes) -> tuple[Module, "_Decoder"]:
    """Deserialize headers only; function bodies decode on demand.

    Returns the module (all functions present as declarations-with-
    pending-bodies) and the decoder, whose :meth:`_Decoder.materialize`
    decodes one function's body — the mechanism behind the paper's
    function-at-a-time JIT (section 3.4).
    """
    decoder = _Decoder(data)
    module = decoder.decode(lazy=True)
    return module, decoder


class _Decoder:
    def __init__(self, data: bytes):
        self.reader = Reader(data)
        self.version = VERSION
        self.types: list[types.Type] = []
        self.symbols: list = []
        self.module: Optional[Module] = None
        #: The part of the format currently being decoded, for error
        #: reports (see :class:`BytecodeError`).
        self.section = "header"
        #: function name -> byte offset of its (not yet decoded) body.
        self.pending_bodies: dict[str, int] = {}

    def _guard(self, work):
        """Run one decoding step under the robustness contract: only
        :class:`BytecodeError` may escape.  Any other exception —
        ``IndexError`` from a forged table index, ``KeyError``,
        ``RecursionError`` from a constant cycle, an arity error from a
        mis-built instruction — is corruption observed late, and is
        re-raised as a :class:`BytecodeError` stamped with the current
        byte offset and section."""
        try:
            return work()
        except BytecodeError as error:
            if error.section is None:
                error.section = self.section
            if error.offset is None:
                error.offset = self.reader.position
            raise
        except Exception as error:
            raise BytecodeError(
                f"{type(error).__name__}: {error}",
                offset=self.reader.position, section=self.section,
            ) from error

    def decode(self, lazy: bool = False) -> Module:
        return self._guard(lambda: self._decode(lazy))

    def _decode(self, lazy: bool = False) -> Module:
        reader = self.reader
        self.section = "header"
        if reader.data[:4] != MAGIC:
            raise BytecodeError("bad magic", offset=0)
        reader.position = 4
        version = reader.u8()
        if not OLDEST_READABLE_VERSION <= version <= VERSION:
            raise BytecodeError(f"unsupported bytecode version {version}",
                                offset=4)
        self.version = version
        self.module = Module(reader.string())
        self.section = "type-table"
        self._read_type_table()

        self.section = "globals"
        global_count = reader.count()
        has_initializer: list[bool] = []
        for _ in range(global_count):
            name = reader.string()
            value_type = self.types[reader.uleb()]
            flags = reader.u8()
            global_var = self.module.new_global(
                value_type, name, None, _LINKAGES[flags & 0x3F],
                bool(flags & 0x80),
            )
            has_initializer.append(bool(flags & 0x40))
            self.symbols.append(global_var)
        self.section = "functions"
        function_count = reader.count()
        functions: list[Function] = []
        for _ in range(function_count):
            name = reader.string()
            fn_type = self.types[reader.uleb()]
            flags = reader.u8()
            function = self.module.new_function(fn_type, name,
                                                _LINKAGES[flags & 0x3F])
            function.is_pure = bool(flags & 0x80)
            if flags & 0x40:
                for arg in function.args:
                    arg.name = reader.string()
            functions.append(function)
            self.symbols.append(function)
        self.section = "global-initializers"
        for global_var, with_init in zip(self.module.globals.values(),
                                         has_initializer):
            if with_init:
                global_var.set_initializer(self._read_constant())
        for function in functions:
            self.section = f"body:{function.name}"
            body_length = reader.uleb()
            if not body_length:
                continue
            if lazy:
                self.pending_bodies[function.name] = reader.position
                reader.position += body_length - 1
            else:
                self._read_body(function)
        return self.module

    def materialize(self, function: Function) -> bool:
        """Decode one pending function body; False if already decoded
        (or a true declaration)."""
        offset = self.pending_bodies.pop(function.name, None)
        if offset is None:
            return False
        saved = self.reader.position
        self.reader.position = offset
        self.section = f"body:{function.name}"
        try:
            self._guard(lambda: self._read_body(function))
        finally:
            self.reader.position = saved
        return True

    # -- type table ----------------------------------------------------------

    def _read_type_table(self) -> None:
        reader = self.reader
        count = reader.count()
        kinds: list[int] = []
        for _ in range(count):
            kind = reader.u8()
            kinds.append(kind)
            if kind == _TY_PRIMITIVE:
                self.types.append(_PRIMITIVE_ORDER[reader.uleb()])
            elif kind == _TY_NAMED:
                name = reader.string()
                named = self.module.named_types.get(name)
                if named is None:
                    named = types.named_struct(name)
                    self.module.add_named_type(named)
                self.types.append(named)
            else:
                self.types.append(None)  # type: ignore[arg-type]
        # Payload pass.  Compound types may reference any index; named
        # structs already exist, and anonymous compounds are resolved
        # recursively on demand.
        payloads: list[Optional[tuple]] = [None] * count
        for index, kind in enumerate(kinds):
            if kind == _TY_POINTER:
                payloads[index] = ("ptr", reader.uleb())
            elif kind == _TY_ARRAY:
                element = reader.uleb()
                length = reader.uleb()
                payloads[index] = ("arr", element, length)
            elif kind in (_TY_STRUCT, _TY_NAMED):
                if kind == _TY_NAMED:
                    opaque = reader.u8() == 0
                    if opaque:
                        payloads[index] = ("named", None)
                        continue
                    field_count = reader.count()
                    payloads[index] = (
                        "named", [reader.uleb() for _ in range(field_count)]
                    )
                else:
                    marker = reader.u8()
                    if marker != 1:
                        raise BytecodeError("anonymous struct marked opaque")
                    field_count = reader.count()
                    payloads[index] = (
                        "struct", [reader.uleb() for _ in range(field_count)]
                    )
            elif kind == _TY_FUNCTION:
                return_index = reader.uleb()
                param_count = reader.count()
                params = [reader.uleb() for _ in range(param_count)]
                vararg = reader.u8() == 1
                payloads[index] = ("fn", return_index, params, vararg)

        resolving: set[int] = set()

        def resolve(index: int) -> types.Type:
            if self.types[index] is not None:
                return self.types[index]
            if index in resolving:
                raise BytecodeError("type table cycle through anonymous types")
            resolving.add(index)
            payload = payloads[index]
            if payload[0] == "ptr":
                result = types.pointer(resolve(payload[1]))
            elif payload[0] == "arr":
                result = types.array(resolve(payload[1]), payload[2])
            elif payload[0] == "struct":
                result = types.struct(resolve(f) for f in payload[1])
            elif payload[0] == "fn":
                result = types.function(
                    resolve(payload[1]), [resolve(p) for p in payload[2]],
                    payload[3],
                )
            else:  # pragma: no cover - named handled below
                raise BytecodeError("unresolvable type entry")
            resolving.discard(index)
            self.types[index] = result
            return result

        for index in range(count):
            if self.types[index] is None:
                resolve(index)
        # Named struct bodies last (they may reference anything).
        for index, kind in enumerate(kinds):
            if kind == _TY_NAMED:
                payload = payloads[index]
                struct_ty = self.types[index]
                if payload[1] is not None and struct_ty.is_opaque:
                    struct_ty.set_body([self.types[f] for f in payload[1]])

    # -- constants --------------------------------------------------------------

    def _read_constant(self) -> Constant:
        reader = self.reader
        tag = reader.u8()
        if tag == _CONST_SYMBOL:
            return self.symbols[reader.uleb()]
        if tag == _CONST_INT:
            ty = self.types[reader.uleb()]
            return ConstantInt(ty, reader.sleb())  # type: ignore[arg-type]
        if tag == _CONST_FP:
            ty = self.types[reader.uleb()]
            value = reader.f32() if ty.bits == 32 else reader.f64()  # type: ignore[attr-defined]
            return ConstantFP(ty, value)  # type: ignore[arg-type]
        if tag == _CONST_BOOL:
            return ConstantBool(reader.u8() == 1)
        if tag == _CONST_NULL:
            return ConstantPointerNull(self.types[reader.uleb()])  # type: ignore[arg-type]
        if tag == _CONST_UNDEF:
            return UndefValue(self.types[reader.uleb()])
        if tag == _CONST_ZERO:
            return ConstantAggregateZero(self.types[reader.uleb()])
        if tag == _CONST_STRING:
            return ConstantString(reader.raw())
        if tag == _CONST_ARRAY:
            ty = self.types[reader.uleb()]
            elements = [self._read_constant() for _ in range(ty.count)]  # type: ignore[attr-defined]
            return ConstantArray(ty, elements)  # type: ignore[arg-type]
        if tag == _CONST_STRUCT:
            ty = self.types[reader.uleb()]
            fields = [self._read_constant() for _ in range(len(ty.fields))]  # type: ignore[attr-defined]
            return ConstantStruct(ty, fields)  # type: ignore[arg-type]
        if tag in (_CONST_EXPR_CAST, _CONST_EXPR_GEP):
            ty = self.types[reader.uleb()]
            count = reader.uleb()
            operands = [self._read_constant() for _ in range(count)]
            opcode = "cast" if tag == _CONST_EXPR_CAST else "getelementptr"
            return ConstantExpr(opcode, ty, operands)
        raise BytecodeError(f"bad constant tag {tag}")

    # -- function bodies ------------------------------------------------------------

    def _read_body(self, function: Function) -> None:
        reader = self.reader
        pool_count = reader.count()
        pool = [self._read_constant() for _ in range(pool_count)]
        base = len(self.symbols)
        arg_base = base + len(pool)
        inst_base = arg_base + len(function.args)

        block_count = reader.count()
        blocks = [BasicBlock(parent=function) for _ in range(block_count)]
        # Pass 1: read raw records, create typed result placeholders.
        # Value ids number only the value-producing instructions, in
        # layout order (matching the writer's numbering).
        records: list[list[tuple]] = []
        placeholders: list[Value] = []
        for block_index in range(block_count):
            inst_count = reader.count()
            block_records = []
            for _ in range(inst_count):
                word = reader.u32()
                opcode_number = word >> 26
                if opcode_number:
                    type_id = (word >> 18) & 0xFF
                    a = (word >> 9) & 0x1FF
                    b = word & 0x1FF
                    operands = []
                    if a:
                        operands.append(a - 1)
                    if b:
                        operands.append(b - 1)
                else:
                    header = reader.u32()
                    opcode_number = header >> 26
                    type_id = (header >> 12) & 0x3FFF
                    count = header & 0xFFF
                    operands = [reader.uleb() for _ in range(count)]
                if not opcode_number or opcode_number > len(_OPCODES):
                    raise BytecodeError(
                        f"bad opcode number {opcode_number}",
                        offset=reader.position)
                opcode = _OPCODES[opcode_number - 1]
                result_type = self.types[type_id]
                value_slot: Optional[int] = None
                if opcode in (Opcode.MALLOC, Opcode.ALLOCA):
                    value_slot = len(placeholders)
                    placeholders.append(_Placeholder(types.pointer(result_type)))
                elif not result_type.is_void:
                    value_slot = len(placeholders)
                    placeholders.append(_Placeholder(result_type))
                block_records.append((opcode, result_type, operands, value_slot))
            records.append(block_records)

        built: list[Optional[Value]] = [None] * len(placeholders)

        def operand(index: int, want_block: bool = False):
            if want_block:
                return blocks[index]
            if index < base:
                return self.symbols[index]
            if index < arg_base:
                return pool[index - base]
            if index < inst_base:
                return function.args[index - arg_base]
            slot = index - inst_base
            if built[slot] is not None:
                return built[slot]
            return placeholders[slot]

        # Pass 2: build instructions.
        layout_order: list = []
        for block, block_records in zip(blocks, records):
            for opcode, result_type, ids, value_slot in block_records:
                inst = self._build_instruction(opcode, result_type, ids,
                                               operand, blocks)
                block.instructions.append(inst)
                inst.parent = block
                layout_order.append(inst)
                if value_slot is not None:
                    built[value_slot] = inst
        # Replace placeholder uses with the real instructions.
        for placeholder, real in zip(placeholders, built):
            if placeholder.uses:
                placeholder.replace_all_uses_with(real)

        # Source-location section (absent in version-1 bytecode).
        if self.version >= 2:
            for _ in range(reader.count()):
                ordinal = reader.uleb()
                line = reader.uleb()
                if ordinal >= len(layout_order):
                    raise BytecodeError("loc record past end of function")
                layout_order[ordinal].loc = line

        # Optional local symbol table.
        name_count = reader.count()
        values_in_order: list[Value] = list(function.args) + [
            built[i] for i in range(len(built)) if built[i] is not None
        ]
        for _ in range(name_count):
            kind = reader.u8()
            name = reader.string()
            value_id = reader.uleb()
            if kind == 1:
                blocks[value_id].name = name
            else:
                if value_id < arg_base:
                    continue
                if value_id < inst_base:
                    function.args[value_id - arg_base].name = name
                else:
                    target = built[value_id - inst_base]
                    if target is not None:
                        target.name = name

    def _build_instruction(self, opcode: Opcode, result_type: types.Type,
                           ids: list[int], operand, blocks) -> object:
        if opcode in BINARY_OPCODES:
            return BinaryOperator(opcode, operand(ids[0]), operand(ids[1]))
        if opcode in (Opcode.SHL, Opcode.SHR):
            return ShiftInst(opcode, operand(ids[0]), operand(ids[1]))
        if opcode == Opcode.RET:
            return ReturnInst(operand(ids[0]) if ids else None)
        if opcode == Opcode.BR:
            if len(ids) == 1:
                return BranchInst(blocks[ids[0]])
            return BranchInst(blocks[ids[1]], operand(ids[0]), blocks[ids[2]])
        if opcode == Opcode.SWITCH:
            cases = []
            for position in range(2, len(ids), 2):
                cases.append((operand(ids[position]), blocks[ids[position + 1]]))
            return SwitchInst(operand(ids[0]), blocks[ids[1]], cases)
        if opcode == Opcode.INVOKE:
            args = [operand(i) for i in ids[1:-2]]
            return InvokeInst(operand(ids[0]), args,
                              blocks[ids[-2]], blocks[ids[-1]])
        if opcode == Opcode.UNWIND:
            return UnwindInst()
        if opcode == Opcode.MALLOC:
            size = operand(ids[0]) if ids else None
            return MallocInst(result_type, size)
        if opcode == Opcode.ALLOCA:
            size = operand(ids[0]) if ids else None
            return AllocaInst(result_type, size)
        if opcode == Opcode.FREE:
            return FreeInst(operand(ids[0]))
        if opcode == Opcode.LOAD:
            return LoadInst(operand(ids[0]))
        if opcode == Opcode.STORE:
            return StoreInst(operand(ids[0]), operand(ids[1]))
        if opcode == Opcode.GETELEMENTPTR:
            return GetElementPtrInst(operand(ids[0]),
                                     [operand(i) for i in ids[1:]])
        if opcode == Opcode.PHI:
            phi = PhiNode(result_type)
            for position in range(0, len(ids), 2):
                phi.add_incoming(operand(ids[position]),
                                 blocks[ids[position + 1]])
            return phi
        if opcode == Opcode.CAST:
            return CastInst(operand(ids[0]), result_type)
        if opcode == Opcode.CALL:
            return CallInst(operand(ids[0]), [operand(i) for i in ids[1:]])
        if opcode == Opcode.VAARG:
            return VAArgInst(operand(ids[0]), result_type)
        raise BytecodeError(f"cannot decode opcode {opcode}")
