"""Bytecode writer: the compact binary representation (section 4.1.3).

"The flat, three-address form of LLVM is well suited for a simple
linear layout, with most instructions requiring only a single 32-bit
word each."  This writer reproduces that design:

* each instruction first tries a packed one-word form —
  ``[opcode:6][type:8][opA:9][opB:9]`` — usable whenever the type index
  and the (at most two) operand ids fit their fields;
* otherwise it falls back on an escape form of 64 bits or larger (an
  escape word, a header word, then one varint per operand).  As in the
  paper,
  "large programs are encoded less efficiently than smaller ones
  because they have a larger set of register values available at any
  point, making it harder to fit instructions into a 32-bit encoding",
  and "though it would be possible to make the fall back case more
  efficient, we have not attempted to do so".

Sections: magic, type table, global variables (with initializers),
function headers, function bodies (constant pool + blocks +
instructions + a sparse source-location table since version 2), and an
optional symbol table of local value names (omitted when
``strip_names`` — the configuration used for size measurements, like a
stripped native executable).

The writer is deterministic: two calls over the same module — or over
two modules built by identical compilations — produce byte-identical
output, which is what lets the incremental driver use bytecode as a
content-addressed cache artifact (see :mod:`repro.driver.cache`).
"""

from __future__ import annotations

from typing import Optional

from ..core import types
from ..core.basicblock import BasicBlock
from ..core.instructions import (
    AllocationInst, CastInst, Instruction, InvokeInst, Opcode, PhiNode,
    SwitchInst, VAArgInst,
)
from ..core.module import Function, GlobalVariable, Linkage, Module
from ..core.values import (
    Argument, Constant, ConstantAggregateZero, ConstantArray, ConstantBool,
    ConstantExpr, ConstantFP, ConstantInt, ConstantPointerNull,
    ConstantString, ConstantStruct, UndefValue, Value,
)
from .stream import Writer

MAGIC = b"llvm"
#: Version 2 added the per-body source-location section; version-1
#: bytecode (no locations) is still readable.
VERSION = 2
OLDEST_READABLE_VERSION = 1

_OPCODE_INDEX = {op: i for i, op in enumerate(Opcode)}
_LINKAGE_INDEX = {Linkage.EXTERNAL: 0, Linkage.INTERNAL: 1, Linkage.APPENDING: 2}

# Type table kind tags.
_TY_PRIMITIVE = 0    # payload: primitive index
_TY_POINTER = 1      # payload: pointee type index
_TY_ARRAY = 2        # payload: element type index, count
_TY_STRUCT = 3       # payload: field count, field type indices
_TY_NAMED = 4        # payload: name, opaque flag, fields
_TY_FUNCTION = 5     # payload: return, param count, params, vararg

_PRIMITIVE_ORDER = [
    types.VOID, types.BOOL, types.SBYTE, types.UBYTE, types.SHORT,
    types.USHORT, types.INT, types.UINT, types.LONG, types.ULONG,
    types.FLOAT, types.DOUBLE, types.LABEL,
]

# Constant pool entry tags.
_CONST_INT = 0
_CONST_FP = 1
_CONST_BOOL = 2
_CONST_NULL = 3
_CONST_UNDEF = 4
_CONST_ZERO = 5
_CONST_STRING = 6
_CONST_ARRAY = 7
_CONST_STRUCT = 8
_CONST_EXPR_CAST = 9
_CONST_EXPR_GEP = 10
_CONST_SYMBOL = 11   # reference to a module-level symbol by index


class _TypeTable:
    def __init__(self):
        self.index: dict[int, int] = {}
        self.entries: list[types.Type] = []

    def id_of(self, ty: types.Type) -> int:
        existing = self.index.get(id(ty))
        if existing is not None:
            return existing
        # Reserve the slot first so recursive named structs terminate.
        slot = len(self.entries)
        self.index[id(ty)] = slot
        self.entries.append(ty)
        if ty.is_pointer:
            self.id_of(ty.pointee)
        elif ty.is_array:
            self.id_of(ty.element)
        elif ty.is_struct and not ty.is_opaque:
            for field in ty.fields:
                self.id_of(field)
        elif ty.is_function:
            self.id_of(ty.return_type)
            for param in ty.params:
                self.id_of(param)
        return slot


class BytecodeWriter:
    def __init__(self, strip_names: bool = True, version: int = VERSION):
        if not OLDEST_READABLE_VERSION <= version <= VERSION:
            raise ValueError(f"cannot write bytecode version {version}")
        self.strip_names = strip_names
        self.version = version
        #: Encoding census: how many instructions fit the packed single
        #: 32-bit word vs needing the escape form (the paper's
        #: "most instructions requiring only a single 32-bit word").
        self.packed_count = 0
        self.escaped_count = 0

    def write(self, module: Module) -> bytes:
        out = Writer()
        out._chunks += MAGIC
        out.u8(self.version)
        out.string(module.name)

        type_table = _TypeTable()
        symbol_ids: dict[int, int] = {}
        symbols = list(module.globals.values()) + list(module.functions.values())
        for index, symbol in enumerate(symbols):
            symbol_ids[id(symbol)] = index
            type_table.id_of(symbol.type.pointee)

        # Pre-encode payloads so the type table is complete before the
        # header sections (which embed type indices) are emitted.
        initializer_sections: list[bytes] = []
        for global_var in module.globals.values():
            if global_var.initializer is not None:
                section = Writer()
                self._encode_constant(section, global_var.initializer,
                                      type_table, symbol_ids)
                initializer_sections.append(section.getvalue())
        function_bodies: list[Optional[bytes]] = []
        for function in module.functions.values():
            if function.is_declaration:
                function_bodies.append(None)
            else:
                function_bodies.append(
                    self._encode_body(function, type_table, symbol_ids)
                )

        self._emit_type_table(out, type_table)

        # Section: global headers.
        out.uleb(len(module.globals))
        for global_var in module.globals.values():
            out.string(global_var.name)
            out.uleb(type_table.index[id(global_var.value_type)])
            flags = _LINKAGE_INDEX[global_var.linkage]
            if global_var.is_constant:
                flags |= 0x80
            if global_var.initializer is not None:
                flags |= 0x40
            out.u8(flags)
        # Section: function headers.
        out.uleb(len(module.functions))
        for function in module.functions.values():
            out.string(function.name)
            out.uleb(type_table.index[id(function.function_type)])
            flags = _LINKAGE_INDEX[function.linkage]
            if function.is_pure:
                flags |= 0x80
            if not self.strip_names:
                flags |= 0x40
            out.u8(flags)
            if not self.strip_names:
                for arg in function.args:
                    out.string(arg.name)
        # Section: global initializers (in global order).
        for section in initializer_sections:
            out._chunks += section
        # Section: function bodies (in function order; 0 = declaration).
        for body in function_bodies:
            if body is None:
                out.uleb(0)
            else:
                out.uleb(len(body) + 1)
                out._chunks += body
        return out.getvalue()

    # -- type table ----------------------------------------------------------

    def _emit_type_table(self, out: Writer, table: _TypeTable) -> None:
        out.uleb(len(table.entries))
        # Pass 1: headers (so named structs exist before bodies).
        for ty in table.entries:
            if ty.is_struct and ty.name is not None:
                out.u8(_TY_NAMED)
                out.string(ty.name)
            elif ty.is_struct:
                out.u8(_TY_STRUCT)
            elif ty.is_pointer:
                out.u8(_TY_POINTER)
            elif ty.is_array:
                out.u8(_TY_ARRAY)
            elif ty.is_function:
                out.u8(_TY_FUNCTION)
            else:
                out.u8(_TY_PRIMITIVE)
                out.uleb(_PRIMITIVE_ORDER.index(ty))
        # Pass 2: payloads referencing type ids.
        for ty in table.entries:
            if ty.is_pointer:
                out.uleb(table.index[id(ty.pointee)])
            elif ty.is_array:
                out.uleb(table.index[id(ty.element)])
                out.uleb(ty.count)
            elif ty.is_struct:
                if ty.is_opaque:
                    out.u8(0)
                else:
                    out.u8(1)
                    out.uleb(len(ty.fields))
                    for field in ty.fields:
                        out.uleb(table.index[id(field)])
            elif ty.is_function:
                out.uleb(table.index[id(ty.return_type)])
                out.uleb(len(ty.params))
                for param in ty.params:
                    out.uleb(table.index[id(param)])
                out.u8(1 if ty.is_vararg else 0)

    # -- constants --------------------------------------------------------------

    def _encode_constant(self, out: Writer, constant: Constant,
                         table: _TypeTable, symbol_ids: dict[int, int]) -> None:
        """Self-delimiting recursive constant encoding."""
        if isinstance(constant, (Function, GlobalVariable)):
            out.u8(_CONST_SYMBOL)
            out.uleb(symbol_ids[id(constant)])
            return
        if isinstance(constant, ConstantInt):
            out.u8(_CONST_INT)
            out.uleb(table.id_of(constant.type))
            out.sleb(constant.value)
            return
        if isinstance(constant, ConstantFP):
            out.u8(_CONST_FP)
            out.uleb(table.id_of(constant.type))
            if constant.type.bits == 32:  # type: ignore[attr-defined]
                out.f32(constant.value)
            else:
                out.f64(constant.value)
            return
        if isinstance(constant, ConstantBool):
            out.u8(_CONST_BOOL)
            out.u8(1 if constant.value else 0)
            return
        if isinstance(constant, ConstantPointerNull):
            out.u8(_CONST_NULL)
            out.uleb(table.id_of(constant.type))
            return
        if isinstance(constant, UndefValue):
            out.u8(_CONST_UNDEF)
            out.uleb(table.id_of(constant.type))
            return
        if isinstance(constant, ConstantAggregateZero):
            out.u8(_CONST_ZERO)
            out.uleb(table.id_of(constant.type))
            return
        if isinstance(constant, ConstantString):
            out.u8(_CONST_STRING)
            out.raw(constant.data)
            return
        if isinstance(constant, ConstantArray):
            out.u8(_CONST_ARRAY)
            out.uleb(table.id_of(constant.type))
            for element in constant.elements:
                self._encode_constant(out, element, table, symbol_ids)
            return
        if isinstance(constant, ConstantStruct):
            out.u8(_CONST_STRUCT)
            out.uleb(table.id_of(constant.type))
            for field in constant.fields_values:
                self._encode_constant(out, field, table, symbol_ids)
            return
        if isinstance(constant, ConstantExpr):
            out.u8(_CONST_EXPR_CAST if constant.opcode == "cast" else _CONST_EXPR_GEP)
            out.uleb(table.id_of(constant.type))
            out.uleb(len(constant.operands))
            for operand in constant.operands:
                self._encode_constant(out, operand, table, symbol_ids)
            return
        raise TypeError(f"cannot encode constant {constant!r}")

    # -- function bodies ------------------------------------------------------------

    def _encode_body(self, function: Function, table: _TypeTable,
                     symbol_ids: dict[int, int]) -> bytes:
        out = Writer()
        # Value numbering: module symbols, constant pool, args, instructions.
        base = len(symbol_ids)
        pool: list[Constant] = []
        pool_ids: dict[int, int] = {}

        def pool_id(constant: Constant) -> int:
            existing = pool_ids.get(id(constant))
            if existing is None:
                existing = base + len(pool)
                pool_ids[id(constant)] = existing
                pool.append(constant)
            return existing

        # Collect pooled constants in a deterministic order.
        for inst in function.instructions():
            for operand in inst.operands:
                if isinstance(operand, (Function, GlobalVariable)):
                    continue
                if isinstance(operand, Constant):
                    pool_id(operand)

        value_ids: dict[int, int] = {}
        cursor = base + len(pool)
        for arg in function.args:
            value_ids[id(arg)] = cursor
            cursor += 1
        block_ids: dict[int, int] = {}
        for block_number, block in enumerate(function.blocks):
            block_ids[id(block)] = block_number
            for inst in block.instructions:
                if not inst.type.is_void:
                    value_ids[id(inst)] = cursor
                    cursor += 1

        def operand_id(value: Value) -> int:
            if isinstance(value, BasicBlock):
                return block_ids[id(value)]
            if isinstance(value, (Function, GlobalVariable)):
                return symbol_ids[id(value)]
            if isinstance(value, (Instruction, Argument)):
                return value_ids[id(value)]
            return pool_ids[id(value)]

        # Constant pool section.
        out.uleb(len(pool))
        for constant in pool:
            self._encode_constant(out, constant, table, symbol_ids)

        # Blocks and instructions.
        out.uleb(len(function.blocks))
        for block in function.blocks:
            out.uleb(len(block.instructions))
            for inst in block.instructions:
                self._encode_instruction(out, inst, table, operand_id)

        # Source-location section (version >= 2): sparse records of
        # (instruction ordinal in layout order, line), so instructions
        # without a location cost nothing.
        if self.version >= 2:
            located: list[tuple[int, int]] = []
            ordinal = 0
            for block in function.blocks:
                for inst in block.instructions:
                    if inst.loc is not None:
                        located.append((ordinal, inst.loc))
                    ordinal += 1
            out.uleb(len(located))
            for ordinal, line in located:
                out.uleb(ordinal)
                out.uleb(line)

        # Symbol table of local names (optional, like -g vs stripped).
        if self.strip_names:
            out.uleb(0)
        else:
            named: list[tuple[int, str, int]] = []  # (kind, name, id)
            for arg in function.args:
                if arg.name:
                    named.append((0, arg.name, value_ids[id(arg)]))
            for block in function.blocks:
                if block.name:
                    named.append((1, block.name, block_ids[id(block)]))
                for inst in block.instructions:
                    if inst.name and not inst.type.is_void:
                        named.append((0, inst.name, value_ids[id(inst)]))
            out.uleb(len(named))
            for kind, name, value_id in named:
                out.u8(kind)
                out.string(name)
                out.uleb(value_id)
        return out.getvalue()

    def _encode_instruction(self, out: Writer, inst: Instruction,
                            table: _TypeTable, operand_id) -> None:
        opcode_number = _OPCODE_INDEX[inst.opcode] + 1  # 0 = escape

        # The "type" field carries the result type (the allocated type
        # for alloca/malloc), which is exactly what the reader needs to
        # create a typed placeholder before operands resolve.
        if isinstance(inst, AllocationInst):
            type_id = table.id_of(inst.allocated_type)
        else:
            type_id = table.id_of(inst.type)

        operands = [operand_id(op) for op in inst.operands]
        if (len(operands) <= 2 and type_id < 0xFF
                and all(op < 0x1FF for op in operands)):
            # Packed single 32-bit word:
            # [opcode:6][type:8][opA:9][opB:9] (operand+1; 0 = absent).
            a = operands[0] + 1 if len(operands) >= 1 else 0
            b = operands[1] + 1 if len(operands) >= 2 else 0
            word = (opcode_number << 26) | (type_id << 18) | (a << 9) | b
            out.u32(word)
            self.packed_count += 1
            return
        # Escape form, 64 bits or larger: a second header word carrying
        # [opcode:6][type:14][count:12], then one uleb per operand.
        out.u32(0)
        if type_id >= (1 << 14) or len(operands) >= (1 << 12):
            raise ValueError("module too large for the bytecode format")
        out.u32((opcode_number << 26) | (type_id << 12) | len(operands))
        for op in operands:
            out.uleb(op)
        self.escaped_count += 1


def write_bytecode(module: Module, strip_names: bool = True) -> bytes:
    """Serialize a module to the binary bytecode format."""
    return BytecodeWriter(strip_names).write(module)
