"""Structured errors for the bytecode representation.

Malformed input is an expected event in a lifelong system: bytecode is
read back from caches, sidecar files, and executables that may have
been truncated, bit-flipped, or written by a different toolchain
version.  Every decoding failure is therefore reported as a
:class:`BytecodeError` carrying the byte offset and the section being
decoded, so callers (the cache, the driver, the fault-injection
harness) can treat it as an isolable event — evict and recompile —
instead of a process abort from a bare ``IndexError`` or
``struct.error``.
"""

from __future__ import annotations

from typing import Optional


class BytecodeError(Exception):
    """Malformed bytecode input.

    ``offset`` is the reader position (in bytes) where decoding failed;
    ``section`` names the part of the format being decoded (``header``,
    ``type-table``, ``globals``, ``constants``, ``body:<function>``,
    ``symtab``...).  Both are best-effort and may be ``None`` when the
    failure happens before any structure is known.
    """

    def __init__(self, message: str, offset: Optional[int] = None,
                 section: Optional[str] = None):
        super().__init__(message)
        self.message = message
        self.offset = offset
        self.section = section

    def __str__(self) -> str:
        where = []
        if self.section is not None:
            where.append(f"section {self.section}")
        if self.offset is not None:
            where.append(f"byte offset {self.offset}")
        if where:
            return f"{self.message} ({', '.join(where)})"
        return self.message


class TruncatedBytecode(BytecodeError):
    """The input ended before the structure it promised."""
