"""The binary bytecode representation (paper sections 2.5 and 4.1.3).

One of the three equivalent program representations: a compact linear
encoding in which most instructions take a single 32-bit word.
"""

from .errors import BytecodeError, TruncatedBytecode
from .reader import read_bytecode
from .writer import BytecodeWriter, write_bytecode

__all__ = ["BytecodeError", "TruncatedBytecode", "read_bytecode",
           "BytecodeWriter", "write_bytecode"]
