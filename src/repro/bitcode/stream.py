"""Byte/word-level primitives for the bytecode format.

The :class:`Reader` is bounds-checked: every primitive read verifies
the bytes it needs are actually present and raises
:class:`~repro.bitcode.errors.TruncatedBytecode` (a
:class:`~repro.bitcode.errors.BytecodeError`) otherwise, so truncated
input fails with a structured, offset-carrying error instead of a bare
``IndexError``/``struct.error`` from deep inside the decoder.
"""

from __future__ import annotations

import struct as _struct

from .errors import BytecodeError, TruncatedBytecode

#: uleb/sleb values are at most 64 bits wide in this format; anything
#: longer is corruption (and, unchecked, a way to make the reader build
#: astronomically large integers from a few flipped continuation bits).
_MAX_VARINT_SHIFT = 70


class Writer:
    def __init__(self):
        self._chunks = bytearray()

    def u8(self, value: int) -> None:
        self._chunks.append(value & 0xFF)

    def u32(self, value: int) -> None:
        self._chunks += _struct.pack("<I", value & 0xFFFFFFFF)

    def f64(self, value: float) -> None:
        self._chunks += _struct.pack("<d", value)

    def f32(self, value: float) -> None:
        self._chunks += _struct.pack("<f", value)

    def uleb(self, value: int) -> None:
        if value < 0:
            raise ValueError("uleb encodes non-negative integers")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self.u8(byte | 0x80)
            else:
                self.u8(byte)
                return

    def sleb(self, value: int) -> None:
        while True:
            byte = value & 0x7F
            value >>= 7
            done = (value == 0 and not byte & 0x40) or (value == -1 and byte & 0x40)
            if done:
                self.u8(byte)
                return
            self.u8(byte | 0x80)

    def string(self, text: str) -> None:
        data = text.encode("utf-8")
        self.uleb(len(data))
        self._chunks += data

    def raw(self, data: bytes) -> None:
        self.uleb(len(data))
        self._chunks += data

    def getvalue(self) -> bytes:
        return bytes(self._chunks)

    def __len__(self) -> int:
        return len(self._chunks)


class Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.position = 0

    def _need(self, count: int) -> None:
        if self.position + count > len(self.data):
            raise TruncatedBytecode(
                f"need {count} byte(s), {len(self.data) - self.position} left",
                offset=self.position,
            )

    def u8(self) -> int:
        self._need(1)
        value = self.data[self.position]
        self.position += 1
        return value

    def u32(self) -> int:
        self._need(4)
        value = _struct.unpack_from("<I", self.data, self.position)[0]
        self.position += 4
        return value

    def f64(self) -> float:
        self._need(8)
        value = _struct.unpack_from("<d", self.data, self.position)[0]
        self.position += 8
        return value

    def f32(self) -> float:
        self._need(4)
        value = _struct.unpack_from("<f", self.data, self.position)[0]
        self.position += 4
        return value

    def uleb(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.u8()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
            if shift > _MAX_VARINT_SHIFT:
                raise BytecodeError("uleb varint too long",
                                    offset=self.position)

    def sleb(self) -> int:
        result = 0
        shift = 0
        while True:
            byte = self.u8()
            result |= (byte & 0x7F) << shift
            shift += 7
            if not byte & 0x80:
                if byte & 0x40:
                    result -= 1 << shift
                return result
            if shift > _MAX_VARINT_SHIFT:
                raise BytecodeError("sleb varint too long",
                                    offset=self.position)

    def count(self, minimum_bytes: int = 1) -> int:
        """Read a uleb element count and sanity-check it against the
        bytes remaining: every element costs at least ``minimum_bytes``,
        so a count the input cannot possibly back is corruption — and,
        unchecked, a way to make the decoder allocate or loop on a
        number limited only by 64 bits."""
        value = self.uleb()
        remaining = len(self.data) - self.position
        if value * minimum_bytes > remaining:
            raise BytecodeError(
                f"implausible element count {value} "
                f"({remaining} byte(s) left)",
                offset=self.position,
            )
        return value

    def string(self) -> str:
        length = self.count()
        try:
            text = self.data[self.position:self.position + length].decode("utf-8")
        except UnicodeDecodeError as error:
            raise BytecodeError(f"bad utf-8 in string: {error}",
                                offset=self.position) from error
        self.position += length
        return text

    def raw(self) -> bytes:
        length = self.count()
        data = self.data[self.position:self.position + length]
        self.position += length
        return data

    @property
    def at_end(self) -> bool:
        return self.position >= len(self.data)
