"""Command-line tools, mirroring the LLVM 1.x tool suite.

| command   | LLVM equivalent | does |
|-----------|-----------------|------|
| lc-cc     | llvmgcc         | compile LC source to IR (text or bytecode) |
| lc-as     | llvm-as         | assemble textual IR into bytecode |
| lc-dis    | llvm-dis        | disassemble bytecode into textual IR |
| lc-opt    | opt             | run optimization passes over IR |
| lc-link   | llvm-link/gccld | link modules (+ link-time IPO with -lto) |
| lc-run    | lli             | execute a module in the execution engine |
| lc-llc    | llc             | "native" code generation (sizes + assembly) |
| lc-lint   | (clang-tidy)    | static checker suite over IR or LC source |
| lc-fuzz   | (csmith)        | differential fuzzer across every oracle pair |
| lc-bugpoint | bugpoint      | bisect the guilty pass, reduce the program |
| lc-synth  | (souper)        | synthesize + exhaustively verify peephole rules |
| lc-bench  | (llvm-bench)    | time the compiler's own hot phases, emit BENCH json |
| lc-serverd | (no equivalent) | persistent crash-only compilation daemon (docs/SERVING.md) |
| lc-client | (no equivalent) | talk to a running lc-serverd |

Each accepts ``-`` for stdin/stdout where that makes sense.  Installed
as console scripts; also callable as ``python -m repro.tools <tool>``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .backend import SPARC, X86, compile_for_size, print_machine_function
from .bitcode import read_bytecode, write_bytecode
from .core import parse_module, print_module, verify_module
from .core.module import Module
from .driver import (
    BytecodeCache, compile_and_link, link_time_optimize, optimize_module,
)
from .execution import Interpreter
from .frontend import compile_source
from .linker import link_modules


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r") as handle:
        return handle.read()


def _read_module(path: str) -> Module:
    """Load a module from textual IR or bytecode (sniffed by magic)."""
    if path == "-":
        data = sys.stdin.buffer.read()
    else:
        with open(path, "rb") as handle:
            data = handle.read()
    if data[:4] == b"llvm":
        return read_bytecode(data)
    return parse_module(data.decode("utf-8"))


def _write_module(module: Module, path: str, binary: bool) -> None:
    if binary:
        data = write_bytecode(module, strip_names=False)
        if path == "-":
            sys.stdout.buffer.write(data)
        else:
            with open(path, "wb") as handle:
                handle.write(data)
    else:
        text = print_module(module)
        if path == "-":
            sys.stdout.write(text)
        else:
            with open(path, "w") as handle:
                handle.write(text)


def _add_fault_arguments(parser) -> None:
    """The shared fault-tolerance flags (see docs/ROBUSTNESS.md)."""
    parser.add_argument("--fault-tolerant", action="store_true",
                        dest="fault_tolerant",
                        help="run passes transactionally: a crashing pass "
                             "is rolled back, poisoned, and reported "
                             "instead of aborting the build")
    parser.add_argument("--crash-dir", default=None, dest="crash_dir",
                        help="write structured crash reports (+ reduced "
                             "IR testcases) here; implies --fault-tolerant")
    parser.add_argument("--fault-inject", default=None, dest="fault_inject",
                        metavar="SITE:SEED",
                        help="arm one seeded single-shot fault (see "
                             "lc-fuzz --list-fault-sites); implies "
                             "--fault-tolerant")
    parser.add_argument("--translation-validate", action="store_true",
                        dest="translation_validate",
                        help="check every function a transform pass changes "
                             "for refinement against its input; a violation "
                             "rolls the pass back like a crash (implies "
                             "--fault-tolerant)")


def _parse_fault_spec(spec: str, parser) -> tuple:
    """``SITE`` or ``SITE:SEED`` -> (site, seed).  Site names may
    themselves contain a colon (``pass:gvn``), so the seed is only
    split off when the last segment is an integer."""
    site, _, tail = spec.rpartition(":")
    if site and tail.lstrip("-").isdigit():
        return site, int(tail)
    return spec, 0


def _make_fault_policy(args):
    """A FaultPolicy when any fault flag was given, else None."""
    translation_validate = getattr(args, "translation_validate", False)
    if not (args.fault_tolerant or args.crash_dir or args.fault_inject
            or translation_validate):
        return None
    from .driver import FaultPolicy

    return FaultPolicy(crash_dir=args.crash_dir,
                       translation_validate=translation_validate)


def _armed(args, parser):
    """Context manager: the requested injection (or nothing) armed."""
    from contextlib import nullcontext

    if not args.fault_inject:
        return nullcontext()
    from .fuzz import faultinject

    site, seed = _parse_fault_spec(args.fault_inject, parser)
    if site not in faultinject.registered_sites():
        parser.error(f"unknown fault site {site!r} "
                     "(see lc-fuzz --list-fault-sites)")
    return faultinject.injected(site, seed)


def lc_cc(argv=None) -> int:
    """Compile LC source to IR."""
    parser = argparse.ArgumentParser(
        prog="lc-cc", description="LC front-end (the llvmgcc equivalent)"
    )
    parser.add_argument("sources", nargs="+", help="LC source files")
    parser.add_argument("-o", default="-", help="output (default stdout)")
    parser.add_argument("-O", type=int, default=0, dest="level",
                        help="optimization level 0-3")
    parser.add_argument("--lto", action="store_true",
                        help="run link-time interprocedural optimization")
    parser.add_argument("-c", action="store_true", dest="binary",
                        help="emit bytecode instead of textual IR")
    parser.add_argument("--cache-dir", default=None,
                        help="content-addressed bytecode cache directory; "
                             "unchanged translation units skip the "
                             "front-end and optimizer")
    parser.add_argument("--jobs", "-j", type=int, default=1,
                        help="compile translation units with N threads")
    parser.add_argument("-stats", action="store_true", dest="stats",
                        help="print cache hit/miss statistics to stderr")
    _add_fault_arguments(parser)
    args = parser.parse_args(argv)
    sources = [_read_text(path) for path in args.sources]
    cache = BytecodeCache(args.cache_dir) if args.cache_dir else None
    policy = _make_fault_policy(args)
    with _armed(args, parser):
        if len(sources) == 1 and not args.lto and cache is None \
                and policy is None:
            module = compile_source(sources[0], "module")
            optimize_module(module, args.level)
        else:
            module = compile_and_link(sources, "program", args.level,
                                      args.lto, cache=cache, jobs=args.jobs,
                                      policy=policy)
    verify_module(module)
    if args.stats:
        stats = {}
        if cache is not None:
            stats[cache.name] = cache.statistics()
        if policy is not None:
            stats[policy.name] = policy.statistics()
        _print_stats(stats)
    for report in (policy.crash_reports if policy is not None else ()):
        print(f"lc-cc: contained: {report.describe()}", file=sys.stderr)
    _write_module(module, args.o, args.binary)
    return 0


def lc_as(argv=None) -> int:
    """Assemble textual IR into bytecode."""
    parser = argparse.ArgumentParser(
        prog="lc-as", description="IR assembler (the llvm-as equivalent)"
    )
    parser.add_argument("input", nargs="?", default="-")
    parser.add_argument("-o", default="-")
    args = parser.parse_args(argv)
    module = parse_module(_read_text(args.input))
    verify_module(module)
    _write_module(module, args.o, binary=True)
    return 0


def lc_dis(argv=None) -> int:
    """Disassemble bytecode into textual IR."""
    parser = argparse.ArgumentParser(
        prog="lc-dis", description="IR disassembler (the llvm-dis equivalent)"
    )
    parser.add_argument("input", nargs="?", default="-")
    parser.add_argument("-o", default="-")
    args = parser.parse_args(argv)
    module = _read_module(args.input)
    _write_module(module, args.o, binary=False)
    return 0


_PASS_FACTORIES = {}


def _range_dump_pass():
    from .analysis.absint.engine import RangeDumpPass

    return RangeDumpPass()


def _pass_registry():
    if not _PASS_FACTORIES:
        from . import transforms
        from .sanalysis import StaticCheckSuite
        from .transforms import ipo
        from .transforms.reg2mem import DemoteRegisters
        from .transforms.safecode import BoundsCheckInsertion
        from .transforms.typeerase import TypeEraser

        _PASS_FACTORIES.update({
            "lint": StaticCheckSuite,
            "mem2reg": transforms.PromoteMem2Reg,
            "sroa": transforms.ScalarReplAggregates,
            "simplifycfg": transforms.SimplifyCFG,
            "dce": transforms.DeadCodeElimination,
            "adce": transforms.AggressiveDCE,
            "constprop": transforms.ConstantPropagation,
            "sccp": transforms.SCCP,
            "gvn": transforms.GVN,
            "instcombine": transforms.InstCombine,
            "reassociate": transforms.Reassociate,
            "licm": transforms.LICM,
            "tailrec": transforms.TailRecursionElimination,
            "reg2mem": DemoteRegisters,
            "inline": ipo.FunctionInlining,
            "dge": ipo.DeadGlobalElimination,
            "dae": ipo.DeadArgumentElimination,
            "ipcp": ipo.IPConstantPropagation,
            "internalize": ipo.Internalize,
            "prune-eh": ipo.PruneExceptionHandlers,
            "devirtualize": ipo.Devirtualize,
            "heap2stack": ipo.HeapToStackPromotion,
            "safecode": BoundsCheckInsertion,
            "typeerase": TypeEraser,
            "rangeopt": transforms.RangeOpt,
            "ranges": _range_dump_pass,
        })
    return _PASS_FACTORIES


def lc_opt(argv=None) -> int:
    """Run optimization passes over a module."""
    parser = argparse.ArgumentParser(
        prog="lc-opt", description="modular optimizer (the opt equivalent)"
    )
    parser.add_argument("input", nargs="?", default="-")
    parser.add_argument("-o", default="-")
    parser.add_argument("-c", action="store_true", dest="binary")
    parser.add_argument("-O", type=int, default=None, dest="level",
                        help="run the standard -ON pipeline")
    parser.add_argument("-p", "--passes", default="",
                        help=f"comma list from: {', '.join(sorted(_pass_registry()))}")
    parser.add_argument("-analyze", default=None, dest="analyze",
                        metavar="NAME",
                        help="print an analysis dump instead of "
                             "transforming (currently: ranges)")
    parser.add_argument("--verify-each", action="store_true",
                        help="run the IR verifier after every pass")
    parser.add_argument("-stats", action="store_true", dest="stats",
                        help="print per-pass statistics to stderr")
    parser.add_argument("-time-passes", action="store_true",
                        dest="time_passes",
                        help="print per-pass wall-clock timings to stderr")
    _add_fault_arguments(parser)
    args = parser.parse_args(argv)
    module = _read_module(args.input)
    if args.analyze is not None:
        if args.analyze != "ranges":
            parser.error(f"unknown analysis {args.analyze!r}")
        from .analysis.absint.engine import RangeDumpPass

        dump = RangeDumpPass(stream=sys.stdout)
        for function in module.defined_functions():
            dump.run_on_function(function)
        return 0
    policy = _make_fault_policy(args)
    managers = []
    # One shared timing sink across every manager this invocation
    # creates (ladder attempts included), so -time-passes emits a
    # single report in which each pass appears exactly once.
    from .transforms.passmanager import PassTimings

    timings = PassTimings()
    with _armed(args, parser):
        if args.level is not None:
            from .driver.pipelines import optimize_module as _optimize

            if policy is not None:
                # The full ladder: transactional attempts, -O fallback.
                _optimize(module, args.level, policy=policy,
                          timings=timings)
            else:
                from .driver.pipelines import standard_pipeline

                manager = standard_pipeline(args.level, args.verify_each,
                                            timings=timings)
                manager.run(module)
                managers.append(manager)
        if args.passes:
            if policy is not None:
                from .driver import TransactionalPassManager

                manager = TransactionalPassManager(policy, timings=timings)
            else:
                from .transforms import PassManager

                manager = PassManager(verify_each=args.verify_each,
                                      timings=timings)
            registry = _pass_registry()
            for name in args.passes.split(","):
                name = name.strip()
                if name not in registry:
                    parser.error(f"unknown pass {name!r}")
                manager.add(registry[name]())
            manager.run(module)
            managers.append(manager)
    verify_module(module)
    for report in (policy.crash_reports if policy is not None else ()):
        print(f"lc-opt: contained: {report.describe()}", file=sys.stderr)
    for manager in managers:
        for pass_obj in manager.passes:
            for diag in getattr(pass_obj, "diagnostics", ()):
                print(diag.render(args.input), file=sys.stderr)
    if args.stats:
        for manager in managers:
            _print_stats(manager.statistics())
        if policy is not None:
            _print_stats({policy.name: policy.statistics()})
    if args.time_passes:
        report = timings.report()
        if report:
            print("===" + "-" * 18 + " pass timings " + "-" * 18 + "===",
                  file=sys.stderr)
            print(report, file=sys.stderr)
    _write_module(module, args.o, args.binary)
    return 0


def _print_stats(stats_by_name: dict) -> None:
    """LLVM `-stats` style report: one line per (source, counter)."""
    lines = []
    for name, counters in stats_by_name.items():
        for counter, value in sorted(counters.items()):
            lines.append(f"{value:8d} {name:<18s} {counter}")
    if lines:
        print("===" + "-" * 20 + " statistics " + "-" * 20 + "===",
              file=sys.stderr)
        for line in lines:
            print(line, file=sys.stderr)


def lc_link(argv=None) -> int:
    """Link modules; optionally run the link-time optimizer."""
    parser = argparse.ArgumentParser(
        prog="lc-link", description="module linker (the gccld equivalent)"
    )
    parser.add_argument("inputs", nargs="+")
    parser.add_argument("-o", default="-")
    parser.add_argument("-c", action="store_true", dest="binary")
    parser.add_argument("--lto", action="store_true",
                        help="internalize + interprocedural optimization")
    args = parser.parse_args(argv)
    modules = [_read_module(path) for path in args.inputs]
    linked = link_modules(modules, "linked")
    if args.lto:
        link_time_optimize(linked, 2)
    verify_module(linked)
    _write_module(linked, args.o, args.binary)
    return 0


def lc_run(argv=None) -> int:
    """Execute a module in the execution engine."""
    parser = argparse.ArgumentParser(
        prog="lc-run", description="execution engine (the lli equivalent)"
    )
    parser.add_argument("input")
    parser.add_argument("args", nargs="*", type=int,
                        help="integer arguments for the entry function")
    parser.add_argument("--entry", default="main")
    parser.add_argument("--step-limit", type=int, default=50_000_000)
    parser.add_argument("--stats", action="store_true",
                        help="print step/memory statistics to stderr")
    parser.add_argument("--jit-traces", action="store_true",
                        dest="jit_traces",
                        help="compile hot paths to guarded traces "
                        "(the trace-JIT tier; see docs/EXECUTION.md)")
    parser.add_argument("--trace-threshold", type=int, default=50,
                        help="block entries before a trace is recorded")
    args = parser.parse_args(argv)
    module = _read_module(args.input)
    interpreter = Interpreter(module, step_limit=args.step_limit)
    manager = None
    if args.jit_traces:
        from .execution import TraceManager

        manager = TraceManager(hot_threshold=args.trace_threshold)
        manager.attach(interpreter)
    result = interpreter.run(args.entry, args.args)
    sys.stdout.write("".join(interpreter.output))
    if args.stats:
        print(f"steps: {interpreter.steps}", file=sys.stderr)
        print(f"heap bytes live: {interpreter.memory.heap_bytes()}",
              file=sys.stderr)
        if manager is not None:
            _print_stats({manager.name: manager.statistics()})
    return int(result) & 0xFF if isinstance(result, int) else 0


def _load_for_lint(path: str):
    """Load one lint input: LC source (by extension), bytecode (by
    magic), or textual IR.  Returns (module, display_name)."""
    if path != "-" and path.endswith(".lc"):
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        return compile_source(_read_text(path), name), path
    if path == "-":
        data = sys.stdin.buffer.read()
    else:
        with open(path, "rb") as handle:
            data = handle.read()
    if data[:4] == b"llvm":
        return read_bytecode(data), path
    text = data.decode("utf-8")
    try:
        return parse_module(text), path
    except Exception:
        # Not textual IR; last resort: treat it as LC source.
        return compile_source(text, "stdin" if path == "-" else path), path


def lc_lint(argv=None) -> int:
    """Run the static checker suite.

    Exit codes: 0 = no findings, 1 = findings (errors, or warnings
    under ``-Werror``), 2 = usage or internal error.
    """
    from .sanalysis import CHECKERS, check_cross_module, run_checkers
    from .sanalysis.ipa_checkers import IPA_CHECKERS

    parser = argparse.ArgumentParser(
        prog="lc-lint",
        description="IR-level static checker suite (see docs/ANALYSIS.md)",
    )
    parser.add_argument("inputs", nargs="*",
                        help="LC source (.lc), textual IR, or bytecode")
    parser.add_argument("--checks", default="",
                        help=f"comma list from: {', '.join(sorted(CHECKERS))}"
                        f" (whole-program adds: "
                        f"{', '.join(sorted(IPA_CHECKERS))})")
    parser.add_argument("--list-checks", action="store_true",
                        help="print the checker catalogue and exit")
    parser.add_argument("-O", type=int, default=0, dest="level",
                        help="optimize before linting (0 = lint raw IR)")
    parser.add_argument("--lto", action="store_true",
                        help="link all inputs and lint the merged program")
    parser.add_argument("--whole-program", action="store_true",
                        dest="whole_program",
                        help="interprocedural summary-based checking "
                        "across all inputs (link-time lint)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text",
                        help="json: one machine-readable record per line")
    parser.add_argument("--Werror", "-Werror", action="store_true",
                        dest="werror",
                        help="treat warnings as errors for the exit code")
    parser.add_argument("--max-errors", type=int, default=0,
                        metavar="N",
                        help="stop printing after N errors (0 = no limit)")
    parser.add_argument("--cache-dir", default=None,
                        help="bytecode/summary cache for .lc inputs "
                        "(whole-program mode): unchanged files are "
                        "neither recompiled nor resummarized")
    parser.add_argument("--jobs", type=int, default=1,
                        help="concurrent TU compilations (with --cache-dir)")
    parser.add_argument("-stats", "--stats", action="store_true",
                        dest="stats",
                        help="print analysis/cache counters to stderr")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    if args.list_checks:
        for name in sorted(CHECKERS):
            print(f"{name:16s} {CHECKERS[name].description}")
        for name in sorted(IPA_CHECKERS):
            print(f"{name:20s} {IPA_CHECKERS[name].description} "
                  "[--whole-program]")
        return 0
    if not args.inputs:
        parser.error("no inputs")

    checks = None
    ipa_checks = None
    if args.checks:
        names = [name.strip() for name in args.checks.split(",")]
        for name in names:
            if name not in CHECKERS and name not in IPA_CHECKERS:
                parser.error(f"unknown checker {name!r}")
            if name in IPA_CHECKERS and not (args.whole_program
                                             or name in CHECKERS):
                parser.error(f"checker {name!r} needs --whole-program")
        checks = [n for n in names if n in CHECKERS]
        ipa_checks = [n for n in names if n in IPA_CHECKERS]
        if args.whole_program and "gep-bounds" in names \
                and "gep-bounds" not in ipa_checks:
            ipa_checks.append("gep-bounds")

    try:
        return _run_lint(args, checks, ipa_checks)
    except SystemExit:
        raise
    except Exception as exc:  # noqa: BLE001 - exit-code contract
        print(f"lc-lint: internal error: {exc}", file=sys.stderr)
        return 2


def _run_lint(args, checks, ipa_checks) -> int:
    from .sanalysis import (
        check_cross_module, dedupe, run_checkers, run_whole_program,
        stable_order,
    )
    from .sanalysis.diagnostics import Severity

    try:
        loaded = [_load_for_lint(path) for path in args.inputs]
    except OSError as exc:
        print(f"lc-lint: {exc}", file=sys.stderr)
        return 2
    diagnostics = []
    stats: dict = {}
    for module, display in loaded:
        if args.level:
            optimize_module(module, args.level)
        if not args.whole_program or checks is None or checks:
            for diag in run_checkers(module, checks):
                if diag.file is None:
                    diag.file = display
                diagnostics.append(diag)
    if len(loaded) > 1:
        cross = check_cross_module([module for module, _ in loaded])
        for diag in cross:
            if diag.file is None:
                diag.file = "<link>"
            diagnostics.append(diag)
        # Linking would hard-fail on exactly the conflicts just reported.
        if args.lto and not any(d.is_error for d in cross):
            linked = link_modules([module for module, _ in loaded], "program")
            link_time_optimize(linked, max(args.level, 1))
            for diag in run_checkers(linked, checks):
                if diag.file is None:
                    diag.file = "<program>"
                diagnostics.append(diag)
    if args.whole_program:
        if args.cache_dir is not None and \
                all(p.endswith(".lc") for p in args.inputs):
            from .driver.pipelines import lint_whole_program

            cache = BytecodeCache(args.cache_dir)
            result = lint_whole_program(
                [_read_text(path) for path in args.inputs],
                filenames=list(args.inputs), level=args.level,
                checks=ipa_checks, cache=cache, jobs=args.jobs)
            stats[cache.name] = cache.statistics()
        else:
            result = run_whole_program(
                [(display, module) for module, display in loaded],
                ipa_checks)
        diagnostics.extend(result.diagnostics)
        stats["lint-wp"] = result.statistics()
    diagnostics = stable_order(dedupe(diagnostics))

    errors = warnings = 0
    truncated = False
    for diag in diagnostics:
        if diag.is_error:
            errors += 1
        elif diag.severity == Severity.WARNING:
            warnings += 1
        if truncated:
            continue
        if args.format == "json":
            print(json.dumps(diag.to_dict(), sort_keys=True))
        else:
            print(diag.render())
        if args.max_errors and diag.is_error and errors >= args.max_errors:
            truncated = True
    if truncated and args.format == "text":
        print(f"lc-lint: too many errors; stopping after "
              f"{args.max_errors}", file=sys.stderr)
    if args.stats:
        _print_stats(stats)
    if not args.quiet and args.format == "text":
        print(f"lc-lint: {errors} error(s), {warnings} warning(s), "
              f"{len(diagnostics) - errors - warnings} note(s)",
              file=sys.stderr)
    failed = errors > 0 or (args.werror and warnings > 0)
    return 1 if failed else 0


def lc_llc(argv=None) -> int:
    """Generate 'native' code: assembly listing or size report."""
    parser = argparse.ArgumentParser(
        prog="lc-llc", description="native code generator (the llc equivalent)"
    )
    parser.add_argument("input", nargs="?", default="-")
    parser.add_argument("-o", default="-")
    parser.add_argument("--target", choices=("x86", "sparc"), default="x86")
    parser.add_argument("--emit", choices=("asm", "size", "image"),
                        default="asm")
    args = parser.parse_args(argv)
    module = _read_module(args.input)
    target = X86 if args.target == "x86" else SPARC
    image = compile_for_size(module, target)
    if args.emit == "image":
        data = image.to_bytes()
        if args.o == "-":
            sys.stdout.buffer.write(data)
        else:
            with open(args.o, "wb") as handle:
                handle.write(data)
        return 0
    if args.emit == "size":
        text = (f"target: {target.name}\ncode: {image.code_size}\n"
                f"data: {len(image.data)}\nbss: {image.bss_size}\n"
                f"total: {image.total_size}\n")
    else:
        text = "".join(
            print_machine_function(f.machine_fn) + "\n"
            for f in image.functions
        )
    if args.o == "-":
        sys.stdout.write(text)
    else:
        with open(args.o, "w") as handle:
            handle.write(text)
    return 0


def lc_fuzz(argv=None) -> int:
    """Differential fuzzing over representations, levels, and targets."""
    parser = argparse.ArgumentParser(
        prog="lc-fuzz",
        description="differential fuzzer: generated LC programs through "
                    "every oracle pair (interp -O0 vs -O1/-O2, text and "
                    "bytecode round-trips, x86/sparc simulated backends)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--count", type=int, default=50,
                        help="number of programs (program i uses seed+i)")
    parser.add_argument("--size", type=int, default=3,
                        help="helper functions per program")
    parser.add_argument("--step-limit", type=int, default=5_000_000)
    parser.add_argument("--no-roundtrips", action="store_true",
                        help="skip text/bytecode round-trip oracles")
    parser.add_argument("--translation-validate", action="store_true",
                        dest="translation_validate",
                        help="run each optimized compile under the "
                             "per-pass refinement validator as a third "
                             "oracle column: validation failures are "
                             "tvalid-O<N> findings, end-to-end "
                             "divergences the validator missed are "
                             "tvalid-miss-O<N>")
    parser.add_argument("--emit-source", metavar="SEED", type=int,
                        help="print the program for one seed and exit")
    parser.add_argument("--save-failing", metavar="DIR",
                        help="write each divergent program to DIR/<seed>.lc")
    parser.add_argument("--fault-matrix", action="store_true",
                        dest="fault_matrix",
                        help="run the single-fault injection matrix: every "
                             "registered site armed once against "
                             "fixed-seed programs (docs/ROBUSTNESS.md)")
    parser.add_argument("--list-fault-sites", action="store_true",
                        dest="list_fault_sites",
                        help="print the fault-site catalogue and exit")
    parser.add_argument("--fault-inject", default=None, dest="fault_inject",
                        metavar="SITE:SEED",
                        help="restrict --fault-matrix to one site "
                             "(implies --fault-matrix)")
    parser.add_argument("--crash-dir", default=None, dest="crash_dir",
                        help="keep crash reports from --fault-matrix here")
    parser.add_argument("--jit-traces", action="store_true",
                        dest="jit_traces",
                        help="add a trace-JIT oracle column: each "
                             "program also runs under the trace tier "
                             "(low hot threshold) and must match the "
                             "-O0 interpreter exactly")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    from .fuzz import HarnessConfig, fuzz
    from .fuzz.generator import generate_program

    if args.list_fault_sites:
        from .fuzz import faultinject

        for site, description in sorted(
                faultinject.registered_sites().items()):
            print(f"{site:24s} {description}")
        return 0
    if args.fault_matrix or args.fault_inject:
        return _run_fault_matrix_cli(args, parser)
    if args.emit_source is not None:
        sys.stdout.write(generate_program(args.emit_source, args.size))
        return 0
    config = HarnessConfig(step_limit=args.step_limit,
                           check_roundtrips=not args.no_roundtrips,
                           translation_validate=args.translation_validate,
                           jit_traces=args.jit_traces)

    def on_program(seed, result):
        if args.quiet:
            return
        if result.error:
            print(f"seed {seed}: ERROR {result.error}", file=sys.stderr)
        for divergence in result.divergences:
            print(f"seed {seed}: {divergence.describe()}", file=sys.stderr)

    report = fuzz(args.seed, args.count, args.size, config, on_program)
    if args.save_failing and report.divergent:
        import os

        os.makedirs(args.save_failing, exist_ok=True)
        for seed, _ in report.divergent:
            path = os.path.join(args.save_failing, f"{seed}.lc")
            with open(path, "w") as handle:
                handle.write(generate_program(seed, args.size))
    if not args.quiet:
        print(f"lc-fuzz: {report.checked} programs, "
              f"{report.skipped} skipped (step limit), "
              f"{len(report.divergent)} divergent", file=sys.stderr)
    return 1 if report.divergent else 0


def _run_fault_matrix_cli(args, parser) -> int:
    """lc-fuzz --fault-matrix: the single-fault robustness sweep."""
    from .fuzz import faultinject

    sites = None
    fault_seed = 12345
    if args.fault_inject:
        site, seed = _parse_fault_spec(args.fault_inject, parser)
        if site not in faultinject.registered_sites():
            parser.error(f"unknown fault site {site!r} "
                         "(see --list-fault-sites)")
        sites = [site]
        if seed:
            fault_seed = seed
    report = faultinject.run_fault_matrix(
        size=args.size, sites=sites, fault_seed=fault_seed,
        step_limit=args.step_limit, crash_dir=args.crash_dir)
    if not args.quiet:
        for outcome in report.outcomes:
            print(outcome.describe(), file=sys.stderr)
    print(f"lc-fuzz: fault matrix: {len(report.outcomes)} cells, "
          f"{len(report.failures)} failing", file=sys.stderr)
    return 0 if report.clean else 1


def lc_bugpoint(argv=None) -> int:
    """Bisect the guilty pass and reduce a failing program."""
    parser = argparse.ArgumentParser(
        prog="lc-bugpoint",
        description="miscompile debugger: names the pass that introduces "
                    "a divergence and delta-reduces the program to a "
                    "minimal verifier-clean reproducer",
    )
    parser.add_argument("input", help="failing LC source (or - for stdin)")
    parser.add_argument("--oracle", default=None,
                        help="oracle to debug, e.g. interp-O2 or "
                             "sim-x86-O0 (default: first divergent one)")
    parser.add_argument("-o", default="-",
                        help="write the reduced reproducer (.ll) here")
    parser.add_argument("--step-limit", type=int, default=5_000_000)
    parser.add_argument("--reduce-step-limit", type=int, default=100_000)
    args = parser.parse_args(argv)

    from .fuzz import bugpoint_source, check_program

    source = _read_text(args.input)
    oracle = args.oracle
    if oracle is None:
        result = check_program(source)
        if result.error:
            print(f"lc-bugpoint: program does not compile: {result.error}",
                  file=sys.stderr)
            return 2
        if not result.divergences:
            print("lc-bugpoint: no divergence found; nothing to debug",
                  file=sys.stderr)
            return 2
        oracle = result.divergences[0].oracle
        print(f"lc-bugpoint: debugging oracle {oracle}", file=sys.stderr)
    try:
        outcome = bugpoint_source(source, oracle, args.step_limit,
                                  args.reduce_step_limit)
    except ValueError as error:
        print(f"lc-bugpoint: {error}", file=sys.stderr)
        return 2
    if outcome.guilty_pass is not None:
        print(f"guilty pass: {outcome.guilty_pass}", file=sys.stderr)
    else:
        print("guilty pass: (none — diverges without optimization)",
              file=sys.stderr)
    print(f"reduced to {outcome.instruction_count} instructions",
          file=sys.stderr)
    if args.o == "-":
        sys.stdout.write(outcome.reduced_text)
    else:
        with open(args.o, "w") as handle:
            handle.write(outcome.reduced_text)
    return 0


def lc_synth(argv=None) -> int:
    """Synthesize and exhaustively verify peephole rewrite rules."""
    parser = argparse.ArgumentParser(
        prog="lc-synth",
        description="peephole superoptimizer: enumerate 2-3 instruction "
                    "rewrite candidates, verify each exhaustively at "
                    "narrow bitwidths (sampled at wide ones), dedupe "
                    "against instcombine's hand-written folds, and emit "
                    "the survivors as generated instcombine rules",
    )
    parser.add_argument("--max-rules", type=int, default=40,
                        help="cap on enumerated (non-template) rules")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write the generated rules module here "
                             "(e.g. src/repro/transforms/"
                             "instcombine_generated.py); default: "
                             "print the rule table only")
    parser.add_argument("--self-check", action="store_true",
                        dest="self_check",
                        help="re-verify the checked-in generated rules "
                             "instead of synthesizing; exit 1 on any "
                             "problem (the CI tvalid-gate mode)")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    from .tvalid import synth

    if args.self_check:
        problems = synth.self_check()
        for problem in problems:
            print(f"lc-synth: self-check: {problem}", file=sys.stderr)
        if not args.quiet:
            from .transforms.peephole import load_generated_rules

            count = len(load_generated_rules())
            status = "FAILED" if problems else "ok"
            print(f"lc-synth: self-check {status}: {count} rules, "
                  f"{len(problems)} problem(s)", file=sys.stderr)
        return 1 if problems else 0

    def progress(lhs, rhs, applies):
        if not args.quiet:
            from .transforms.peephole import tree_name

            print(f"lc-synth: verified [{applies}] "
                  f"{tree_name(lhs)} -> {tree_name(rhs)}", file=sys.stderr)

    report = synth.synthesize(max_rules=args.max_rules, progress=progress)
    for problem in report.cast_problems:
        print(f"lc-synth: cast audit: {problem}", file=sys.stderr)
    if not args.quiet:
        print(f"lc-synth: {report.enumerated} candidates enumerated, "
              f"{report.fingerprint_hits} fingerprint hits, "
              f"{report.verified} verified, "
              f"{report.deduplicated} already folded by hand, "
              f"{len(report.rules)} rules emitted", file=sys.stderr)
    text = synth.emit_module(report.rules)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
    else:
        for rule in report.rules:
            print(f"[{rule.applies:4s}] {rule.name}")
    return 1 if report.cast_problems else 0


def lc_absint(argv=None) -> int:
    """Verified abstract interpretation: self-check and range dumps."""
    parser = argparse.ArgumentParser(
        prog="lc-absint",
        description="value-range + known-bits abstract interpretation: "
                    "machine-check every abstract transformer against "
                    "the concrete constfold semantics (--self-check), "
                    "or dump per-value facts for a module",
    )
    parser.add_argument("input", nargs="?", default=None,
                        help="module to analyze and dump (.ll/.bc or - "
                             "for stdin)")
    parser.add_argument("--self-check", action="store_true",
                        dest="self_check",
                        help="run the soundness ladder over every "
                             "transformer; exit 1 on any violation "
                             "(the CI absint-gate mode)")
    parser.add_argument("--fast", action="store_true",
                        help="with --self-check: the narrow fast ladder "
                             "(3-bit exhaustive) instead of the full one")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    if args.self_check:
        from .analysis.absint import run_self_check

        log = None if args.quiet else (
            lambda message: print(f"lc-absint: {message}", file=sys.stderr))
        problems = run_self_check(full=not args.fast, log=log)
        for problem in problems:
            print(f"lc-absint: UNSOUND: {problem}", file=sys.stderr)
        if not args.quiet:
            status = "FAILED" if problems else "ok"
            print(f"lc-absint: self-check {status} "
                  f"({len(problems)} violation(s))", file=sys.stderr)
        return 1 if problems else 0

    if args.input is None:
        parser.error("an input module is required without --self-check")
    from .analysis.absint.engine import RangeDumpPass

    module = _read_module(args.input)
    dump = RangeDumpPass(stream=sys.stdout)
    for function in module.defined_functions():
        dump.run_on_function(function)
    return 0


def lc_bench(argv=None) -> int:
    """Benchmark the compiler's own throughput, phase by phase.

    Exit codes: 0 = run complete (and within tolerance when a baseline
    was given), 1 = regression against the baseline, 2 = usage error.
    """
    parser = argparse.ArgumentParser(
        prog="lc-bench",
        description="compiler-throughput benchmark: lex/parse, codegen, "
                    "per-pass optimization, verify, bytecode I/O, cache, "
                    "link, and the transactional snapshot machinery, "
                    "median-of-N over the benchmark suite; emits a "
                    "schema-versioned BENCH_<date>.json (docs/BENCH.md)",
    )
    parser.add_argument("--programs", default=None,
                        help="comma list of benchsuite programs "
                             "(default: the whole suite)")
    parser.add_argument("--examples", default=None, metavar="DIR",
                        help="also bench .lc programs under DIR (a "
                             "subdirectory with several .lc files is one "
                             "multi-TU link workload)")
    parser.add_argument("-O", type=int, default=2, dest="level",
                        help="optimization level for the pipeline phases")
    parser.add_argument("--repeat", type=int, default=5,
                        help="timed runs per phase (median is reported)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="throwaway runs before timing")
    parser.add_argument("--no-transactional", action="store_true",
                        dest="no_transactional",
                        help="skip the transact.O<N> phase")
    parser.add_argument("--jit-programs", default=None,
                        dest="jit_programs", metavar="LIST",
                        help="comma list of benchsuite programs for the "
                             "execution-tier phases (exec.interp vs the "
                             "warm trace-JIT jit.trace); 'none' skips "
                             "them (default: gzip,mesa,bzip2)")
    parser.add_argument("-o", default=None,
                        help="report path (default BENCH_<date>.json; "
                             "'-' prints to stdout only)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="compare against this baseline report and "
                             "exit 1 on regression (the CI bench-gate)")
    parser.add_argument("--max-ratio", type=float, default=None,
                        help="tolerance multiplier for --baseline "
                             "(default 2.0)")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    from .bench import BenchConfig, compare_runs, discover_examples
    from .bench import run_bench, write_report
    from .bench.compare import DEFAULT_MAX_RATIO, load_report
    from .benchsuite import benchmark_names

    config = BenchConfig(level=args.level, warmup=args.warmup,
                         repeat=args.repeat,
                         transactional=not args.no_transactional)
    if args.programs:
        names = [name.strip() for name in args.programs.split(",")]
        known = set(benchmark_names())
        for name in names:
            if name not in known:
                parser.error(f"unknown benchsuite program {name!r}")
        config.programs = names
    if args.jit_programs is not None:
        if args.jit_programs.strip().lower() == "none":
            config.jit_programs = []
        else:
            names = [name.strip() for name in args.jit_programs.split(",")]
            known = set(benchmark_names())
            for name in names:
                if name not in known:
                    parser.error(f"unknown benchsuite program {name!r}")
            config.jit_programs = names
    if args.examples:
        config.extra_programs = discover_examples(args.examples)

    def progress(name):
        if not args.quiet:
            print(f"lc-bench: {name}", file=sys.stderr)

    report = run_bench(config, progress)
    if args.o == "-":
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        path = write_report(report, args.o)
        if not args.quiet:
            print(f"lc-bench: wrote {path}", file=sys.stderr)
    if not args.quiet:
        for phase, entry in sorted(report["phases"].items()):
            print(f"lc-bench: {phase:20s} {entry['seconds']:8.4f}s",
                  file=sys.stderr)

    if args.baseline is None:
        return 0
    baseline = load_report(args.baseline)
    if baseline is None:
        print(f"lc-bench: cannot read baseline {args.baseline!r}",
              file=sys.stderr)
        return 2
    max_ratio = args.max_ratio if args.max_ratio else DEFAULT_MAX_RATIO
    regressions, notes = compare_runs(report, baseline, max_ratio=max_ratio)
    if not args.quiet:
        for note in notes:
            print(f"lc-bench: {note}", file=sys.stderr)
    for regression in regressions:
        print(f"lc-bench: REGRESSION: {regression}", file=sys.stderr)
    if not args.quiet:
        status = "FAILED" if regressions else "ok"
        print(f"lc-bench: gate {status} ({len(regressions)} regression(s))",
              file=sys.stderr)
    return 1 if regressions else 0


def lc_serverd(argv=None) -> int:
    """Run the persistent compilation daemon (docs/SERVING.md)."""
    parser = argparse.ArgumentParser(
        prog="lc-serverd",
        description="crash-only persistent compilation service: a "
                    "supervised worker pool behind a length-framed JSON "
                    "socket, with deadlines, bounded admission, backoff "
                    "retries, and graceful degradation under overload",
    )
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help="Unix-domain socket to listen on")
    parser.add_argument("--host", default=None,
                        help="TCP listen host (with --port; default "
                             "127.0.0.1 when --socket is not given)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP listen port (0 = ephemeral, printed "
                             "on startup)")
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes (the crash domain)")
    parser.add_argument("--queue-depth", type=int, default=32,
                        help="bounded admission queue capacity")
    parser.add_argument("--high-water", type=int, default=None,
                        help="queue depth at which new requests are shed "
                             "with BUSY (default: --queue-depth)")
    parser.add_argument("--degrade-water", type=int, default=None,
                        help="queue depth at which sustained pressure "
                             "starts lowering compile levels "
                             "(default: --queue-depth / 2)")
    parser.add_argument("--server-retries", type=int, default=1,
                        help="crash retries per request on a fresh worker")
    parser.add_argument("--cache-dir", default=None,
                        help="shared on-disk bytecode cache directory")
    parser.add_argument("--cache-max-bytes", type=int, default=None,
                        help="LRU-evict the cache past this size")
    parser.add_argument("--no-idle-reopt", action="store_true",
                        dest="no_idle_reopt",
                        help="disable idle-time reoptimization of "
                             "degraded compiles (paper section 2.4)")
    parser.add_argument("--drain-timeout", type=float, default=30.0,
                        help="seconds to finish in-flight work on shutdown")
    parser.add_argument("--fault-inject", default=None, dest="fault_inject",
                        metavar="SITE:SEED",
                        help="arm one seeded single-shot fault in the "
                             "daemon (e.g. server.worker-crash:7); it "
                             "fires on the first request that reaches "
                             "the site")
    parser.add_argument("-stats", "--stats", action="store_true",
                        dest="stats",
                        help="print serverd.* counters on shutdown")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)
    if args.socket and args.host:
        parser.error("--socket and --host are mutually exclusive")
    if not args.socket and not args.host and not args.port:
        parser.error("give a front door: --socket PATH, or "
                     "--host/--port for TCP")

    import signal

    from .serve import Server, ServerConfig

    if args.fault_inject:
        from .fuzz import faultinject

        site, seed = _parse_fault_spec(args.fault_inject, parser)
        if site not in faultinject.registered_sites():
            parser.error(f"unknown fault site {site!r} "
                         "(see lc-fuzz --list-fault-sites)")
        faultinject.arm(site, seed)
    server = Server(ServerConfig(
        socket_path=args.socket, host=args.host, port=args.port,
        workers=args.workers, queue_depth=args.queue_depth,
        high_water=args.high_water, degrade_water=args.degrade_water,
        server_retries=args.server_retries, cache_dir=args.cache_dir,
        cache_max_bytes=args.cache_max_bytes,
        idle_reopt=not args.no_idle_reopt,
        drain_timeout=args.drain_timeout))
    if not args.quiet:
        address = server.address
        if isinstance(address, str):
            where = address
        else:
            where = f"{address[0]}:{address[1]}"
        print(f"lc-serverd: pid {os.getpid()} listening on {where}",
              file=sys.stderr)

    def on_signal(signum, frame):
        if not args.quiet:
            print(f"lc-serverd: signal {signum}: draining",
                  file=sys.stderr)
        server.request_shutdown()

    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    server.wait()
    if args.stats:
        _print_stats({"serverd": server.statistics()})
    if not args.quiet:
        print("lc-serverd: drained, bye", file=sys.stderr)
    return 0


def _parse_connect(value: str, parser):
    """``PATH`` (Unix socket) or ``HOST:PORT`` (TCP)."""
    host, _, port = value.rpartition(":")
    if host and port.isdigit() and "/" not in value:
        return (host, int(port))
    return value


def lc_client(argv=None) -> int:
    """Talk to a running lc-serverd.

    Exit codes: 0 = success, 1 = structured error from the daemon
    (BUSY past the retry budget, TIMEOUT, a failed request), 2 = usage
    or transport error.
    """
    parser = argparse.ArgumentParser(
        prog="lc-client",
        description="client for the lc-serverd compilation service: "
                    "compile / lint / reoptimize / triage with a "
                    "deadline, plus ping / stats / shutdown",
    )
    parser.add_argument("op", choices=("ping", "stats", "shutdown",
                                       "compile", "lint", "reoptimize",
                                       "triage"))
    parser.add_argument("inputs", nargs="*",
                        help="LC source files (compile/lint/reoptimize)")
    parser.add_argument("--connect", required=True, metavar="ADDR",
                        help="daemon address: a Unix socket path, or "
                             "HOST:PORT")
    parser.add_argument("-O", type=int, default=2, dest="level",
                        help="requested optimization level (the daemon "
                             "may degrade it under load; the response "
                             "says what it really used)")
    parser.add_argument("--name", default="program")
    parser.add_argument("-o", default=None,
                        help="write compile/reoptimize bytecode here "
                             "(- = stdout)")
    parser.add_argument("--deadline-ms", type=int, default=None,
                        dest="deadline_ms",
                        help="request deadline (default: per-op)")
    parser.add_argument("--retry-budget", type=int, default=8,
                        dest="retry_budget",
                        help="total BUSY/crash retries this client may "
                             "spend before surfacing errors")
    parser.add_argument("--run", action="append", dest="runs",
                        metavar="FN[:ARG,...]",
                        help="reoptimize: a profiled run, e.g. "
                             "--run main:3,4 (repeatable)")
    parser.add_argument("--seed", type=int, default=None,
                        help="triage: fuzz-generator seed")
    parser.add_argument("--source", default=None,
                        help="triage: LC source file instead of a seed")
    parser.add_argument("--json", action="store_true",
                        help="print the full result record as JSON")
    parser.add_argument("-q", "--quiet", action="store_true")
    args = parser.parse_args(argv)

    from .serve import ServeClient, ServeRequestError, ServeTransportError

    address = _parse_connect(args.connect, parser)
    runs = None
    if args.runs:
        runs = []
        for spec in args.runs:
            function, _, tail = spec.partition(":")
            run_args = [int(a) for a in tail.split(",") if a.strip()]
            runs.append({"function": function or "main",
                         "args": run_args})
    try:
        with ServeClient(address, retry_budget=args.retry_budget) as client:
            if args.op == "ping":
                result = client.ping(args.deadline_ms)
            elif args.op == "stats":
                result = client.stats(args.deadline_ms)
            elif args.op == "shutdown":
                result = client.shutdown()
            elif args.op == "triage":
                source = _read_text(args.source) if args.source else None
                result = client.triage(seed=args.seed, source=source,
                                       deadline_ms=args.deadline_ms)
            else:
                if not args.inputs:
                    parser.error(f"{args.op} needs source files")
                sources = [_read_text(path) for path in args.inputs]
                if args.op == "compile":
                    result = client.compile(sources, name=args.name,
                                            level=args.level,
                                            deadline_ms=args.deadline_ms)
                elif args.op == "lint":
                    result = client.lint(sources, name=args.name,
                                         level=args.level,
                                         deadline_ms=args.deadline_ms)
                else:
                    result = client.reoptimize(
                        sources, name=args.name, level=args.level,
                        runs=runs, deadline_ms=args.deadline_ms)
    except ServeRequestError as error:
        print(f"lc-client: {error}", file=sys.stderr)
        return 1
    except (ServeTransportError, OSError) as error:
        print(f"lc-client: {error}", file=sys.stderr)
        return 2

    bytecode = result.pop("bytecode", None)
    if bytecode is not None and args.o:
        if args.o == "-":
            sys.stdout.buffer.write(bytecode)
        else:
            with open(args.o, "wb") as handle:
                handle.write(bytecode)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True, default=str))
    elif not args.quiet:
        if args.op == "stats":
            _print_stats({"serverd": result})
        elif args.op == "compile":
            print(f"lc-client: compiled at -O{result['level']} "
                  f"(requested -O{result['requested_level']}"
                  f"{', degraded' if result['degraded'] else ''}"
                  f"{'' if result['clean'] else ', contained faults'}), "
                  f"{len(bytecode or b'')} bytecode bytes",
                  file=sys.stderr)
        elif args.op == "lint":
            print(f"lc-client: {result['errors']} error(s), "
                  f"{result['warnings']} warning(s)", file=sys.stderr)
            for diag in result.get("diagnostics", []):
                print(diag, file=sys.stderr)
        else:
            print(f"lc-client: {args.op}: "
                  + json.dumps(result, sort_keys=True, default=str),
                  file=sys.stderr)
    if args.op == "lint":
        return 1 if result.get("errors") else 0
    return 0


_TOOLS = {
    "cc": lc_cc, "as": lc_as, "dis": lc_dis, "opt": lc_opt,
    "link": lc_link, "run": lc_run, "llc": lc_llc, "lint": lc_lint,
    "fuzz": lc_fuzz, "bugpoint": lc_bugpoint, "synth": lc_synth,
    "bench": lc_bench, "absint": lc_absint,
    "serverd": lc_serverd, "client": lc_client,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in _TOOLS:
        names = ", ".join(sorted(_TOOLS))
        print(f"usage: python -m repro.tools <tool> [args]\ntools: {names}",
              file=sys.stderr)
        return 2
    return _TOOLS[argv[0]](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
