"""Command-line tools, mirroring the LLVM 1.x tool suite.

| command   | LLVM equivalent | does |
|-----------|-----------------|------|
| lc-cc     | llvmgcc         | compile LC source to IR (text or bytecode) |
| lc-as     | llvm-as         | assemble textual IR into bytecode |
| lc-dis    | llvm-dis        | disassemble bytecode into textual IR |
| lc-opt    | opt             | run optimization passes over IR |
| lc-link   | llvm-link/gccld | link modules (+ link-time IPO with -lto) |
| lc-run    | lli             | execute a module in the execution engine |
| lc-llc    | llc             | "native" code generation (sizes + assembly) |

Each accepts ``-`` for stdin/stdout where that makes sense.  Installed
as console scripts; also callable as ``python -m repro.tools <tool>``.
"""

from __future__ import annotations

import argparse
import sys

from .backend import SPARC, X86, compile_for_size, print_machine_function
from .bitcode import read_bytecode, write_bytecode
from .core import parse_module, print_module, verify_module
from .core.module import Module
from .driver import compile_and_link, link_time_optimize, optimize_module
from .execution import Interpreter
from .frontend import compile_source
from .linker import link_modules


def _read_text(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r") as handle:
        return handle.read()


def _read_module(path: str) -> Module:
    """Load a module from textual IR or bytecode (sniffed by magic)."""
    if path == "-":
        data = sys.stdin.buffer.read()
    else:
        with open(path, "rb") as handle:
            data = handle.read()
    if data[:4] == b"llvm":
        return read_bytecode(data)
    return parse_module(data.decode("utf-8"))


def _write_module(module: Module, path: str, binary: bool) -> None:
    if binary:
        data = write_bytecode(module, strip_names=False)
        if path == "-":
            sys.stdout.buffer.write(data)
        else:
            with open(path, "wb") as handle:
                handle.write(data)
    else:
        text = print_module(module)
        if path == "-":
            sys.stdout.write(text)
        else:
            with open(path, "w") as handle:
                handle.write(text)


def lc_cc(argv=None) -> int:
    """Compile LC source to IR."""
    parser = argparse.ArgumentParser(
        prog="lc-cc", description="LC front-end (the llvmgcc equivalent)"
    )
    parser.add_argument("sources", nargs="+", help="LC source files")
    parser.add_argument("-o", default="-", help="output (default stdout)")
    parser.add_argument("-O", type=int, default=0, dest="level",
                        help="optimization level 0-3")
    parser.add_argument("--lto", action="store_true",
                        help="run link-time interprocedural optimization")
    parser.add_argument("-c", action="store_true", dest="binary",
                        help="emit bytecode instead of textual IR")
    args = parser.parse_args(argv)
    sources = [_read_text(path) for path in args.sources]
    if len(sources) == 1 and not args.lto:
        module = compile_source(sources[0], "module")
        optimize_module(module, args.level)
    else:
        module = compile_and_link(sources, "program", args.level, args.lto)
    verify_module(module)
    _write_module(module, args.o, args.binary)
    return 0


def lc_as(argv=None) -> int:
    """Assemble textual IR into bytecode."""
    parser = argparse.ArgumentParser(
        prog="lc-as", description="IR assembler (the llvm-as equivalent)"
    )
    parser.add_argument("input", nargs="?", default="-")
    parser.add_argument("-o", default="-")
    args = parser.parse_args(argv)
    module = parse_module(_read_text(args.input))
    verify_module(module)
    _write_module(module, args.o, binary=True)
    return 0


def lc_dis(argv=None) -> int:
    """Disassemble bytecode into textual IR."""
    parser = argparse.ArgumentParser(
        prog="lc-dis", description="IR disassembler (the llvm-dis equivalent)"
    )
    parser.add_argument("input", nargs="?", default="-")
    parser.add_argument("-o", default="-")
    args = parser.parse_args(argv)
    module = _read_module(args.input)
    _write_module(module, args.o, binary=False)
    return 0


_PASS_FACTORIES = {}


def _pass_registry():
    if not _PASS_FACTORIES:
        from . import transforms
        from .transforms import ipo
        from .transforms.reg2mem import DemoteRegisters
        from .transforms.safecode import BoundsCheckInsertion
        from .transforms.typeerase import TypeEraser

        _PASS_FACTORIES.update({
            "mem2reg": transforms.PromoteMem2Reg,
            "sroa": transforms.ScalarReplAggregates,
            "simplifycfg": transforms.SimplifyCFG,
            "dce": transforms.DeadCodeElimination,
            "adce": transforms.AggressiveDCE,
            "constprop": transforms.ConstantPropagation,
            "sccp": transforms.SCCP,
            "gvn": transforms.GVN,
            "instcombine": transforms.InstCombine,
            "reassociate": transforms.Reassociate,
            "licm": transforms.LICM,
            "tailrec": transforms.TailRecursionElimination,
            "reg2mem": DemoteRegisters,
            "inline": ipo.FunctionInlining,
            "dge": ipo.DeadGlobalElimination,
            "dae": ipo.DeadArgumentElimination,
            "ipcp": ipo.IPConstantPropagation,
            "internalize": ipo.Internalize,
            "prune-eh": ipo.PruneExceptionHandlers,
            "devirtualize": ipo.Devirtualize,
            "heap2stack": ipo.HeapToStackPromotion,
            "safecode": BoundsCheckInsertion,
            "typeerase": TypeEraser,
        })
    return _PASS_FACTORIES


def lc_opt(argv=None) -> int:
    """Run optimization passes over a module."""
    parser = argparse.ArgumentParser(
        prog="lc-opt", description="modular optimizer (the opt equivalent)"
    )
    parser.add_argument("input", nargs="?", default="-")
    parser.add_argument("-o", default="-")
    parser.add_argument("-c", action="store_true", dest="binary")
    parser.add_argument("-O", type=int, default=None, dest="level",
                        help="run the standard -ON pipeline")
    parser.add_argument("-p", "--passes", default="",
                        help=f"comma list from: {', '.join(sorted(_pass_registry()))}")
    parser.add_argument("--verify-each", action="store_true")
    args = parser.parse_args(argv)
    module = _read_module(args.input)
    if args.level is not None:
        optimize_module(module, args.level, args.verify_each)
    if args.passes:
        from .transforms import PassManager

        manager = PassManager(verify_each=args.verify_each)
        registry = _pass_registry()
        for name in args.passes.split(","):
            name = name.strip()
            if name not in registry:
                parser.error(f"unknown pass {name!r}")
            manager.add(registry[name]())
        manager.run(module)
    verify_module(module)
    _write_module(module, args.o, args.binary)
    return 0


def lc_link(argv=None) -> int:
    """Link modules; optionally run the link-time optimizer."""
    parser = argparse.ArgumentParser(
        prog="lc-link", description="module linker (the gccld equivalent)"
    )
    parser.add_argument("inputs", nargs="+")
    parser.add_argument("-o", default="-")
    parser.add_argument("-c", action="store_true", dest="binary")
    parser.add_argument("--lto", action="store_true",
                        help="internalize + interprocedural optimization")
    args = parser.parse_args(argv)
    modules = [_read_module(path) for path in args.inputs]
    linked = link_modules(modules, "linked")
    if args.lto:
        link_time_optimize(linked, 2)
    verify_module(linked)
    _write_module(linked, args.o, args.binary)
    return 0


def lc_run(argv=None) -> int:
    """Execute a module in the execution engine."""
    parser = argparse.ArgumentParser(
        prog="lc-run", description="execution engine (the lli equivalent)"
    )
    parser.add_argument("input")
    parser.add_argument("args", nargs="*", type=int,
                        help="integer arguments for the entry function")
    parser.add_argument("--entry", default="main")
    parser.add_argument("--step-limit", type=int, default=50_000_000)
    parser.add_argument("--stats", action="store_true",
                        help="print step/memory statistics to stderr")
    args = parser.parse_args(argv)
    module = _read_module(args.input)
    interpreter = Interpreter(module, step_limit=args.step_limit)
    result = interpreter.run(args.entry, args.args)
    sys.stdout.write("".join(interpreter.output))
    if args.stats:
        print(f"steps: {interpreter.steps}", file=sys.stderr)
        print(f"heap bytes live: {interpreter.memory.heap_bytes()}",
              file=sys.stderr)
    return int(result) & 0xFF if isinstance(result, int) else 0


def lc_llc(argv=None) -> int:
    """Generate 'native' code: assembly listing or size report."""
    parser = argparse.ArgumentParser(
        prog="lc-llc", description="native code generator (the llc equivalent)"
    )
    parser.add_argument("input", nargs="?", default="-")
    parser.add_argument("-o", default="-")
    parser.add_argument("--target", choices=("x86", "sparc"), default="x86")
    parser.add_argument("--emit", choices=("asm", "size", "image"),
                        default="asm")
    args = parser.parse_args(argv)
    module = _read_module(args.input)
    target = X86 if args.target == "x86" else SPARC
    image = compile_for_size(module, target)
    if args.emit == "image":
        data = image.to_bytes()
        if args.o == "-":
            sys.stdout.buffer.write(data)
        else:
            with open(args.o, "wb") as handle:
                handle.write(data)
        return 0
    if args.emit == "size":
        text = (f"target: {target.name}\ncode: {image.code_size}\n"
                f"data: {len(image.data)}\nbss: {image.bss_size}\n"
                f"total: {image.total_size}\n")
    else:
        text = "".join(
            print_machine_function(f.machine_fn) + "\n"
            for f in image.functions
        )
    if args.o == "-":
        sys.stdout.write(text)
    else:
        with open(args.o, "w") as handle:
            handle.write(text)
    return 0


_TOOLS = {
    "cc": lc_cc, "as": lc_as, "dis": lc_dis, "opt": lc_opt,
    "link": lc_link, "run": lc_run, "llc": lc_llc,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in _TOOLS:
        names = ", ".join(sorted(_TOOLS))
        print(f"usage: python -m repro.tools <tool> [args]\ntools: {names}",
              file=sys.stderr)
        return 2
    return _TOOLS[argv[0]](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
