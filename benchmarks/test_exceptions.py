"""Experiment E10 — section 2.4: invoke/unwind implements C++ exception
handling (and setjmp/longjmp) uniformly, and link-time analysis removes
unused exception handlers (section 4.1.2).

Covers:

* the Figure 2 pattern (cleanup code runs during unwinding, then
  unwinding continues);
* the Figure 3 pattern (runtime-allocated exception object + explicit
  unwind);
* the LC surface syntax (try/catch/throw) through the full pipeline;
* prune-eh demoting invokes of no-unwind callees into plain calls.
"""

from __future__ import annotations

from repro.core import IRBuilder, Module, types, verify_module
from repro.core.instructions import InvokeInst, Opcode
from repro.core.values import ConstantInt
from repro.cxxfe import build_throw, build_try_catch
from repro.cxxfe.exceptions import current_exception
from repro.driver.pipelines import compile_and_link, link_time_optimize
from repro.execution import Interpreter
from repro.frontend import compile_source
from repro.transforms.ipo import PruneExceptionHandlers

from conftest import report


def _build_figure23_module() -> Module:
    """thrower() performs Figure 3's ``throw 42``; main wraps the call
    in Figure 2's invoke with cleanup, catches, and reads the value."""
    module = Module("figure23")

    thrower = module.new_function(types.function(types.VOID, [types.INT]),
                                  "thrower", arg_names=["x"])
    builder = IRBuilder(thrower.append_block("entry"))
    ok = thrower.append_block("no.throw")
    bad = thrower.append_block("do.throw")
    limit = ConstantInt(types.INT, 100)
    builder.cond_br(builder.setgt(thrower.args[0], limit, "big"), bad, ok)
    builder.position_at_end(ok)
    builder.ret_void()
    builder.position_at_end(bad)
    build_throw(module, builder, thrower.args[0], typeid=7)

    cleanup_log = module.new_global(types.INT, "cleanups_run",
                                    ConstantInt(types.INT, 0))

    main = module.new_function(types.function(types.INT, [types.INT]),
                               "main", arg_names=["n"])
    builder = IRBuilder(main.append_block("entry"))
    caught_block = main.append_block("caught")

    def cleanup(handler: IRBuilder) -> None:
        # Figure 2: the destructor runs while unwinding is paused.
        count = handler.load(cleanup_log, "c")
        handler.store(handler.add(count, ConstantInt(types.INT, 1), "c1"),
                      cleanup_log)

    def handler_body(handler: IRBuilder) -> None:
        handler.br(caught_block)

    _, normal = build_try_catch(module, builder, thrower, [main.args[0]],
                                handler_body, cleanup)
    normal.ret(ConstantInt(types.INT, 0))

    catcher = IRBuilder(caught_block)
    _, typeid = current_exception(module, catcher)
    catcher.ret(typeid)
    verify_module(module)
    return module


def test_figure2_figure3_exception_flow(benchmark):
    def run():
        module = _build_figure23_module()
        quiet = Interpreter(module)
        no_throw = quiet.run("main", [5])
        loud = Interpreter(module)
        thrown = loud.run("main", [500])
        return module, quiet, no_throw, loud, thrown

    module, quiet, no_throw, loud, thrown = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert no_throw == 0, "no exception: the normal path returns 0"
    assert thrown == 7, "the handler sees the thrown typeid"
    # Figure 2's guarantee: cleanup ran exactly once, only when unwinding.
    quiet_cleanups = quiet.memory.load(
        quiet.global_addresses[id(module.globals["cleanups_run"])], types.INT
    )
    loud_cleanups = loud.memory.load(
        loud.global_addresses[id(module.globals["cleanups_run"])], types.INT
    )
    assert quiet_cleanups == 0 and loud_cleanups == 1
    report(f"\nno-throw: rc=0, cleanups=0; throw: rc=7 (typeid), cleanups=1")


LC_EH_PROGRAM = r"""
extern int print_int(int x);
static int depth_reached = 0;

static void descend(int depth) {
  depth_reached = depth;
  if (depth >= 4) { throw; }
  descend(depth + 1);
}

int main() {
  int caught = 0;
  try {
    descend(0);
    caught = 100;       // unreachable: descend always throws
  } catch {
    caught = depth_reached;
  }
  print_int(caught);
  return caught;
}
"""


def test_lc_try_catch_through_pipeline(benchmark):
    """The LC surface syntax: a throw four frames deep unwinds through
    the intermediate activations to the catch in main — before and
    after full optimization."""
    def run():
        unopt = compile_source(LC_EH_PROGRAM, "eh")
        raw = Interpreter(unopt).run("main")
        opt = compile_and_link([LC_EH_PROGRAM], "eh")
        cooked = Interpreter(opt).run("main")
        return raw, cooked

    raw, cooked = benchmark.pedantic(run, rounds=1, iterations=1)
    assert raw == 4, "the catch should observe the depth at throw time"
    assert cooked == raw, "optimization must preserve EH semantics"


def test_prune_eh_removes_unused_handlers():
    """Section 4.1.2: interprocedural analysis eliminates exception
    handlers guarding calls that can never unwind."""
    source = r"""
extern int print_int(int x);
static int safe_helper(int x) { return x * 2 + 1; }
int main() {
  int result = 0;
  try {
    result = safe_helper(20);
  } catch {
    result = 0 - 1;
  }
  return result;
}
"""
    module = compile_source(source, "prune")
    invokes_before = sum(
        1 for f in module.defined_functions() for i in f.instructions()
        if isinstance(i, InvokeInst)
    )
    assert invokes_before == 1, "the try block produces an invoke"
    baseline = Interpreter(module).run("main")

    PruneExceptionHandlers().run_on_module(module)
    verify_module(module)
    invokes_after = sum(
        1 for f in module.defined_functions() for i in f.instructions()
        if isinstance(i, InvokeInst)
    )
    assert invokes_after == 0, "the no-unwind callee's invoke is demoted"
    assert Interpreter(module).run("main") == baseline == 41


def test_unwind_to_direct_branch_via_inlining():
    """The paper: inlining lets LLVM "turn stack unwinding operations
    into direct branches when the unwind target is the same function"."""
    source = r"""
static int boom(int x) {
  if (x > 10) { throw; }
  return x;
}
int main() {
  int out = 0;
  try {
    out = boom(50);
  } catch {
    out = 99;
  }
  return out;
}
"""
    module = compile_and_link([source], "inline_eh")
    unwinds = sum(
        1 for f in module.defined_functions() for i in f.instructions()
        if i.opcode == Opcode.UNWIND
    )
    assert unwinds == 0, "the inlined unwind should become a branch"
    assert Interpreter(module).run("main") == 99
