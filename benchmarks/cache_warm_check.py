"""CI gate for the incremental driver: cold vs warm cache over the suite.

Compiles every benchmark program twice against one on-disk cache
directory.  The cold pass populates the cache (front-end + per-module
-O2 per program); the warm pass must (a) serve every program from the
cache, (b) produce byte-identical bytecode, and (c) be meaningfully
faster.  Any violation exits non-zero, failing the CI job.

Usage:  PYTHONPATH=src python benchmarks/cache_warm_check.py [--min-speedup X]
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.benchsuite import benchmark_names, load_source
from repro.bitcode import write_bytecode
from repro.driver import BytecodeCache, compile_and_link


def run_pass(names: list[str], cache: BytecodeCache) -> tuple[dict, float]:
    """Compile every program once; returns {name: bytecode} and seconds."""
    artifacts = {}
    started = time.perf_counter()
    for name in names:
        module = compile_and_link([load_source(name)], name, level=2,
                                  lto=False, cache=cache)
        artifacts[name] = write_bytecode(module, strip_names=False)
    return artifacts, time.perf_counter() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--min-speedup", type=float, default=1.5,
                        help="required cold/warm wall-time ratio")
    args = parser.parse_args(argv)

    names = benchmark_names()
    failures = []
    with tempfile.TemporaryDirectory(prefix="lc-cache-") as directory:
        cache = BytecodeCache(directory)
        cold, cold_elapsed = run_pass(names, cache)
        if cache.hits:
            failures.append(f"cold pass unexpectedly hit the cache "
                            f"({cache.hits} hits)")
        warm_cache = BytecodeCache(directory)  # fresh counters, same entries
        warm, warm_elapsed = run_pass(names, warm_cache)

        print(f"programs:     {len(names)}")
        print(f"cold pass:    {cold_elapsed:.3f}s "
              f"({cache.misses} misses, {cache.stores} stores)")
        print(f"warm pass:    {warm_elapsed:.3f}s "
              f"({warm_cache.hits} hits, {warm_cache.misses} misses)")
        speedup = cold_elapsed / warm_elapsed if warm_elapsed else float("inf")
        print(f"speedup:      {speedup:.2f}x (required: "
              f">= {args.min_speedup:.2f}x)")

        if warm_cache.misses:
            failures.append(f"warm pass missed {warm_cache.misses} time(s); "
                            "cache keys are unstable")
        for name in names:
            if warm[name] != cold[name]:
                failures.append(f"{name}: warm bytecode differs from cold")
        if speedup < args.min_speedup:
            failures.append(f"warm pass only {speedup:.2f}x faster "
                            f"(required {args.min_speedup:.2f}x)")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: warm cache is byte-identical and faster")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
