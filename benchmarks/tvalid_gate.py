"""CI gate for translation validation: zero rollbacks on the suite.

Compiles every benchsuite program at -O2 with --translation-validate:
each transform pass's output is checked for refinement against its
input, per function, on every compile.  The shipped pipeline is
correct, so *any* validation failure (or any rollback at all) is a
regression — either a pass started miscompiling or the validator
started flagging legal transforms.  The gate then re-verifies the
checked-in lc-synth rule set (`lc-synth --self-check`): every
generated instcombine rule must still prove at every probed width,
still be non-redundant, and the cast-chain audit must stay clean.
See docs/ANALYSIS.md, "Translation validation".

Usage:  PYTHONPATH=src python benchmarks/tvalid_gate.py
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.benchsuite import benchmark_names, load_source
from repro.driver import FaultPolicy
from repro.driver.pipelines import optimize_module
from repro.frontend import compile_source


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--level", type=int, default=2)
    parser.add_argument("--skip-self-check", action="store_true",
                        help="benchsuite half only (for local iteration)")
    args = parser.parse_args(argv)

    policy = FaultPolicy(translation_validate=True, reduce_testcases=False)
    started = time.perf_counter()
    failed_programs = []
    for name in benchmark_names():
        program_started = time.perf_counter()
        module = compile_source(load_source(name), name)
        optimize_module(module, level=args.level, policy=policy)
        stats = policy.statistics()
        print(f"tvalid-gate: {name:10s} {time.perf_counter() - program_started:6.1f}s  "
              f"validated={stats['validations.run']} "
              f"failed={stats['validations.failed']} "
              f"rolled_back={stats['passes.rolled_back']}")
        if stats["validations.failed"] or stats["passes.rolled_back"]:
            failed_programs.append(name)
            for report in policy.crash_reports:
                print(f"tvalid-gate:   {report.describe()}", file=sys.stderr)

    stats = policy.statistics()
    print(f"tvalid-gate: suite at -O{args.level}: "
          f"{stats['validations.run']} validations "
          f"({stats['validations.passed']} passed, "
          f"{stats['validations.failed']} failed), "
          f"{stats['validations.skipped-unsupported']} skipped-unsupported, "
          f"{stats['validations.skipped-by-size']} skipped-by-size, "
          f"{stats['passes.rolled_back']} rollbacks, "
          f"{stats['synth.rules-loaded']} synth rules loaded, "
          f"{time.perf_counter() - started:.1f}s")
    if failed_programs:
        print(f"tvalid-gate: FAIL — rollbacks on: "
              f"{', '.join(failed_programs)}", file=sys.stderr)
        return 1
    if stats["validations.run"] == 0:
        print("tvalid-gate: FAIL — the validator never ran "
              "(wiring regression)", file=sys.stderr)
        return 1

    if not args.skip_self_check:
        from repro.tvalid.synth import self_check

        check_started = time.perf_counter()
        problems = self_check()
        for problem in problems:
            print(f"tvalid-gate: self-check: {problem}", file=sys.stderr)
        print(f"tvalid-gate: lc-synth self-check: {len(problems)} "
              f"problem(s), {time.perf_counter() - check_started:.1f}s")
        if problems:
            print("tvalid-gate: FAIL — generated rules no longer verify",
                  file=sys.stderr)
            return 1

    print("tvalid-gate: ok — zero rollbacks, generated rules still prove")
    return 0


if __name__ == "__main__":
    sys.exit(main())
