"""CI gate for the abstract interpreter: verified transfers, real folds.

Two halves.  First, the transformer soundness ladder (`lc-absint
--self-check`): every interval and known-bits transfer function is
exhaustively checked against the concrete ``constfold`` semantics at
4 bits, on singletons at 8 bits, and on boundary/seeded samples at the
production widths — any violation means a transfer claims something
some execution contradicts.  Second, the benchsuite compiles at -O2
with --translation-validate: the range-driven ``rangeopt`` pass must
fire a minimum number of rewrites across the suite (the analysis is
pulling its weight) while causing zero validation failures and zero
rollbacks (every rewrite it makes is machine-checked refinement).
See docs/ANALYSIS.md, "Value-range abstract interpretation".

Usage:  PYTHONPATH=src python benchmarks/absint_gate.py
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.absint import run_self_check
from repro.benchsuite import benchmark_names, load_source
from repro.driver import FaultPolicy
from repro.driver.pipelines import standard_pipeline
from repro.frontend import compile_source

#: The suite must yield at least this many range-driven rewrites; fewer
#: means the analysis lost precision (or rangeopt lost its wiring).
MIN_FOLDS = 5

LEVEL = 2


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="abbreviated self-check ladder (local runs)")
    parser.add_argument("--skip-self-check", action="store_true",
                        help="benchsuite half only (for local iteration)")
    args = parser.parse_args(argv)

    if not args.skip_self_check:
        check_started = time.perf_counter()
        problems = run_self_check(full=not args.fast)
        for problem in problems:
            print(f"absint-gate: UNSOUND: {problem}", file=sys.stderr)
        print(f"absint-gate: transformer self-check: {len(problems)} "
              f"violation(s), {time.perf_counter() - check_started:.1f}s")
        if problems:
            print("absint-gate: FAIL — a transfer function is unsound",
                  file=sys.stderr)
            return 1

    policy = FaultPolicy(translation_validate=True, reduce_testcases=False)
    started = time.perf_counter()
    total_folds = 0
    failed_programs = []
    for name in benchmark_names():
        program_started = time.perf_counter()
        module = compile_source(load_source(name), name)
        manager = standard_pipeline(LEVEL, policy=policy)
        manager.run(module)
        stats = policy.statistics()
        folds = sum(manager.statistics().get("rangeopt", {}).values())
        total_folds += folds
        print(f"absint-gate: {name:10s} "
              f"{time.perf_counter() - program_started:6.1f}s  "
              f"rangeopt-rewrites={folds} "
              f"failed={stats['validations.failed']} "
              f"rolled_back={stats['passes.rolled_back']}")
        if stats["validations.failed"] or stats["passes.rolled_back"]:
            failed_programs.append(name)
            for report in policy.crash_reports:
                print(f"absint-gate:   {report.describe()}", file=sys.stderr)

    stats = policy.statistics()
    print(f"absint-gate: suite at -O{LEVEL}: {total_folds} rangeopt "
          f"rewrites, {stats['validations.run']} validations "
          f"({stats['validations.failed']} failed), "
          f"{stats['passes.rolled_back']} rollbacks, "
          f"{time.perf_counter() - started:.1f}s")
    if failed_programs:
        print(f"absint-gate: FAIL — rollbacks on: "
              f"{', '.join(failed_programs)}", file=sys.stderr)
        return 1
    if stats["validations.run"] == 0:
        print("absint-gate: FAIL — the validator never ran "
              "(wiring regression)", file=sys.stderr)
        return 1
    if total_folds < MIN_FOLDS:
        print(f"absint-gate: FAIL — only {total_folds} rangeopt rewrites "
              f"(need >= {MIN_FOLDS}); the analysis lost precision",
              file=sys.stderr)
        return 1

    print("absint-gate: ok — transfers verified, range folds land, "
          "zero rollbacks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
