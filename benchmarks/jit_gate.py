"""CI gate for the trace-compiling JIT tier: zero divergence, real speed.

Every benchsuite program compiles at -O2 + LTO and runs twice: once
under the plain IR interpreter (the reference) and once with the trace
tier armed — hot loop headers promote to recording, each recorded path
compiles to a guarded Python closure, and guard failures side-exit back
to the interpreter with fully reconstructed state.  The gate holds the
tier to three promises:

* **correctness** — exit value, printed output, and total interpreter
  steps match the reference exactly on every program, and no side exit
  ever fires with un-reconstructed state (``unreconstructed-exits`` is
  zero across the suite);
* **coverage** — the suite compiles at least ``MIN_TRACES`` traces (the
  hot-path detector is finding real loops, not idling);
* **speed** — the interpreter-steps ratio (reference steps over steps
  actually interpreted, i.e. steps not absorbed by traces) reaches
  ``MIN_STEPS_RATIO`` on at least ``MIN_FAST_PROGRAMS`` of the
  designated hot-loop programs.  Steps are deterministic, so this gate
  is machine-independent; wall-clock speedup is measured warm (the
  trace cache persists into a second run, the lifelong steady state)
  and recorded in the report, but never gated on.

The per-program table is written as JSON next to the lc-bench reports
so CI can archive the speedup trajectory.

Usage:  PYTHONPATH=src python benchmarks/jit_gate.py [-o report.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.benchsuite import benchmark_names, compile_benchmark
from repro.execution import Interpreter, TraceManager
from repro.execution.interpreter import ExitCalled

#: The whole suite must compile at least this many traces.
MIN_TRACES = 10
#: Required interpreter-steps ratio (reference / interpreted-under-JIT)
#: on the designated programs...
MIN_STEPS_RATIO = 5.0
#: ...for at least this many of them.
MIN_FAST_PROGRAMS = 3
#: Hot-loop programs the speed half of the gate is allowed to count.
DESIGNATED = ("gzip", "mesa", "equake", "ammp", "bzip2")

HOT_THRESHOLD = 50
STEP_LIMIT = 200_000_000


def _run(module, manager=None):
    """(exit code, output, steps, seconds) of one interpreter run."""
    interp = Interpreter(module, step_limit=STEP_LIMIT)
    if manager is not None:
        manager.attach(interp)
    started = time.perf_counter()
    try:
        value = interp.run("main", [])
        code = value if isinstance(value, int) else 0
    except ExitCalled as exc:
        code = exc.code
    seconds = time.perf_counter() - started
    return code, "".join(interp.output), interp.steps, seconds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", default="jit_gate_report.json",
                        help="per-program JSON report path ('-' skips)")
    args = parser.parse_args(argv)

    failures: list[str] = []
    rows = []
    total_traces = 0
    total_unreconstructed = 0
    fast_programs = []
    started = time.perf_counter()
    for name in benchmark_names():
        module = compile_benchmark(name, level=2, lto=True)
        ref_code, ref_out, ref_steps, ref_seconds = _run(module)

        manager = TraceManager(hot_threshold=HOT_THRESHOLD)
        jit_code, jit_out, jit_steps, _ = _run(module, manager)
        cold_saved = manager.stats.steps_saved
        # Warm run: same trace cache, fresh interpreter — the lifelong
        # steady state, where compile cost is already paid.
        warm_code, warm_out, warm_steps, warm_seconds = _run(module, manager)

        for label, code, out, steps in (("cold", jit_code, jit_out,
                                         jit_steps),
                                        ("warm", warm_code, warm_out,
                                         warm_steps)):
            if (code, out, steps) != (ref_code, ref_out, ref_steps):
                failures.append(
                    f"{name}: {label} trace run diverged — "
                    f"exit {code} vs {ref_code}, steps {steps} vs "
                    f"{ref_steps}, output "
                    f"{'matches' if out == ref_out else 'DIFFERS'}")

        stats = manager.statistics()
        total_traces += stats["traces-compiled"]
        total_unreconstructed += stats["unreconstructed-exits"]
        # Steps-saved accumulates across both runs; the gate's ratio is
        # the warm (steady-state) run's alone.
        warm_saved = stats["steps-saved"] - cold_saved
        interpreted = ref_steps - warm_saved
        steps_ratio = (ref_steps / interpreted) if interpreted > 0 else 1.0
        wall_ratio = (ref_seconds / warm_seconds) if warm_seconds > 0 else 1.0
        if name in DESIGNATED and steps_ratio >= MIN_STEPS_RATIO:
            fast_programs.append(name)
        rows.append({
            "program": name,
            "ref_steps": ref_steps,
            "steps_ratio": round(steps_ratio, 2),
            "warm_wall_ratio": round(wall_ratio, 2),
            "traces_compiled": stats["traces-compiled"],
            "guard_exits": stats["guard-exits"],
            "steps_saved": warm_saved,
            "unreconstructed_exits": stats["unreconstructed-exits"],
        })
        print(f"jit-gate: {name:10s} steps x{steps_ratio:6.2f}  "
              f"warm wall x{wall_ratio:5.2f}  "
              f"traces {stats['traces-compiled']:4d}  "
              f"saved {warm_saved}")

    if total_unreconstructed:
        failures.append(f"{total_unreconstructed} side exit(s) fired with "
                        "un-reconstructed state")
    if total_traces < MIN_TRACES:
        failures.append(f"only {total_traces} trace(s) compiled across the "
                        f"suite (floor {MIN_TRACES})")
    if len(fast_programs) < MIN_FAST_PROGRAMS:
        failures.append(
            f"steps ratio >= {MIN_STEPS_RATIO} on only "
            f"{len(fast_programs)} designated program(s) "
            f"({', '.join(fast_programs) or 'none'}); "
            f"need {MIN_FAST_PROGRAMS} of {', '.join(DESIGNATED)}")

    report = {
        "schema": "jit-gate/1",
        "programs": rows,
        "traces_compiled": total_traces,
        "fast_programs": fast_programs,
        "total_seconds": round(time.perf_counter() - started, 3),
    }
    if args.o != "-":
        with open(args.o, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"jit-gate: wrote {args.o}")

    for failure in failures:
        print(f"jit-gate: FAIL: {failure}", file=sys.stderr)
    verdict = "FAIL" if failures else "PASS"
    print(f"jit-gate: {verdict} — {total_traces} traces, "
          f"steps ratio >= {MIN_STEPS_RATIO} on "
          f"{len(fast_programs)}/{MIN_FAST_PROGRAMS} needed designated "
          f"programs, {total_unreconstructed} unreconstructed exits, "
          f"{len(failures)} failure(s), "
          f"{report['total_seconds']:.1f}s")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
