"""Experiment E9 — section 4.1.2: virtual method call resolution.

A class hierarchy is lowered exactly as the paper describes (nested
structs, constant vtable globals of typed function pointers, vtable
pointer installed at allocation).  The link-time optimizer then
resolves the virtual calls into direct calls and inlines them —
"virtual method call resolution can be performed by the optimizer as
effectively as by a typical source compiler".
"""

from __future__ import annotations

from repro.core import IRBuilder, Module, types, verify_module
from repro.core.instructions import CallInst
from repro.core.module import Function
from repro.core.values import ConstantInt
from repro.cxxfe import ClassBuilder
from repro.driver.pipelines import link_time_optimize, optimize_module
from repro.execution import Interpreter

from conftest import report


def _build_shapes_module() -> Module:
    """class Shape { virtual int area(); }; class Square : Shape;
    class Circle : Shape — with main() computing both areas."""
    module = Module("shapes")
    classes = ClassBuilder(module)

    def make_area(name: str, factor: int) -> Function:
        def body(builder, this):
            # Read the 'side' field (field 1, after the vptr) of the
            # object behind the generic this pointer.
            typed = builder.cast(this, types.pointer(types.INT), "side.raw")
            side_ptr = builder.gep(typed, [ConstantInt(types.LONG, 2)], "side")
            side = builder.load(side_ptr, "side.val")
            builder.ret(builder.mul(side, ConstantInt(types.INT, factor)))

        return classes.emit_method(name, body)

    shape = classes.define_class("Shape", [types.INT],
                                 {"area": make_area("Shape.area", 0)})
    square = classes.define_class("Square", [],
                                  {"area": make_area("Square.area", 4)},
                                  base=shape)
    circle = classes.define_class("Circle", [],
                                  {"area": make_area("Circle.area", 3)},
                                  base=shape)

    main = module.new_function(types.function(types.INT, []), "main")
    builder = IRBuilder(main.append_block("entry"))
    total = None
    for info, side in ((square, 5), (circle, 7)):
        obj = classes.emit_new(builder, info)
        raw = builder.cast(obj, types.pointer(types.INT), "fields")
        side_ptr = builder.gep(raw, [ConstantInt(types.LONG, 2)], "side")
        builder.store(ConstantInt(types.INT, side), side_ptr)
        area = classes.emit_virtual_call(builder, info, obj, "area", "area")
        total = area if total is None else builder.add(total, area, "total")
    builder.ret(total)
    verify_module(module)
    return module


def _indirect_call_count(module: Module) -> int:
    count = 0
    for function in module.defined_functions():
        for inst in function.instructions():
            if isinstance(inst, CallInst) and not isinstance(
                inst.callee, Function
            ):
                count += 1
    return count


def test_devirtualization(benchmark):
    def run():
        module = _build_shapes_module()
        baseline = Interpreter(module).run("main")
        before = _indirect_call_count(module)
        optimize_module(module, 2)
        link_time_optimize(module, 2)
        after = _indirect_call_count(module)
        result = Interpreter(module).run("main")
        return baseline, result, before, after, module

    baseline, result, before, after, module = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(f"\nvirtual calls: {before} indirect before, {after} after; "
          f"area total = {result}")
    assert baseline == result == 5 * 4 + 7 * 3
    assert before >= 2, "the source program makes virtual calls"
    assert after == 0, "link-time optimization should resolve them all"


def test_devirtualized_calls_get_inlined():
    """The follow-on benefit: once direct, the methods inline away and
    main computes the answer with no calls at all."""
    module = _build_shapes_module()
    optimize_module(module, 2)
    link_time_optimize(module, 2)
    main = module.functions["main"]
    calls = [
        inst for inst in main.instructions()
        if isinstance(inst, CallInst)
    ]
    runtime_calls = [c for c in calls if isinstance(c.callee, Function)
                     and not c.callee.name.startswith("__")]
    assert not runtime_calls, "method bodies should be inlined into main"
    assert Interpreter(module).run("main") == 41
