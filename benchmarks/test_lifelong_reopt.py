"""Experiment E7 — sections 3.5/3.6: runtime profiling feeds an offline
(idle-time) reoptimizer that improves the program for its observed use.

The lifelong loop: compile+link with IPO → instrument → end-user runs
collect block/loop profiles → the offline reoptimizer inlines hot call
paths, forms superblock traces for biased hot loops, and re-lays-out
hot code → the next run executes fewer interpreter steps with identical
output.

Interpreter steps are the deterministic stand-in for run time.
"""

from __future__ import annotations

from repro.benchsuite import load_source
from repro.driver import LifelongSession

from conftest import report

#: Programs with hot loops and biased branches, where trace formation
#: and profile-guided inlining have something to gain.
CANDIDATES = ("gzip", "mcf", "parser", "vortex")


def _run_cycle(name: str) -> tuple[int, int, int, int]:
    session = LifelongSession([load_source(name)], name)
    before = session.run_uninstrumented(step_limit=200_000_000)
    session.run(step_limit=200_000_000)  # the profiled end-user run
    report = session.reoptimize(hot_call_threshold=5, hot_loop_threshold=50)
    after = session.run_uninstrumented(step_limit=200_000_000)
    assert after.exit_value == before.exit_value, f"{name}: result changed"
    assert after.output == before.output, f"{name}: output changed"
    return (before.steps, after.steps, report.traces_formed,
            report.inlined_calls)


def test_lifelong_reoptimization(benchmark):
    def run_all():
        return {name: _run_cycle(name) for name in CANDIDATES}

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    header = (f"{'Benchmark':<10} {'steps before':>13} {'steps after':>12} "
              f"{'change':>8} {'traces':>7} {'inlined':>8}")
    report()
    report("Lifelong reoptimization (interpreter steps; output preserved)")
    report(header)
    report("-" * len(header))
    improved = 0
    for name in CANDIDATES:
        before, after, traces, inlined = rows[name]
        change = (after - before) / before
        improved += int(after < before)
        report(f"{name:<10} {before:>13} {after:>12} {change:>7.1%} "
              f"{traces:>7} {inlined:>8}")
    assert improved >= len(CANDIDATES) // 2, (
        "reoptimization should speed up at least half the candidates"
    )
    total_traces = sum(rows[name][2] for name in CANDIDATES)
    assert total_traces >= 1, "trace formation should fire somewhere"


def test_profile_persistence_roundtrip():
    """Section 3.6: profile data is gathered in the field and shipped to
    the idle-time optimizer; it must survive serialization."""
    from repro.profile import ProfileData

    session = LifelongSession([load_source("mcf")], "mcf")
    session.run()
    text = session.profile.to_json()
    restored = ProfileData.from_json(text)
    assert restored.function_entry_counts() == session.profile.function_entry_counts()
    assert restored.hot_loops(1) == session.profile.hot_loops(1)


def test_profile_accumulates_across_runs():
    """Multiple end-user runs accumulate into one profile (the paper's
    usage-pattern adaptation story)."""
    session = LifelongSession([load_source("mcf")], "mcf")
    session.run()
    first = dict(session.profile.counts)
    session.run()
    for counter_id, count in first.items():
        assert session.profile.counts[counter_id] == 2 * count
