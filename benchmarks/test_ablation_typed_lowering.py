"""Experiment E5 — section 4.1.1's front-end ablation.

"An earlier version of the C front-end was based on GCC's RTL internal
representation, which provided little useful type information, and both
DSA and pool allocation were much less effective.  Our new C/C++
front-end is based on the GCC Abstract Syntax Tree representation,
which makes much more type information available."

We compile each suite program twice: once normally (AST-style typed
lowering) and once with the TypeEraser pass, which rewrites every
``getelementptr`` into byte-offset arithmetic through ``sbyte*`` (the
RTL-style lowering).  DSA's typed-access fraction should collapse in
the erased configuration.
"""

from __future__ import annotations

from repro.analysis.dsa import DataStructureAnalysis
from repro.benchsuite import BENCHMARKS
from repro.transforms.typeerase import TypeEraser

from conftest import report


def _run_ablation(suite) -> list[tuple[str, float, float]]:
    rows = []
    for info in BENCHMARKS:
        module = suite[info.name]
        typed_percent = DataStructureAnalysis(module).report().typed_percent

        # Erase on a deep copy via the binary representation (the point
        # of having equivalent representations: cheap module cloning).
        from repro.bitcode import read_bytecode, write_bytecode

        erased = read_bytecode(write_bytecode(module, strip_names=False))
        TypeEraser().run_on_module(erased)
        erased_percent = DataStructureAnalysis(erased).report().typed_percent
        rows.append((info.spec_name, typed_percent, erased_percent))
    return rows


def test_ablation_typed_vs_rtl_lowering(suite, benchmark):
    rows = benchmark.pedantic(_run_ablation, args=(suite,), rounds=1, iterations=1)
    header = f"{'Benchmark':<12} {'AST-style':>10} {'RTL-style':>10}"
    report()
    report("Ablation: typed (AST) vs type-erased (RTL) lowering, DSA typed %")
    report(header)
    report("-" * len(header))
    typed_total = 0.0
    erased_total = 0.0
    for name, typed_percent, erased_percent in rows:
        report(f"{name:<12} {typed_percent:>9.1f}% {erased_percent:>9.1f}%")
        typed_total += typed_percent
        erased_total += erased_percent
    count = len(rows)
    report("-" * len(header))
    report(f"{'average':<12} {typed_total/count:>9.1f}% {erased_total/count:>9.1f}%")

    assert erased_total / count < typed_total / count - 15.0, (
        "RTL-style lowering should make DSA much less effective"
    )
    for name, typed_percent, erased_percent in rows:
        assert erased_percent <= typed_percent + 1e-9, (
            f"{name}: erasing types cannot add type information"
        )
