"""Ablation — the value of link-time whole-program optimization.

Section 3.3's thesis is that link time is "a natural place to perform
aggressive interprocedural optimizations across the entire program";
this ablation quantifies it on the suite by compiling each program
three ways:

* -O0 (straight front-end output),
* -O2 per-module only (what a traditional source-level compiler
  without cross-module optimization can do),
* -O2 + link-time interprocedural optimization (the LLVM model).

Interpreter steps (work) and bytecode size are reported for each.
"""

from __future__ import annotations

from repro.benchsuite import BENCHMARKS, load_source
from repro.bitcode import write_bytecode
from repro.driver.pipelines import compile_and_link, optimize_module
from repro.execution import Interpreter
from repro.frontend import compile_source

from conftest import report

STEP_LIMIT = 100_000_000


def _steps(module) -> int:
    interp = Interpreter(module, step_limit=STEP_LIMIT)
    interp.run("main")
    return interp.steps


def _measure_one(name: str) -> tuple[int, int, int, int, int, int]:
    source = load_source(name)
    o0 = compile_source(source, name)
    o0_steps = _steps(o0)
    o0_size = len(write_bytecode(o0))

    o2 = compile_source(source, name)
    optimize_module(o2, 2)
    o2_steps = _steps(o2)
    o2_size = len(write_bytecode(o2))

    lto = compile_and_link([source], name)
    lto_steps = _steps(lto)
    lto_size = len(write_bytecode(lto))
    return o0_steps, o2_steps, lto_steps, o0_size, o2_size, lto_size


def test_lto_ablation(benchmark):
    def run():
        return {info.name: _measure_one(info.name) for info in BENCHMARKS}

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    header = (f"{'Benchmark':<12} {'-O0 steps':>10} {'-O2 steps':>10} "
              f"{'+LTO steps':>11} {'O2/O0':>6} {'LTO/O0':>7}")
    report()
    report("Ablation: per-module -O2 vs link-time whole-program optimization")
    report(header)
    report("-" * len(header))
    totals = [0, 0, 0]
    for info in BENCHMARKS:
        o0, o2, lto, *_ = rows[info.name]
        totals[0] += o0
        totals[1] += o2
        totals[2] += lto
        report(f"{info.spec_name:<12} {o0:>10} {o2:>10} {lto:>11} "
              f"{o2/o0:>6.2f} {lto/o0:>7.2f}")
    report("-" * len(header))
    report(f"{'total':<12} {totals[0]:>10} {totals[1]:>10} {totals[2]:>11} "
          f"{totals[1]/totals[0]:>6.2f} {totals[2]/totals[0]:>7.2f}")

    # The shape: each stage helps, LTO beats per-module -O2 overall.
    assert totals[1] < totals[0], "-O2 reduces work"
    assert totals[2] < totals[1], "link-time IPO reduces work further"
    # And per program, LTO never loses to -O0.
    for info in BENCHMARKS:
        o0, _, lto, *_ = rows[info.name]
        assert lto <= o0


def test_lto_collapses_call_graph(benchmark):
    """LTO's structural effect: whole-program inlining plus dead-global
    elimination collapse most internal functions away.  (Bytecode size
    itself may *grow* slightly — inlining duplicates bodies faster than
    DGE deletes them on these single-TU programs — which the paper's
    model accepts: code size is the code generator's concern, the
    representation's job is to enable the interprocedural rewrite.)"""
    def run():
        before_total = 0
        after_total = 0
        for info in BENCHMARKS:
            source = load_source(info.name)
            o2 = compile_source(source, info.name)
            optimize_module(o2, 2)
            before_total += sum(1 for _ in o2.defined_functions())
            lto = compile_and_link([source], info.name)
            after_total += sum(1 for _ in lto.defined_functions())
        return before_total, after_total

    before_total, after_total = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"\ndefined functions across the suite: {before_total} at -O2, "
          f"{after_total} after link-time optimization")
    assert after_total < before_total / 2, (
        "whole-program optimization should absorb most helpers"
    )
