"""Experiments E3/E4 — paper Figure 5: executable sizes for the LLVM
bytecode, x86, and SPARC representations.

The paper's claims:

* "LLVM code is about the same size as native X86 executables (a
  denser, variable-size instruction set)";
* "significantly smaller than SPARC (a traditional 32-bit instruction
  RISC machine)" — roughly 25% smaller on average;
* (section 4.1.3) bzip2-style compression shrinks bytecode files to
  about 50% — "indicating substantial margin for improvement".
"""

from __future__ import annotations

import bz2

from repro.backend import SPARC, X86, compile_for_size
from repro.bitcode import write_bytecode
from repro.benchsuite import BENCHMARKS

from conftest import report


def _run_figure(suite) -> dict[str, tuple[int, int, int]]:
    rows = {}
    for info in BENCHMARKS:
        module = suite[info.name]
        llvm_size = len(write_bytecode(module))
        x86_size = compile_for_size(module, X86).total_size
        sparc_size = compile_for_size(module, SPARC).total_size
        rows[info.name] = (llvm_size, x86_size, sparc_size)
    return rows


def test_figure5_executable_sizes(suite, benchmark):
    rows = benchmark.pedantic(_run_figure, args=(suite,), rounds=1, iterations=1)

    header = (f"{'Benchmark':<12} {'LLVM':>8} {'X86':>8} {'SPARC':>8} "
              f"{'LLVM/X86':>9} {'LLVM/SPARC':>11}")
    report()
    report("Figure 5: Executable sizes (bytes)")
    report(header)
    report("-" * len(header))
    ratio_x86_total = 0.0
    ratio_sparc_total = 0.0
    for info in BENCHMARKS:
        llvm_size, x86_size, sparc_size = rows[info.name]
        ratio_x86 = llvm_size / x86_size
        ratio_sparc = llvm_size / sparc_size
        ratio_x86_total += ratio_x86
        ratio_sparc_total += ratio_sparc
        report(f"{info.spec_name:<12} {llvm_size:>8} {x86_size:>8} "
              f"{sparc_size:>8} {ratio_x86:>9.2f} {ratio_sparc:>11.2f}")
    count = len(BENCHMARKS)
    mean_x86 = ratio_x86_total / count
    mean_sparc = ratio_sparc_total / count
    report("-" * len(header))
    report(f"{'average':<12} {'':>8} {'':>8} {'':>8} "
          f"{mean_x86:>9.2f} {mean_sparc:>11.2f}")

    # Shape assertions: comparable to x86, smaller than sparc.
    assert 0.6 <= mean_x86 <= 1.4, "LLVM should be about the size of x86"
    assert mean_sparc < mean_x86, "SPARC should be the largest encoding"
    assert mean_sparc <= 0.95, "LLVM should be clearly smaller than SPARC"


def test_figure5_compression_margin(suite, benchmark):
    """E4 — section 4.1.3: general-purpose compression reduces bytecode
    files to about 50% of their size."""
    def measure():
        total_raw = 0
        total_packed = 0
        for info in BENCHMARKS:
            data = write_bytecode(suite[info.name])
            total_raw += len(data)
            total_packed += len(bz2.compress(data))
        return total_raw, total_packed

    total_raw, total_packed = benchmark.pedantic(measure, rounds=1, iterations=1)
    ratio = total_packed / total_raw
    report(f"\nbytecode: {total_raw} bytes raw, {total_packed} compressed "
          f"({ratio:.0%})")
    assert ratio <= 0.75, "compression should reveal substantial redundancy"
