"""CI gate for fault-tolerant compilation: the single-fault matrix.

Enumerates every registered fault-injection site (the catalogue is
derived from the real pipelines, so new passes join automatically) and
runs each one, armed exactly once, against three fixed-seed fuzz
programs under the fault-tolerant driver.  A cell fails if an
unhandled exception escapes, if the fault never fired (the hook fell
out of the production code path), or if the program's behaviour
diverges from the clean -O0 interpreter reference.  Any failing cell
exits non-zero, failing the CI job.  See docs/ROBUSTNESS.md.

Usage:  PYTHONPATH=src python benchmarks/fault_smoke.py [--seeds 401 402 403]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.fuzz import faultinject


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, nargs="+",
                        default=[401, 402, 403],
                        help="fuzz-program seeds (default: 401 402 403)")
    parser.add_argument("--size", type=int, default=2,
                        help="helper functions per program")
    parser.add_argument("--level", type=int, default=2,
                        help="optimization level under fault")
    parser.add_argument("--fault-seed", type=int, default=12345)
    parser.add_argument("--step-limit", type=int, default=500_000)
    args = parser.parse_args(argv)

    sites = sorted(faultinject.registered_sites(args.level))
    print(f"fault-smoke: {len(sites)} sites x {len(args.seeds)} programs")
    started = time.perf_counter()
    report = faultinject.run_fault_matrix(
        program_seeds=args.seeds, size=args.size, sites=sites,
        fault_seed=args.fault_seed, level=args.level,
        step_limit=args.step_limit)
    elapsed = time.perf_counter() - started

    for outcome in report.outcomes:
        print(outcome.describe())
    expected = len(sites) * len(args.seeds)
    print(f"fault-smoke: {len(report.outcomes)}/{expected} cells, "
          f"{len(report.failures)} failing, {elapsed:.1f}s")
    if len(report.outcomes) != expected:
        print("fault-smoke: FAIL — matrix did not cover every site",
              file=sys.stderr)
        return 1
    if not report.clean:
        print("fault-smoke: FAIL — containment broken at the cells above",
              file=sys.stderr)
        return 1
    print("fault-smoke: ok — every single-fault scenario contained")
    return 0


if __name__ == "__main__":
    sys.exit(main())
