"""Shared fixtures: compiled suite modules, cached per session."""

from __future__ import annotations

import sys

import pytest


_capture_manager = None


def pytest_configure(config):
    global _capture_manager
    _capture_manager = config.pluginmanager.getplugin("capturemanager")


def report(*parts) -> None:
    """Print a results line past pytest's capture (including fd-level
    capture), so the regenerated tables always land in the terminal /
    tee'd output."""
    text = " ".join(str(p) for p in parts) + "\n"
    if _capture_manager is not None:
        with _capture_manager.global_and_fixture_disabled():
            sys.stdout.write(text)
            sys.stdout.flush()
    else:
        sys.stdout.write(text)

from repro.benchsuite import benchmark_names, load_source
from repro.driver.pipelines import compile_and_link, optimize_module
from repro.frontend import compile_source
from repro.linker import link_modules

_cache: dict = {}


def compiled_suite() -> dict:
    """name -> fully optimized (linked, LTO) module for every program."""
    if "suite" not in _cache:
        suite = {}
        for name in benchmark_names():
            suite[name] = compile_and_link([load_source(name)], name)
        _cache["suite"] = suite
    return _cache["suite"]


def linked_suite_no_lto() -> dict:
    """name -> linked module with per-TU -O2 but *no* interprocedural
    optimization yet (the input the link-time optimizer sees)."""
    if "no_lto" not in _cache:
        suite = {}
        for name in benchmark_names():
            module = compile_source(load_source(name), name)
            optimize_module(module, 2)
            suite[name] = link_modules([module], name)
        _cache["no_lto"] = suite
    return _cache["no_lto"]


@pytest.fixture(scope="session")
def suite():
    return compiled_suite()


@pytest.fixture(scope="session")
def pre_lto_suite():
    return linked_suite_no_lto()
