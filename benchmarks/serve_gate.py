"""CI gate for lc-serverd: crash-only serving under fire.

Boots a real daemon subprocess with one armed worker-crash fault
(``--fault-inject server.worker-crash:SEED``), then drives it the way
a bad day would:

1. **Concurrent correctness** — N clients compile distinct programs in
   parallel; the armed fault kills a worker mid-request along the way.
   Every response must be byte-identical to what the batch driver
   produces at the level the daemon actually used.
2. **Overload burst** — more concurrent requests than the (small)
   admission queue can hold.  Every outcome must be either a correct
   result or a structured ``BUSY`` with a ``retry_after_ms`` hint;
   at least one request must actually be shed, and nothing may hang.
3. **Accounting** — ``serverd.worker-restarts >= 1`` (the crash was
   real and recovered from), sheds counted, zero protocol errors from
   well-behaved clients.
4. **Drain** — SIGTERM; the daemon must exit 0 within the timeout.

The daemon process dying at any point before the drain fails the gate.

Usage:  PYTHONPATH=src python benchmarks/serve_gate.py
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.bitcode import write_bytecode
from repro.driver import compile_and_link
from repro.serve import ServeClient, ServeRequestError
from repro.serve import protocol

PROGRAMS = [
    f"int f{i}(int x) {{ return x * {i + 2} + {i}; }}\n"
    f"int g{i}(int x) {{ return f{i}(x) - {i + 1}; }}\n"
    f"int main() {{ return g{i}(6) + f{i}({i}); }}"
    for i in range(6)
]


def fail(message: str) -> None:
    print(f"serve-gate: FAIL — {message}", file=sys.stderr)
    sys.exit(1)


def start_daemon(socket_path: str, cache_dir: str, crash_seed: int):
    env = dict(os.environ)
    root = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(root)
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.tools", "serverd",
         "--socket", socket_path, "--workers", "2",
         "--queue-depth", "4", "--high-water", "4",
         "--degrade-water", "2", "--cache-dir", cache_dir,
         "--fault-inject", f"server.worker-crash:{crash_seed}", "-q"],
        env=env, stderr=subprocess.PIPE)
    deadline = time.monotonic() + 30.0
    while not os.path.exists(socket_path):
        if daemon.poll() is not None:
            fail("daemon died during startup: "
                 + daemon.stderr.read().decode(errors="replace"))
        if time.monotonic() > deadline:
            daemon.kill()
            fail("daemon never bound its socket")
        time.sleep(0.05)
    return daemon


def assert_alive(daemon) -> None:
    if daemon.poll() is not None:
        fail(f"daemon died mid-gate (exit {daemon.returncode}): "
             + daemon.stderr.read().decode(errors="replace"))


def phase_concurrent_compiles(socket_path: str, daemon) -> None:
    """N parallel clients; one of them meets the injected crash."""
    references = {
        (source, level): write_bytecode(
            compile_and_link([source], "program", level),
            strip_names=False)
        for source in PROGRAMS for level in (0, 1, 2)
    }
    failures: list[str] = []

    def one_client(index: int) -> None:
        try:
            with ServeClient(socket_path, retry_budget=8,
                             backoff_base=0.02,
                             jitter_seed=index) as client:
                for source in (PROGRAMS[index],
                               PROGRAMS[-1 - index]):
                    result = client.compile([source],
                                            deadline_ms=120_000)
                    if not result["clean"]:
                        failures.append(
                            f"client {index}: compile was not clean")
                        return
                    want = references[(source, result["level"])]
                    if result["bytecode"] != want:
                        failures.append(
                            f"client {index}: bytecode differs from the "
                            f"batch driver at -O{result['level']}")
        except Exception as exc:  # noqa: BLE001 - gate reports, not raises
            failures.append(f"client {index}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=one_client, args=(i,))
               for i in range(len(PROGRAMS))]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180.0)
        if thread.is_alive():
            fail("a client hung: requests must resolve, not dangle")
    assert_alive(daemon)
    if failures:
        fail("; ".join(failures))
    print(f"serve-gate: phase 1 ok — {2 * len(PROGRAMS)} concurrent "
          "compiles byte-identical (one worker crash absorbed)")


def phase_overload_burst(socket_path: str, daemon) -> int:
    """Flood past high water; everything resolves as OK or clean BUSY."""
    outcomes: list[object] = [None] * 14

    def fire(index: int) -> None:
        try:
            with ServeClient(socket_path, retry_budget=0) as client:
                outcomes[index] = client.request("sleep", ms=500)
        except Exception as exc:  # noqa: BLE001
            outcomes[index] = exc

    threads = []
    for index in range(len(outcomes)):
        thread = threading.Thread(target=fire, args=(index,))
        thread.start()
        threads.append(thread)
        time.sleep(0.02)
    for thread in threads:
        thread.join(timeout=60.0)
        if thread.is_alive():
            fail("a burst request hung")
    assert_alive(daemon)
    served = shed = 0
    for index, outcome in enumerate(outcomes):
        if isinstance(outcome, dict):
            if outcome != {"slept_ms": 500}:
                fail(f"burst request {index} returned garbage: {outcome}")
            served += 1
        elif isinstance(outcome, ServeRequestError):
            if outcome.code != protocol.BUSY:
                fail(f"burst request {index} failed with "
                     f"{outcome.code}, want BUSY")
            if outcome.retry_after_ms is None:
                fail("BUSY response without a retry_after_ms hint")
            shed += 1
        else:
            fail(f"burst request {index}: {outcome!r}")
    if shed == 0:
        fail("overload burst shed nothing; admission control is absent")
    if served == 0:
        fail("overload burst served nothing; the daemon seized up")
    print(f"serve-gate: phase 2 ok — burst of {len(outcomes)}: "
          f"{served} served, {shed} cleanly shed")
    return shed


def phase_accounting(socket_path: str, shed_seen: int) -> None:
    with ServeClient(socket_path) as client:
        stats = client.stats()
    if stats.get("serverd.worker-restarts", 0) < 1:
        fail("serverd.worker-restarts < 1: the injected crash never "
             "fired or was never recovered from")
    if stats.get("serverd.shed", 0) < shed_seen:
        fail("serverd.shed undercounts the sheds clients observed")
    if stats.get("serverd.completed", 0) < 12:
        fail("serverd.completed is implausibly low")
    print("serve-gate: phase 3 ok — "
          f"worker-restarts={stats['serverd.worker-restarts']} "
          f"shed={stats['serverd.shed']} "
          f"completed={stats['serverd.completed']} "
          f"cache-hits={stats.get('serverd.cache-hits', 0)}")


def phase_drain(socket_path: str, daemon) -> None:
    holder = ServeClient(socket_path)
    outcome: dict = {}

    def in_flight() -> None:
        outcome["result"] = holder.request("sleep", ms=1_000)

    thread = threading.Thread(target=in_flight)
    thread.start()
    time.sleep(0.3)
    daemon.send_signal(signal.SIGTERM)
    thread.join(timeout=30.0)
    if thread.is_alive():
        fail("in-flight request dropped on SIGTERM instead of draining")
    holder.close()
    if outcome.get("result") != {"slept_ms": 1000}:
        fail(f"drained request returned {outcome.get('result')!r}")
    try:
        code = daemon.wait(timeout=30.0)
    except subprocess.TimeoutExpired:
        daemon.kill()
        fail("daemon did not exit after SIGTERM")
    if code != 0:
        fail(f"daemon exited {code} after a clean drain")
    print("serve-gate: phase 4 ok — SIGTERM drained the in-flight "
          "request and exited 0")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--crash-seed", type=int, default=7)
    args = parser.parse_args(argv)

    started = time.perf_counter()
    with tempfile.TemporaryDirectory() as tmp:
        socket_path = os.path.join(tmp, "serve.sock")
        daemon = start_daemon(socket_path,
                              os.path.join(tmp, "cache"),
                              args.crash_seed)
        try:
            phase_concurrent_compiles(socket_path, daemon)
            shed = phase_overload_burst(socket_path, daemon)
            phase_accounting(socket_path, shed)
            phase_drain(socket_path, daemon)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()
    print(f"serve-gate: ok in {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
