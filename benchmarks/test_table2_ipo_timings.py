"""Experiment E2/E8 — paper Table 2: interprocedural optimization
timings (DGE, DAE, inline) versus full compilation.

The paper's claim is relative: each link-time interprocedural pass runs
in substantially less time than compiling the program outright ("in all
cases, the optimization time is substantially less than that to compile
the program with GCC"), and the passes do real work (the paper quotes
functions/globals/arguments eliminated and functions inlined).

"GCC -O3" is modelled by our own full pipeline: front-end parse +
IR generation + per-module -O2 + native code generation, which is what
a static compiler does per translation unit.
"""

from __future__ import annotations

import time

from repro.backend import X86, compile_for_size
from repro.benchsuite import BENCHMARKS, load_source
from repro.driver.pipelines import optimize_module
from repro.frontend import compile_source
from repro.linker import link_modules
from repro.transforms.ipo import (
    DeadArgumentElimination, DeadGlobalElimination, FunctionInlining,
    Internalize,
)

from conftest import report


def _fresh_linked(name: str):
    module = compile_source(load_source(name), name)
    optimize_module(module, 2)
    linked = link_modules([module], name)
    Internalize(("main",)).run_on_module(linked)
    return linked


def _time_pass(make_pass, module) -> tuple[float, object]:
    pass_obj = make_pass()
    start = time.perf_counter()
    pass_obj.run_on_module(module)
    return time.perf_counter() - start, pass_obj


def _full_compile_seconds(name: str) -> float:
    start = time.perf_counter()
    module = compile_source(load_source(name), name)
    optimize_module(module, 2)
    compile_for_size(module, X86)
    return time.perf_counter() - start


def _run_table() -> list[tuple]:
    rows = []
    for info in BENCHMARKS:
        dge_seconds, dge = _time_pass(DeadGlobalElimination, _fresh_linked(info.name))
        dae_seconds, dae = _time_pass(DeadArgumentElimination, _fresh_linked(info.name))
        inline_seconds, inliner = _time_pass(FunctionInlining, _fresh_linked(info.name))
        compile_seconds = _full_compile_seconds(info.name)
        rows.append((info.spec_name, dge_seconds, dae_seconds, inline_seconds,
                     compile_seconds, dge.stats, dae.stats, inliner.stats))
    return rows


def test_table2_ipo_timings(benchmark):
    rows = benchmark.pedantic(_run_table, rounds=1, iterations=1)

    header = (f"{'Benchmark':<12} {'DGE':>8} {'DAE':>8} {'inline':>8} "
              f"{'compile':>9}")
    report()
    report("Table 2: Interprocedural optimization timings (seconds)")
    report(header)
    report("-" * len(header))
    totals = [0.0, 0.0, 0.0, 0.0]
    for name, dge_s, dae_s, inline_s, compile_s, *_ in rows:
        report(f"{name:<12} {dge_s:>8.4f} {dae_s:>8.4f} {inline_s:>8.4f} "
              f"{compile_s:>9.4f}")
        totals[0] += dge_s
        totals[1] += dae_s
        totals[2] += inline_s
        totals[3] += compile_s
    report("-" * len(header))
    count = len(rows)
    report(f"{'average':<12} {totals[0]/count:>8.4f} {totals[1]/count:>8.4f} "
          f"{totals[2]/count:>8.4f} {totals[3]/count:>9.4f}")

    # The paper's relative claim.  Averages must show a wide margin;
    # per-benchmark comparisons tolerate a couple of scheduler blips
    # (these are wall-clock measurements).
    assert totals[0] * 5 < totals[3], "DGE should be far cheaper than compiling"
    assert totals[1] * 5 < totals[3], "DAE should be far cheaper than compiling"
    assert totals[2] * 2 < totals[3], "inline should be far cheaper than compiling"
    violations = sum(
        1 for name, dge_s, dae_s, inline_s, compile_s, *_ in rows
        if max(dge_s, dae_s, inline_s) >= compile_s
    )
    assert violations <= 2, f"{violations} benchmarks had an IPO pass slower than compiling"


def test_table2_transformation_counts():
    """E8 — the passes do real work on real programs (paper: "DGE
    eliminates 331 functions and 557 global variables from 255.vortex
    ... inline inlines 1368 functions in 176.gcc")."""
    total_inlined = 0
    total_globals_deleted = 0
    total_functions_deleted = 0
    for info in BENCHMARKS:
        module = _fresh_linked(info.name)
        inliner = FunctionInlining()
        inliner.run_on_module(module)
        dge = DeadGlobalElimination()
        dge.run_on_module(module)
        total_inlined += inliner.stats.calls_inlined
        total_globals_deleted += dge.stats.globals_deleted
        total_functions_deleted += (dge.stats.functions_deleted
                                    + inliner.stats.functions_deleted)
    report(f"\ninlined calls: {total_inlined}, functions deleted: "
          f"{total_functions_deleted}, globals deleted: {total_globals_deleted}")
    assert total_inlined > 50, "the inliner should fire across the suite"
    assert total_functions_deleted > 30, "dead functions should be removed"
