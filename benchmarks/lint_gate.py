"""CI lint gate: the whole program suite must be clean at -O2.

Runs ``lc-lint --whole-program -Werror`` over every benchsuite program
and over the multi-TU example programs under ``examples/lc/``.  The
gate enforces the suite's zero-false-positive contract: benchmark and
example programs are correct, so any error or warning the
interprocedural checkers report against them is a regression in the
analysis, not in the programs.  NOTE-level advisories (e.g. unproven
variable-index bounds) are informational and do not fail the gate.

Exits nonzero on the first offending program.
"""

from __future__ import annotations

import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.tools import lc_lint  # noqa: E402

LEVEL = "2"


def gate(label: str, inputs: list[str]) -> bool:
    argv = inputs + ["--whole-program", "-Werror", "-O", LEVEL, "-q"]
    status = lc_lint(argv)
    print(f"lint-gate: {label}: "
          f"{'clean' if status == 0 else f'FAILED (exit {status})'}")
    return status == 0


def main() -> int:
    programs_dir = os.path.join(REPO, "src", "repro", "benchsuite",
                                "programs")
    failures = 0
    for entry in sorted(os.listdir(programs_dir)):
        if not entry.endswith(".lc"):
            continue
        if not gate(entry, [os.path.join(programs_dir, entry)]):
            failures += 1

    examples_dir = os.path.join(REPO, "examples", "lc")
    if os.path.isdir(examples_dir):
        # Each subdirectory is one multi-TU program; loose .lc files at
        # the top level are single-TU programs.
        loose = sorted(
            os.path.join(examples_dir, entry)
            for entry in os.listdir(examples_dir) if entry.endswith(".lc"))
        for path in loose:
            if not gate(os.path.relpath(path, REPO), [path]):
                failures += 1
        for entry in sorted(os.listdir(examples_dir)):
            subdir = os.path.join(examples_dir, entry)
            if not os.path.isdir(subdir):
                continue
            units = sorted(os.path.join(subdir, name)
                           for name in os.listdir(subdir)
                           if name.endswith(".lc"))
            if units and not gate(f"examples/lc/{entry}", units):
                failures += 1

    if failures:
        print(f"lint-gate: {failures} program(s) failed", file=sys.stderr)
        return 1
    print("lint-gate: all programs clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
