"""Experiment E6 — the instruction-set and encoding claims of
sections 2.1 and 4.1.3.

* "The entire LLVM instruction set consists of only 31 opcodes";
* "most instructions requiring only a single 32-bit word each";
* opcode overloading: one ``add`` serves every operand type;
* "large programs are encoded less efficiently than smaller ones
  because they have a larger set of register values available at any
  point" — the packed fraction falls as functions grow.
"""

from __future__ import annotations

from repro.benchsuite import BENCHMARKS
from repro.bitcode.writer import BytecodeWriter
from repro.core.instructions import Opcode

from conftest import report


def test_exactly_31_opcodes():
    assert len(Opcode) == 31


def test_single_word_instruction_fraction(suite, benchmark):
    def measure():
        results = []
        for info in BENCHMARKS:
            writer = BytecodeWriter()
            writer.write(suite[info.name])
            results.append((info.spec_name, writer.packed_count,
                            writer.escaped_count))
        return results

    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    report()
    report("Encoding census: instructions fitting one 32-bit word")
    grand_packed = 0
    grand_total = 0
    for name, packed, escaped in results:
        total = packed + escaped
        fraction = packed / total if total else 1.0
        report(f"{name:<12} {packed:>6}/{total:<6} ({fraction:.0%})")
        grand_packed += packed
        grand_total += total
    overall = grand_packed / grand_total
    report(f"{'overall':<12} {grand_packed:>6}/{grand_total:<6} ({overall:.0%})")
    assert overall >= 0.5, "most instructions should fit a single word"


def test_larger_functions_pack_worse(suite):
    """The paper's observation that bigger value sets defeat the packed
    form: the *smallest* programs should pack at least as well as the
    largest ones on average."""
    measured = []
    for info in BENCHMARKS:
        module = suite[info.name]
        writer = BytecodeWriter()
        writer.write(module)
        total = writer.packed_count + writer.escaped_count
        measured.append((module.instruction_count(),
                         writer.packed_count / total if total else 1.0))
    measured.sort()
    half = len(measured) // 2
    small_mean = sum(f for _, f in measured[:half]) / half
    large_mean = sum(f for _, f in measured[half:]) / (len(measured) - half)
    report(f"\npacked fraction: small programs {small_mean:.0%}, "
          f"large programs {large_mean:.0%}")
    assert small_mean >= large_mean - 0.05


def test_opcode_overloading(suite):
    """One add opcode serves int and float operands alike."""
    add_types = set()
    for name in ("equake", "art"):
        for function in suite[name].defined_functions():
            for inst in function.instructions():
                if inst.opcode == Opcode.ADD:
                    add_types.add(str(inst.type))
    assert len(add_types) >= 2, "add should be used at multiple types"
