"""Experiment E1 — paper Table 1: "Loads and Stores which are provably
typed".

Runs Data Structure Analysis over every suite program and reports the
fraction of static loads/stores whose target object's type is reliably
known, next to the paper's number for the corresponding SPEC benchmark.

The claim being reproduced is the *shape*: disciplined programs score
near-perfect, custom-allocator programs score lowest, the rest sit in
between, and the suite average lands near the paper's 68%.
"""

from __future__ import annotations

from repro.analysis.dsa import DataStructureAnalysis
from repro.benchsuite import BENCHMARKS

from conftest import report

#: Grouping used for the shape assertions.
DISCIPLINED = {"art", "mcf"}
LOW_TIER = {"parser", "perlbmk", "gcc", "vortex", "gap"}


def _run_table(suite) -> dict[str, tuple[int, int, float]]:
    rows = {}
    for info in BENCHMARKS:
        report = DataStructureAnalysis(suite[info.name]).report()
        rows[info.name] = (report.typed, report.untyped, report.typed_percent)
    return rows


def test_table1_typed_accesses(suite, benchmark):
    rows = benchmark.pedantic(_run_table, args=(suite,), rounds=1, iterations=1)

    header = (f"{'Benchmark':<12} {'Typed':>7} {'Untyped':>8} "
              f"{'Typed %':>8} {'Paper %':>8}")
    report()
    report("Table 1: Loads and Stores which are provably typed")
    report(header)
    report("-" * len(header))
    total_percent = 0.0
    for info in BENCHMARKS:
        typed, untyped, percent = rows[info.name]
        total_percent += percent
        report(f"{info.spec_name:<12} {typed:>7} {untyped:>8} "
              f"{percent:>7.1f}% {info.paper_typed_percent:>7.1f}%")
    average = total_percent / len(BENCHMARKS)
    report("-" * len(header))
    report(f"{'average':<12} {'':>7} {'':>8} {average:>7.1f}% {68.04:>7.1f}%")

    # Shape assertions.
    for name in DISCIPLINED:
        assert rows[name][2] >= 90.0, f"{name} should be near-perfectly typed"
    low = [rows[name][2] for name in LOW_TIER]
    high = [rows[name][2] for name in DISCIPLINED]
    assert max(low) < min(high), "allocator/punning programs must score lowest"
    assert 55.0 <= average <= 85.0, "suite average should sit near the paper's 68%"


def test_table1_disciplined_near_perfect(suite):
    """Paper: "Benchmarks written in a more disciplined style ... had
    nearly perfect results, scoring close to 100% in most cases"."""
    for name in DISCIPLINED:
        report = DataStructureAnalysis(suite[name]).report()
        assert report.typed_percent >= 95.0
