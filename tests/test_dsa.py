"""Tests for Data Structure Analysis: points-to structure, type
speculation, collapse rules, and the Table 1 typed-access verdicts."""

import pytest

from repro.analysis.dsa import DataStructureAnalysis, _fold_arrays
from repro.core import parse_module, types
from repro.core.instructions import LoadInst, StoreInst
from repro.driver import compile_and_link
from repro.frontend import compile_source


def _analyse(source: str, lc: bool = False):
    if lc:
        module = compile_and_link([source], "t")
    else:
        module = parse_module(source)
    return module, DataStructureAnalysis(module)


def _verdicts(module, dsa):
    results = {}
    for fn in module.defined_functions():
        for inst in fn.instructions():
            if isinstance(inst, LoadInst):
                results[inst.name or id(inst)] = dsa.is_typed_access(
                    inst.pointer, inst.type
                )
            elif isinstance(inst, StoreInst):
                key = f"store.{inst.pointer.name or id(inst)}"
                results[key] = dsa.is_typed_access(
                    inst.pointer, inst.value.type
                )
    return results


class TestTypedVerdicts:
    def test_clean_struct_access_typed(self):
        module, dsa = _analyse("""
%pair = type { int, double }
int %f() {
entry:
  %p = malloc %pair
  %f0 = getelementptr %pair* %p, long 0, uint 0
  store int 1, int* %f0
  %v = load int* %f0
  ret int %v
}
""")
        assert all(_verdicts(module, dsa).values())

    def test_mistyped_access_collapses(self):
        module, dsa = _analyse("""
%pair = type { int, int }
int %f() {
entry:
  %p = malloc %pair
  %raw = cast %pair* %p to double*
  store double 1.0, double* %raw
  %f0 = getelementptr %pair* %p, long 0, uint 0
  %v = load int* %f0
  ret int %v
}
""")
        verdicts = _verdicts(module, dsa)
        assert not any(verdicts.values()), "the bad store poisons the node"

    def test_void_star_round_trip_stays_typed(self):
        """Paper footnote 8: DSA extracts types for objects stored into
        and loaded out of generic void* (here: sbyte*) structures."""
        module, dsa = _analyse("""
%box = type { sbyte* }
int %f() {
entry:
  %obj = malloc int
  store int 7, int* %obj
  %b = malloc %box
  %slot = getelementptr %box* %b, long 0, uint 0
  %erased = cast int* %obj to sbyte*
  store sbyte* %erased, sbyte** %slot
  %back = load sbyte** %slot
  %typed = cast sbyte* %back to int*
  %v = load int* %typed
  ret int %v
}
""")
        verdicts = _verdicts(module, dsa)
        assert verdicts["v"], "the int object stays typed through the box"

    def test_stride_mismatch_collapses(self):
        module, dsa = _analyse("""
%rec = type { int, int, int }
int %f(long %i) {
entry:
  %p = malloc %rec
  %words = cast %rec* %p to int*
  %slot = getelementptr int* %words, long %i
  %v = load int* %slot
  %f0 = getelementptr %rec* %p, long 0, uint 0
  %w = load int* %f0
  %s = add int %v, %w
  ret int %s
}
""")
        verdicts = _verdicts(module, dsa)
        assert not verdicts["w"], "int-stepping over a struct collapses it"

    def test_int_to_pointer_is_unknown(self):
        module, dsa = _analyse("""
int %f(long %addr) {
entry:
  %p = cast long %addr to int*
  %v = load int* %p
  ret int %v
}
""")
        assert not _verdicts(module, dsa)["v"]

    def test_external_call_poisons_argument(self):
        module, dsa = _analyse("""
declare void %mystery(int* %p)
int %f() {
entry:
  %p = malloc int
  call void %mystery(int* %p)
  %v = load int* %p
  ret int %v
}
""")
        assert not _verdicts(module, dsa)["v"]

    def test_known_safe_external_does_not_poison(self):
        module, dsa = _analyse("""
declare int %print_int(int %x)
int %f() {
entry:
  %p = malloc int
  store int 3, int* %p
  %v = load int* %p
  %r = call int %print_int(int %v)
  ret int %v
}
""")
        assert _verdicts(module, dsa)["v"]

    def test_array_folding(self):
        assert _fold_arrays(types.array(types.INT, 8)) is types.INT
        assert _fold_arrays(
            types.array(types.array(types.SBYTE, 2), 3)
        ) is types.SBYTE
        module, dsa = _analyse("""
%buf = internal global [16 x int] zeroinitializer
int %f(long %i) {
entry:
  %p = getelementptr [16 x int]* %buf, long 0, long %i
  %v = load int* %p
  ret int %v
}
""")
        assert _verdicts(module, dsa)["v"]

    def test_interprocedural_unification(self):
        """A callee's bad access poisons the caller's object."""
        module, dsa = _analyse("""
%rec = type { int, int }
internal void %bad(%rec* %p) {
entry:
  %raw = cast %rec* %p to long*
  store long 1, long* %raw
  ret void
}
int %f() {
entry:
  %p = malloc %rec
  call void %bad(%rec* %p)
  %f0 = getelementptr %rec* %p, long 0, uint 0
  %v = load int* %f0
  ret int %v
}
""")
        assert not _verdicts(module, dsa)["v"]

    def test_phi_of_field_pointers(self):
        """Merging two pointers to the *same field* of different objects
        must not collapse anything (the offset-forwarding case)."""
        module, dsa = _analyse("""
%rec = type { int, int }
int %f(bool %c) {
entry:
  %a = malloc %rec
  %b = malloc %rec
  br bool %c, label %left, label %right
left:
  %fa = getelementptr %rec* %a, long 0, uint 1
  br label %join
right:
  %fb = getelementptr %rec* %b, long 0, uint 1
  br label %join
join:
  %p = phi int* [ %fa, %left ], [ %fb, %right ]
  %v = load int* %p
  ret int %v
}
""")
        assert _verdicts(module, dsa)["v"]


class TestCustomAllocatorPattern:
    SOURCE = """
struct Obj { int a; int b; };
typedef struct Obj Obj;
static char *pool = null;
static long cursor = 0;
static char *my_alloc(long n) {
  if (pool == null) { pool = malloc(char, 4096); }
  char *p = pool + cursor;
  cursor = cursor + n;
  return p;
}
int main() {
  Obj *o = (Obj*)my_alloc(sizeof(Obj));
  o->a = 1;
  o->b = 2;
  return o->a + o->b;
}
"""

    def test_pool_objects_untyped(self):
        module, dsa = _analyse(self.SOURCE, lc=True)
        report = dsa.report()
        assert report.untyped > 0
        # Scalar globals remain typed: the fraction is neither 0 nor 100.
        assert 0 < report.typed_percent < 100

    def test_typed_malloc_equivalent_is_typed(self):
        source = """
struct Obj { int a; int b; };
typedef struct Obj Obj;
int main() {
  Obj *o = malloc(Obj);
  o->a = 1;
  o->b = 2;
  return o->a + o->b;
}
"""
        module, dsa = _analyse(source, lc=True)
        assert dsa.report().typed_percent == 100.0


class TestAliasQueries:
    def test_distinct_structures_disjoint(self):
        module, dsa = _analyse("""
%node = type { int, %node* }
void %f() {
entry:
  %list1 = malloc %node
  %list2 = malloc %node
  ret void
}
""")
        fn = module.functions["f"]
        a, b = list(fn.instructions())[:2]
        assert not dsa.may_alias(a, b)

    def test_linked_objects_merge(self):
        module, dsa = _analyse("""
%node = type { int, %node* }
void %f() {
entry:
  %a = malloc %node
  %b = malloc %node
  %next = getelementptr %node* %a, long 0, uint 1
  store %node* %b, %node** %next
  %loaded = load %node** %next
  ret void
}
""")
        fn = module.functions["f"]
        instructions = list(fn.instructions())
        b = instructions[1]
        loaded = instructions[4]
        assert dsa.may_alias(b, loaded)


class TestReport:
    def test_empty_module(self):
        module = parse_module("%g = global int 1")
        report = DataStructureAnalysis(module).report()
        assert report.total == 0
        assert report.typed_percent == 100.0
