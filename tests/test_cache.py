"""Tests for the incremental compilation cache and the parallel batch
driver (docs/DRIVER.md).

The contract under test: caching and parallelism are *output-invariant*
accelerators — a warm cache skips the front-end and per-module
optimizer for unchanged translation units, a parallel batch compiles
TUs concurrently, and in every case the linked module (and its
bytecode) is byte-for-byte what a cold, serial build produces.
"""

from __future__ import annotations

import os

import pytest

from repro.benchsuite import benchmark_names, load_source
from repro.bitcode import write_bytecode
from repro.core import print_module
from repro.driver import (
    BytecodeCache, LifelongSession, compile_and_link,
    compile_translation_units,
)
from repro.driver.cache import toolchain_fingerprint
from repro.sanalysis import run_checkers

HELPERS = [
    f"int helper{i}(int x) {{ return x * {i + 2} + 1; }}" for i in range(6)
]
MAIN = ("".join(f"int helper{i}(int x);\n" for i in range(6))
        + "int main() { return helper0(3) + helper1(4) + helper5(5); }")
BATCH = [MAIN] + HELPERS


class TestCacheKeys:
    def test_key_is_content_addressed(self):
        cache = BytecodeCache()
        assert cache.key("int f;", 2) == cache.key("int f;", 2)
        assert cache.key("int f;", 2) != cache.key("int g;", 2)
        assert cache.key("int f;", 2) != cache.key("int f;", 3)
        assert cache.key("int f;", 2) != cache.key("int f;", 2, tag="program")

    def test_key_includes_toolchain_fingerprint(self):
        assert toolchain_fingerprint() in repr(toolchain_fingerprint())
        cache = BytecodeCache()
        # Keys are full SHA-256 hex digests.
        assert len(cache.key("x", 0)) == 64


class TestHitMiss:
    def test_miss_then_hit(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        source = HELPERS[0]
        cold = compile_and_link([source], "p", 2, lto=False, cache=cache)
        assert cache.statistics()["cache-misses"] == 1
        assert cache.statistics()["cache-stores"] == 1
        warm = compile_and_link([source], "p", 2, lto=False, cache=cache)
        assert cache.statistics()["cache-hits"] == 1
        assert print_module(warm) == print_module(cold)

    def test_in_memory_cache(self):
        cache = BytecodeCache()
        compile_and_link([HELPERS[0]], "p", 2, cache=cache)
        compile_and_link([HELPERS[0]], "p", 2, cache=cache)
        stats = cache.statistics()
        assert stats["cache-hits"] == 1 and stats["cache-misses"] == 1
        assert len(cache) == 1

    def test_level_change_misses(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        compile_and_link([HELPERS[0]], "p", 1, cache=cache)
        compile_and_link([HELPERS[0]], "p", 2, cache=cache)
        stats = cache.statistics()
        assert stats["cache-hits"] == 0 and stats["cache-misses"] == 2

    def test_cached_output_identical_to_uncached(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        reference = write_bytecode(compile_and_link(BATCH, "batch", 2))
        cold = write_bytecode(compile_and_link(BATCH, "batch", 2, cache=cache))
        warm = write_bytecode(compile_and_link(BATCH, "batch", 2, cache=cache))
        assert cold == reference
        assert warm == reference


class TestCorruptionRecovery:
    def test_corrupted_entry_is_evicted_and_recompiled(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        source = HELPERS[1]
        good = compile_and_link([source], "p", 2, cache=cache)
        # Smash every stored entry.
        for entry in os.listdir(tmp_path):
            with open(tmp_path / entry, "wb") as handle:
                handle.write(b"llvm\xff garbage")
        recovered = compile_and_link([source], "p", 2, cache=cache)
        assert print_module(recovered) == print_module(good)
        stats = cache.statistics()
        assert stats["cache-evictions"] >= 1
        assert stats["cache-misses"] == 2  # corrupted hit reclassified
        # The evicted entry was re-stored; third run hits cleanly.
        compile_and_link([source], "p", 2, cache=cache)
        assert cache.statistics()["cache-hits"] == 1

    def test_truncated_entry(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        compile_and_link([HELPERS[2]], "p", 2, lto=False, cache=cache)
        for entry in os.listdir(tmp_path):
            with open(tmp_path / entry, "r+b") as handle:
                handle.truncate(5)
        module = compile_and_link([HELPERS[2]], "p", 2, lto=False, cache=cache)
        assert "helper2" in module.functions

    def test_invalidate(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        key = cache.key(HELPERS[3], 2)
        assert not cache.invalidate(key)
        compile_and_link([HELPERS[3]], "p", 2, cache=cache)
        assert cache.invalidate(key)
        assert cache.load(key) is None


class TestConcurrentCounters:
    """The ``--jobs`` driver shares one cache across worker threads;
    every counter mutation must happen under ``cache._lock`` so the
    ``-stats`` totals are exact, not merely close.  The hammer below
    would lose increments with unguarded ``+=`` under free-threaded
    interpreters (and flakily even under the GIL, since ``+=`` is a
    read-modify-write)."""

    @pytest.mark.parametrize("on_disk", [False, True])
    def test_counter_conservation_under_hammer(self, tmp_path, on_disk):
        import random
        import threading

        cache = BytecodeCache(str(tmp_path / "hammer") if on_disk else None)
        n_threads, rounds = 8, 250
        barrier = threading.Barrier(n_threads)
        local = [
            {"loads": 0, "stores": 0, "evicts": 0,
             "tloads": 0, "tstores": 0, "tevicts": 0}
            for _ in range(n_threads)
        ]
        errors: list[BaseException] = []

        def hammer(tid: int) -> None:
            rng = random.Random(tid)
            mine = local[tid]
            try:
                barrier.wait()
                for i in range(rounds):
                    key = cache.key(f"k{rng.randrange(12)}", 2)
                    op = rng.randrange(6)
                    if op == 0:
                        cache.store_bytes(key, b"payload%d" % i)
                        mine["stores"] += 1
                    elif op == 1:
                        cache.load_bytes(key)
                        mine["loads"] += 1
                    elif op == 2:
                        if cache.invalidate(key):
                            mine["evicts"] += 1
                    elif op == 3:
                        cache.store_text(key, f"summary {i}")
                        mine["tstores"] += 1
                    elif op == 4:
                        cache.load_text(key)
                        mine["tloads"] += 1
                    else:
                        if cache.evict_text(key):
                            mine["tevicts"] += 1
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(tid,))
                   for tid in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        def total(counter: str) -> int:
            return sum(mine[counter] for mine in local)

        stats = cache.statistics()
        # Every load_bytes call increments exactly one of hits/misses;
        # stores/evictions must match the calls that performed them.
        # (Stored entries are always validly framed, so no eviction can
        # come from the corruption path.)
        assert stats["cache-hits"] + stats["cache-misses"] == total("loads")
        assert stats["cache-stores"] == total("stores")
        assert stats["cache-evictions"] == total("evicts")
        assert stats["summary-hits"] + stats["summary-misses"] == total("tloads")
        assert stats["summary-stores"] == total("tstores")
        assert stats["summary-evictions"] == total("tevicts")


class TestParallelDriver:
    def test_parallel_matches_serial(self):
        serial = compile_and_link(BATCH, "batch", 2, jobs=1)
        parallel = compile_and_link(BATCH, "batch", 2, jobs=4)
        assert write_bytecode(parallel) == write_bytecode(serial)

    def test_parallel_with_cache(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        cold = compile_and_link(BATCH, "batch", 2, cache=cache, jobs=4)
        warm = compile_and_link(BATCH, "batch", 2, cache=cache, jobs=4)
        assert write_bytecode(warm) == write_bytecode(cold)
        assert cache.statistics()["cache-hits"] == len(BATCH)

    def test_link_order_is_input_order(self):
        modules = compile_translation_units(BATCH, "batch", 0, jobs=4)
        assert [m.name for m in modules] == [
            f"batch.tu{i}" for i in range(len(BATCH))
        ]


class TestWarmSkipsWork:
    def test_warm_cache_skips_frontend_over_benchsuite(self, tmp_path,
                                                       monkeypatch):
        """Acceptance: warm compile_and_link over the 15-program suite
        never re-enters the front-end and is byte-identical to cold.

        The skipped work is asserted directly (front-end call count)
        rather than by wall clock, which is noisy under a loaded test
        runner; the strict speedup gate lives in
        ``benchmarks/cache_warm_check.py`` (run by CI) and in the
        warm/cold timing printed there.
        """
        from repro.driver import pipelines

        calls = {"frontend": 0}
        real_compile_source = pipelines.compile_source

        def counting_compile_source(source, name):
            calls["frontend"] += 1
            return real_compile_source(source, name)

        monkeypatch.setattr(pipelines, "compile_source",
                            counting_compile_source)

        cache = BytecodeCache(str(tmp_path))
        sources = {name: load_source(name) for name in benchmark_names()}

        cold = {
            name: write_bytecode(
                compile_and_link([source], name, 2, lto=False, cache=cache))
            for name, source in sources.items()
        }
        assert calls["frontend"] == len(sources)

        warm = {
            name: write_bytecode(
                compile_and_link([source], name, 2, lto=False, cache=cache))
            for name, source in sources.items()
        }

        assert warm == cold
        assert calls["frontend"] == len(sources)  # zero warm front-end runs
        stats = cache.statistics()
        assert stats["cache-misses"] == len(sources)
        assert stats["cache-hits"] == len(sources)


class TestReloadedModulesLintIdentically:
    def test_lint_identical_through_cache(self, tmp_path):
        """Acceptance: diagnostics on a cache-reloaded module match the
        in-memory ones, locs included (the roundtrip fixes at work)."""
        cache = BytecodeCache(str(tmp_path))
        source = load_source("parser")
        fresh = compile_and_link([source], "parser", 2, cache=cache)
        reloaded = compile_and_link([source], "parser", 2, cache=cache)
        assert cache.statistics()["cache-hits"] == 1
        fresh_diags = [d.render("parser") for d in run_checkers(fresh)]
        reloaded_diags = [d.render("parser") for d in run_checkers(reloaded)]
        assert reloaded_diags == fresh_diags
        assert print_module(reloaded) == print_module(fresh)


class TestLifelongSessionCache:
    def test_session_uses_and_invalidates_cache(self):
        cache = BytecodeCache()
        sources = [
            "int compute(int x) { return x * 3 + 1; }",
            "int compute(int x); int main() { return compute(13); }",
        ]
        first = LifelongSession(sources, "prog", 2, cache=cache, jobs=2)
        assert cache.statistics()["cache-misses"] == len(sources)
        program_key = first._program_key
        assert cache.load_bytes(program_key) == first.bytecode

        second = LifelongSession(sources, "prog", 2, cache=cache)
        assert second.bytecode == first.bytecode
        assert cache.statistics()["cache-hits"] >= len(sources)

        # The idle-time reoptimizer rewrites IR; the stale program
        # entry must be invalidated and replaced with the new bytecode.
        for _ in range(3):
            second.run()
        evictions_before = cache.statistics()["cache-evictions"]
        second.reoptimize()
        assert cache.statistics()["cache-evictions"] == evictions_before + 1
        assert cache.load_bytes(program_key) == second.bytecode

    def test_session_runs_correctly_from_cache(self):
        cache = BytecodeCache()
        sources = ["int main() { return 17 + 25; }"]
        LifelongSession(sources, "p", 2, cache=cache)
        warm = LifelongSession(sources, "p", 2, cache=cache)
        assert warm.run().exit_value == 42


class TestBoundedCacheLRU:
    """``max_bytes`` eviction: least-recently-used entries go first,
    the just-stored entry is never its own victim, and the counters
    surface through ``-stats`` (the lc-serverd shared-cache contract,
    docs/SERVING.md)."""

    def _store(self, cache, label: str, size: int = 64) -> str:
        key = cache.key(label, 2)
        cache.store_bytes(key, bytes(size))
        return key

    @pytest.mark.parametrize("on_disk", [False, True])
    def test_oldest_entry_is_evicted_first(self, tmp_path, on_disk):
        cache = BytecodeCache(str(tmp_path) if on_disk else None,
                              max_bytes=220)
        first = self._store(cache, "a")    # ~84 framed bytes each
        second = self._store(cache, "b")
        third = self._store(cache, "c")    # budget blown: "a" must go
        assert cache.load_bytes(first) is None
        assert cache.load_bytes(second) is not None
        assert cache.load_bytes(third) is not None
        assert cache.statistics()["cache-lru-evictions"] == 1

    @pytest.mark.parametrize("on_disk", [False, True])
    def test_hit_bumps_recency(self, tmp_path, on_disk):
        import time as _time

        cache = BytecodeCache(str(tmp_path) if on_disk else None,
                              max_bytes=220)
        first = self._store(cache, "a")
        second = self._store(cache, "b")
        if on_disk:
            _time.sleep(0.02)  # let the utime bump order the mtimes
        assert cache.load_bytes(first) is not None  # "a" is now newest
        if on_disk:
            _time.sleep(0.02)
        self._store(cache, "c")
        assert cache.load_bytes(second) is None  # "b" was the LRU
        assert cache.load_bytes(first) is not None

    @pytest.mark.parametrize("on_disk", [False, True])
    def test_oversized_entry_still_caches(self, tmp_path, on_disk):
        """The entry being stored is never its own victim: a single
        artifact bigger than the whole budget still caches (and evicts
        everything else)."""
        cache = BytecodeCache(str(tmp_path) if on_disk else None,
                              max_bytes=100)
        small = self._store(cache, "small", size=16)
        big = self._store(cache, "big", size=4096)
        assert cache.load_bytes(big) is not None
        assert cache.load_bytes(small) is None

    def test_unbounded_cache_never_lru_evicts(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        for index in range(8):
            self._store(cache, f"entry{index}", size=4096)
        assert cache.statistics()["cache-lru-evictions"] == 0
        assert len(cache) == 8

    def test_disk_eviction_tolerates_vanished_victims(self, tmp_path):
        """Multi-process safety: a concurrent evictor deleting the
        victim between scan and unlink must not break eviction."""
        cache = BytecodeCache(str(tmp_path), max_bytes=220)
        first = self._store(cache, "a")
        self._store(cache, "b")
        # Simulate the other daemon winning the race for "a".
        os.unlink(tmp_path / f"{first}.bc")
        third = self._store(cache, "c")  # must not raise
        assert cache.load_bytes(third) is not None

    def test_eviction_drops_sidecar_with_entry(self, tmp_path):
        cache = BytecodeCache(str(tmp_path), max_bytes=220)
        first = self._store(cache, "a")
        cache.store_text(first, "summary of a")
        self._store(cache, "b")
        self._store(cache, "c")
        assert cache.load_bytes(first) is None
        assert cache.load_text(first) is None


class TestCacheLatencyStats:
    def test_hit_rate_and_latency_counters(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        key = cache.key("x", 2)
        cache.store_bytes(key, b"payload")
        assert cache.load_bytes(key) == b"payload"
        assert cache.load_bytes(cache.key("missing", 2)) is None
        stats = cache.statistics()
        assert stats["cache-hit-rate-pct"] == 50  # 1 hit / 2 lookups
        assert stats["cache-lookup-avg-us"] >= 0
        assert stats["cache-store-avg-us"] >= 0
        assert "cache-lru-evictions" in stats

    def test_hit_rate_with_no_lookups_is_zero(self):
        assert BytecodeCache().statistics()["cache-hit-rate-pct"] == 0
