"""Tests for the supporting infrastructure: pass manager, cloning,
module symbol tables, basic-block surgery, and transform utilities."""

import pytest

from repro.core import (
    ConstantBool, ConstantInt, IRBuilder, Module, parse_function,
    parse_module, print_function, print_module, types, verify_function,
    verify_module,
)
from repro.core.basicblock import BasicBlock
from repro.core.instructions import BranchInst, Opcode
from repro.core.module import Function, Linkage
from repro.execution import Interpreter
from repro.transforms import (
    DeadCodeElimination, FunctionPassAdaptor, ModulePassAdaptor,
    PassManager, SimplifyCFG,
)
from repro.transforms.cloning import clone_function
from repro.transforms.utils import (
    constant_fold_terminator, delete_dead_instructions, fold_instruction,
    is_trivially_dead,
)


class TestPassManager:
    def test_runs_in_order(self):
        log = []
        manager = PassManager()
        manager.add(ModulePassAdaptor(lambda m: log.append("first") or False,
                                      "first"))
        manager.add(ModulePassAdaptor(lambda m: log.append("second") or False,
                                      "second"))
        manager.run(Module("m"))
        assert log == ["first", "second"]

    def test_function_pass_over_definitions_only(self):
        module = parse_module("""
declare void %ext()
int %defined() {
entry:
  ret int 0
}
""")
        seen = []
        manager = PassManager()
        manager.add(FunctionPassAdaptor(
            lambda f: seen.append(f.name) or False, "collect"
        ))
        manager.run(module)
        assert seen == ["defined"]

    def test_changed_aggregation(self):
        module = parse_module("""
int %f() {
entry:
  %dead = add int 1, 2
  ret int 0
}
""")
        manager = PassManager()
        manager.add(DeadCodeElimination())
        assert manager.run(module) is True
        assert manager.run(module) is False

    def test_fixpoint(self):
        module = parse_module("""
int %f() {
entry:
  %dead = add int 1, 2
  ret int 0
}
""")
        manager = PassManager()
        manager.add(DeadCodeElimination())
        iterations = manager.run_until_fixpoint(module)
        assert iterations == 2  # one changing run + one quiescent run

    def test_timings_recorded(self):
        module = parse_module("int %f() {\nentry:\n  ret int 0\n}")
        manager = PassManager()
        manager.add(SimplifyCFG())
        manager.run(module)
        assert "simplifycfg" in manager.timings.seconds
        assert manager.timings.runs["simplifycfg"] == 1
        assert "simplifycfg" in manager.timings.report()

    def test_verify_each_catches_bad_pass(self):
        module = parse_module("int %f(int %x) {\nentry:\n  ret int %x\n}")

        def vandal(function):
            # Delete the terminator: invalid IR.
            function.entry_block.instructions[-1].erase_from_parent()
            return True

        manager = PassManager(verify_each=True)
        manager.add(FunctionPassAdaptor(vandal, "vandal"))
        from repro.core import VerificationError

        with pytest.raises(VerificationError):
            manager.run(module)

    def test_non_pass_rejected(self):
        with pytest.raises(TypeError):
            PassManager().add(object())

    def test_verify_each_catches_changed_flag_liar(self):
        """A pass that mutates IR while returning False is a planted
        liar: fixpoint drivers would stop early and verification would
        be skipped on its say-so.  verify_each audits the claim with a
        serialization digest and names the offender."""
        from repro.transforms.passmanager import ChangedFlagLie

        module = parse_module("""
int %f() {
entry:
  %dead = add int 1, 2
  ret int 0
}
""")

        def liar(function):
            function.entry_block.instructions[0].erase_from_parent()
            return False  # the lie

        manager = PassManager(verify_each=True)
        manager.add(FunctionPassAdaptor(liar, "liar"))
        with pytest.raises(ChangedFlagLie) as excinfo:
            manager.run(module)
        assert excinfo.value.pass_name == "liar"

    def test_verify_each_tolerates_over_reporting(self):
        """Claiming a change while moving nothing is conservative, not
        a lie — the digest proves nothing moved, so the manager skips
        the redundant re-verify and carries on."""
        module = parse_module("int %f() {\nentry:\n  ret int 0\n}")
        manager = PassManager(verify_each=True)
        manager.add(ModulePassAdaptor(lambda m: True, "chicken-little"))
        assert manager.run(module) is True

    def test_honest_false_passes_audit(self):
        module = parse_module("int %f() {\nentry:\n  ret int 0\n}")
        manager = PassManager(verify_each=True)
        manager.add(ModulePassAdaptor(lambda m: False, "noop"))
        assert manager.run(module) is False

    def test_shared_timings_sink(self):
        """Two managers given one sink merge their reports, so a driver
        invocation prints each pass exactly once (-time-passes audit)."""
        from repro.transforms.passmanager import PassTimings

        sink = PassTimings()
        module = parse_module("int %f() {\nentry:\n  ret int 0\n}")
        first = PassManager(timings=sink)
        first.add(SimplifyCFG())
        first.run(module)
        second = PassManager(timings=sink)
        second.add(SimplifyCFG())
        second.run(module)
        assert sink.runs["simplifycfg"] == 2
        assert second.timings is sink
        assert sink.report().count("simplifycfg") == 1


class TestCloning:
    def test_clone_function_is_deep(self):
        module = parse_module("""
int %original(int %x) {
entry:
  %c = setlt int %x, 10
  br bool %c, label %small, label %big
small:
  %a = add int %x, 1
  br label %join
big:
  %b = mul int %x, 2
  br label %join
join:
  %r = phi int [ %a, %small ], [ %b, %big ]
  ret int %r
}
""")
        original = module.functions["original"]
        clone = clone_function(original, "copy")
        verify_module(module)
        assert clone.parent is module
        # Same behaviour, distinct objects.
        assert Interpreter(module).run("copy", [3]) == \
            Interpreter(module).run("original", [3]) == 4
        for old_block, new_block in zip(original.blocks, clone.blocks):
            assert old_block is not new_block
            for old_inst, new_inst in zip(old_block.instructions,
                                          new_block.instructions):
                assert old_inst is not new_inst

    def test_clone_then_mutate_does_not_leak(self):
        module = parse_module("""
int %original(int %x) {
entry:
  %a = add int %x, 1
  ret int %a
}
""")
        original = module.functions["original"]
        before = print_function(original)
        clone = clone_function(original, "copy")
        clone.entry_block.instructions[0].set_operand(
            1, ConstantInt(types.INT, 99)
        )
        assert print_function(original) == before


class TestModuleSymbols:
    def test_duplicate_symbol_rejected(self):
        module = Module("m")
        module.new_global(types.INT, "thing")
        with pytest.raises(ValueError, match="already defined"):
            module.new_function(types.function(types.VOID, []), "thing")

    def test_unique_symbol(self):
        module = Module("m")
        module.new_global(types.INT, "x")
        assert module.unique_symbol("x") == "x.1"
        module.new_global(types.INT, "x.1")
        assert module.unique_symbol("x") == "x.2"
        assert module.unique_symbol("fresh") == "fresh"

    def test_get_or_insert_function(self):
        module = Module("m")
        ty = types.function(types.INT, [types.INT])
        first = module.get_or_insert_function(ty, "f")
        again = module.get_or_insert_function(ty, "f")
        assert first is again
        with pytest.raises(TypeError):
            module.get_or_insert_function(types.function(types.VOID, []), "f")

    def test_erase_function(self):
        module = parse_module("""
internal int %gone() {
entry:
  ret int 1
}
""")
        module.functions["gone"].erase_from_parent()
        assert "gone" not in module.functions

    def test_named_type_conflict(self):
        module = Module("m")
        module.add_named_type(types.named_struct("t", [types.INT]))
        with pytest.raises(ValueError, match="already defined"):
            module.add_named_type(types.named_struct("t", [types.INT]))


class TestBlockSurgery:
    def test_split_at(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %a = add int %x, 1
  %b = add int %a, 2
  ret int %b
}
""")
        entry = fn.entry_block
        tail = entry.split_at(1, "tail")
        verify_function(fn)
        assert [b.name for b in fn.blocks] == ["entry", "tail"]
        assert len(entry.instructions) == 2  # %a + br
        assert isinstance(entry.terminator, BranchInst)
        assert Interpreter(fn.parent).run("f", [1]) == 4

    def test_split_updates_successor_phis(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %a = add int %x, 1
  br label %next
next:
  %p = phi int [ %a, %entry ]
  ret int %p
}
""")
        entry = fn.entry_block
        entry.split_at(1, "mid")
        verify_function(fn)
        next_block = fn.blocks[-1]
        phi = next(next_block.phis())
        assert phi.incoming[0][1].name == "mid"

    def test_predecessors(self):
        fn = parse_function("""
void %f(bool %c) {
entry:
  br bool %c, label %t, label %t
t:
  ret void
}
""")
        target = fn.blocks[1]
        assert len(target.predecessors()) == 2  # one per edge
        assert len(target.unique_predecessors()) == 1


class TestTransformUtils:
    def test_fold_instruction(self):
        fn = parse_function("""
int %f() {
entry:
  %x = add int 2, 3
  ret int %x
}
""")
        folded = fold_instruction(fn.entry_block.instructions[0])
        assert folded.value == 5

    def test_is_trivially_dead(self):
        fn = parse_function("""
int %f(int* %p) {
entry:
  %dead = add int 1, 2
  store int 0, int* %p
  %live = add int 3, 4
  ret int %live
}
""")
        dead, store, live, _ = fn.entry_block.instructions
        assert is_trivially_dead(dead)
        assert not is_trivially_dead(store)
        assert not is_trivially_dead(live)

    def test_delete_dead_chain(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %a = add int %x, 1
  %b = mul int %a, 2
  %c = sub int %b, 3
  ret int %x
}
""")
        assert delete_dead_instructions(fn)
        assert fn.instruction_count() == 1

    def test_constant_fold_terminator_on_branch(self):
        fn = parse_function("""
int %f() {
entry:
  br bool false, label %a, label %b
a:
  ret int 1
b:
  ret int 2
}
""")
        assert constant_fold_terminator(fn.entry_block)
        term = fn.entry_block.terminator
        assert not term.is_conditional
        assert term.operands[0].name == "b"


class TestLinkageAndPurity:
    def test_linkage_validation(self):
        with pytest.raises(ValueError, match="linkage"):
            Function(types.function(types.VOID, []), "f", "imaginary")

    def test_pure_flag_survives_text_no(self):
        """is_pure is an in-memory analysis mark, not serialized text —
        but it does survive the bytecode path."""
        from repro.bitcode import read_bytecode, write_bytecode

        module = Module("m")
        fn = module.new_function(types.function(types.INT, []), "f")
        builder = IRBuilder(fn.append_block("entry"))
        builder.ret(ConstantInt(types.INT, 1))
        fn.is_pure = True
        decoded = read_bytecode(write_bytecode(module))
        assert decoded.functions["f"].is_pure
