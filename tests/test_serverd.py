"""Tests for lc-serverd, the crash-only compilation service
(docs/SERVING.md).

The robustness contract under test:

* the daemon never dies on wire garbage — malformed, truncated and
  oversized frames cost one connection each, nothing more;
* N concurrent clients get byte-for-byte the artifacts the batch
  driver produces;
* a worker crash is isolated to one request, and the supervisor's
  restart (plus one retry) usually hides even that;
* deadlines produce structured ``TIMEOUT`` responses, not hangs;
* a full admission queue sheds with structured ``BUSY``; sustained
  overload degrades the optimization level instead of correctness;
* SIGTERM drains: in-flight requests complete, then the process exits.
"""

from __future__ import annotations

import os
import random
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.bitcode import write_bytecode
from repro.driver import compile_and_link
from repro.serve import (
    ServeClient, ServeRequestError, Server, ServerConfig,
)
from repro.serve import protocol
from repro.serve.protocol import FrameStream, ServeError, encode_frame

PROGRAMS = [
    f"int f{i}(int x) {{ return x * {i + 2} + {i}; }}\n"
    f"int main() {{ return f{i}(5) + {i}; }}"
    for i in range(5)
]


@pytest.fixture
def server(tmp_path):
    """A small daemon on a Unix socket; stopped (drained) on teardown."""
    config = ServerConfig(socket_path=str(tmp_path / "serve.sock"),
                          workers=2, queue_depth=8,
                          cache_dir=str(tmp_path / "cache"),
                          idle_reopt=False, drain_timeout=20.0)
    instance = Server(config)
    yield instance
    instance.stop()


def make_client(server, **kwargs):
    kwargs.setdefault("backoff_base", 0.01)
    return ServeClient(server.address, **kwargs)


class TestFraming:
    """Unit-level protocol hardening over a socketpair."""

    def _pair(self):
        left, right = socket.socketpair()
        return left, FrameStream(right)

    def test_roundtrip(self):
        left, stream = self._pair()
        left.sendall(encode_frame({"op": "ping", "id": 7}))
        assert stream.read_frame() == {"op": "ping", "id": 7}
        left.close()
        assert stream.read_frame() is None  # clean EOF between frames

    def test_bad_magic_carries_offset(self):
        left, stream = self._pair()
        left.sendall(b"GET / HTTP/1.1\r\n\r\n" + b"\0" * 16)
        with pytest.raises(ServeError) as info:
            stream.read_frame()
        assert info.value.offset == 0
        assert "magic" in str(info.value)

    def test_oversized_length_rejected_from_header(self):
        left, stream = self._pair()
        huge = protocol.MAX_FRAME_BYTES + 1
        left.sendall(protocol.MAGIC + struct.pack(">I", huge))
        with pytest.raises(ServeError) as info:
            stream.read_frame()
        assert "cap" in str(info.value)
        assert info.value.offset == len(protocol.MAGIC)

    def test_undersized_length_rejected(self):
        left, stream = self._pair()
        left.sendall(protocol.MAGIC + struct.pack(">I", 1) + b"x")
        with pytest.raises(ServeError) as info:
            stream.read_frame()
        assert "minimum" in str(info.value)

    def test_truncated_payload(self):
        left, stream = self._pair()
        left.sendall(protocol.MAGIC + struct.pack(">I", 100) + b'{"op"')
        left.close()
        with pytest.raises(ServeError) as info:
            stream.read_frame()
        assert "truncated" in str(info.value)

    def test_non_utf8_payload_offset(self):
        left, stream = self._pair()
        payload = b'{"a"\xff: 1}'
        left.sendall(protocol.MAGIC + struct.pack(">I", len(payload))
                     + payload)
        with pytest.raises(ServeError) as info:
            stream.read_frame()
        # Offset is absolute: header consumed + position of the bad byte.
        assert info.value.offset == protocol.HEADER_BYTES + 4

    def test_non_json_payload(self):
        left, stream = self._pair()
        payload = b"not json!!"
        left.sendall(protocol.MAGIC + struct.pack(">I", len(payload))
                     + payload)
        with pytest.raises(ServeError):
            stream.read_frame()

    def test_seeded_garbage_never_escapes_serve_error(self):
        """Whatever bytes arrive, the reader raises ServeError or
        returns a value — never an unhandled exception type."""
        for seed in range(25):
            rng = random.Random(seed)
            blob = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(1, 200)))
            left, stream = self._pair()
            left.sendall(blob)
            left.close()
            try:
                while stream.read_frame() is not None:
                    pass
            except ServeError:
                pass
            finally:
                stream._sock.close()


class TestDaemonSurvivesGarbage:
    def test_garbage_connections_do_not_kill_the_daemon(self, server):
        """Seeded malformed / truncated / oversized frames, then prove
        the daemon still compiles fine."""
        for seed in range(8):
            rng = random.Random(1000 + seed)
            with socket.socket(socket.AF_UNIX,
                               socket.SOCK_STREAM) as raw:
                raw.connect(server.address)
                raw.sendall(bytes(rng.randrange(256)
                                  for _ in range(rng.randrange(1, 300))))
        # Declared-oversized frame: rejected from the header alone.
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
            raw.connect(server.address)
            raw.sendall(protocol.MAGIC
                        + struct.pack(">I", protocol.MAX_FRAME_BYTES + 9))
            raw.settimeout(5.0)
            reply = raw.recv(65536)  # best-effort structured goodbye
            assert reply == b"" or protocol.MAGIC in reply
        # Truncated frame: half a header, then hang up.
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as raw:
            raw.connect(server.address)
            raw.sendall(protocol.MAGIC[:2])
        with make_client(server) as client:
            result = client.compile([PROGRAMS[0]])
            assert result["level"] == 2
        # The reader threads count errors asynchronously; give them a
        # moment, but insist they all land.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if server.statistics()["serverd.protocol-errors"] >= 9:
                break
            time.sleep(0.05)
        assert server.statistics()["serverd.protocol-errors"] >= 9

    def test_bad_request_is_refused_not_fatal(self, server):
        with make_client(server) as client:
            with pytest.raises(ServeRequestError) as info:
                client.request("compile", sources=[])  # empty: invalid
            assert info.value.code == protocol.BAD_REQUEST
            with pytest.raises(ServeRequestError) as info:
                client.request("frobnicate")
            assert info.value.code == protocol.BAD_REQUEST
            # Same connection still serves real work.
            assert client.ping()["pong"] is True


class TestParallelByteIdentity:
    def test_parallel_clients_match_batch_driver(self, server):
        """N concurrent clients; every artifact byte-identical to what
        the batch driver produces for the same source."""
        references = {
            source: write_bytecode(
                compile_and_link([source], "program", 2),
                strip_names=False)
            for source in PROGRAMS
        }
        results: dict[int, bytes] = {}
        errors: list[BaseException] = []

        def one_client(index: int) -> None:
            try:
                with make_client(server) as client:
                    for source in (PROGRAMS[index],
                                   PROGRAMS[-1 - index]):
                        got = client.compile([source])
                        assert got["bytecode"] == references[source]
                        assert got["clean"] is True
                    results[index] = client.compile(
                        [PROGRAMS[index]])["bytecode"]
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=one_client, args=(i,))
                   for i in range(len(PROGRAMS))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for index, data in results.items():
            assert data == references[PROGRAMS[index]]
        stats = server.statistics()
        assert stats["serverd.completed"] >= 3 * len(PROGRAMS)
        assert stats["serverd.worker-crashes"] == 0


class TestWorkerCrashIsolation:
    def test_crash_is_retried_invisibly(self, server):
        from repro.fuzz import faultinject

        faultinject.arm("server.worker-crash", 3)
        try:
            with make_client(server) as client:
                result = client.compile([PROGRAMS[1]])
        finally:
            faultinject.disarm()
        reference = write_bytecode(
            compile_and_link([PROGRAMS[1]], "program", 2),
            strip_names=False)
        assert result["bytecode"] == reference
        stats = server.statistics()
        assert stats["serverd.worker-crashes"] == 1
        assert stats["serverd.worker-restarts"] >= 1
        assert stats["serverd.retried"] == 1

    def test_crash_without_retries_is_structured_and_isolated(
            self, tmp_path):
        from repro.fuzz import faultinject

        config = ServerConfig(socket_path=str(tmp_path / "s.sock"),
                              workers=1, queue_depth=4,
                              server_retries=0, idle_reopt=False)
        server = Server(config)
        try:
            faultinject.arm("server.worker-crash", 5)
            try:
                with make_client(server, retry_budget=0) as client:
                    with pytest.raises(ServeRequestError) as info:
                        client.compile([PROGRAMS[2]])
                    assert info.value.code == protocol.WORKER_CRASH
                    # The crash cost that one request; the next one
                    # meets a freshly restarted worker.
                    result = client.compile([PROGRAMS[2]])
                    assert result["clean"] is True
            finally:
                faultinject.disarm()
            assert server.statistics()["serverd.worker-restarts"] >= 1
        finally:
            server.stop()


class TestDeadlines:
    def test_executing_past_deadline_times_out_structured(self, server):
        """A stalled worker is killed by the watchdog; the client gets
        TIMEOUT, not a hang."""
        with make_client(server, retry_budget=0) as client:
            started = time.monotonic()
            with pytest.raises(ServeRequestError) as info:
                client.request("sleep", deadline_ms=400, ms=5_000)
            assert info.value.code == protocol.TIMEOUT
            assert time.monotonic() - started < 5.0
            # The daemon took the worker's death in stride.
            assert client.ping()["pong"] is True
        stats = server.statistics()
        assert stats["serverd.timed-out"] >= 1
        assert stats["serverd.worker-restarts"] >= 1

    def test_queued_past_deadline_never_touches_a_worker(self, tmp_path):
        config = ServerConfig(socket_path=str(tmp_path / "s.sock"),
                              workers=1, queue_depth=8,
                              idle_reopt=False)
        server = Server(config)
        try:
            blocker = make_client(server)
            waiter = make_client(server, retry_budget=0)
            hold = threading.Thread(
                target=lambda: blocker.request("sleep", ms=1_200))
            hold.start()
            time.sleep(0.3)  # the sleep is now executing
            with pytest.raises(ServeRequestError) as info:
                waiter.request("sleep", deadline_ms=200, ms=0)
            assert info.value.code == protocol.TIMEOUT
            assert "queue" in info.value.message
            hold.join()
            blocker.close()
            waiter.close()
        finally:
            server.stop()


class TestOverload:
    def test_high_water_sheds_busy_with_hint(self, tmp_path):
        config = ServerConfig(socket_path=str(tmp_path / "s.sock"),
                              workers=1, queue_depth=2, high_water=2,
                              idle_reopt=False)
        server = Server(config)
        try:
            clients = [make_client(server, retry_budget=0)
                       for _ in range(6)]
            outcomes: list[object] = [None] * len(clients)

            def fire(index: int) -> None:
                try:
                    outcomes[index] = clients[index].request(
                        "sleep", ms=600)
                except ServeRequestError as error:
                    outcomes[index] = error

            threads = []
            for index in range(len(clients)):
                thread = threading.Thread(target=fire, args=(index,))
                thread.start()
                threads.append(thread)
                time.sleep(0.05)  # let earlier requests reach the queue
            for thread in threads:
                thread.join()
            for client in clients:
                client.close()
            shed = [o for o in outcomes
                    if isinstance(o, ServeRequestError)]
            served = [o for o in outcomes if isinstance(o, dict)]
            assert shed, "expected at least one BUSY shed"
            for error in shed:
                assert error.code == protocol.BUSY
                assert error.retry_after_ms is not None
            assert served, "expected at least one served request"
            stats = server.statistics()
            assert stats["serverd.shed"] == len(shed)
        finally:
            server.stop()

    def test_sustained_pressure_degrades_compile_level(self, tmp_path):
        config = ServerConfig(socket_path=str(tmp_path / "s.sock"),
                              workers=1, queue_depth=16,
                              degrade_water=1, idle_reopt=False)
        server = Server(config)
        try:
            holders = []
            for _ in range(6):  # sustained pressure on the queue
                def hold() -> None:
                    with make_client(server) as sleeper:
                        sleeper.request("sleep", ms=250)
                thread = threading.Thread(target=hold)
                thread.start()
                holders.append(thread)
                time.sleep(0.02)
            with make_client(server) as client:
                result = client.compile([PROGRAMS[3]],
                                        deadline_ms=60_000)
            for thread in holders:
                thread.join()
            assert result["degraded"] is True
            assert result["requested_level"] == 2
            assert result["level"] < 2
            # Degradation shifts level, it does not corrupt: the
            # artifact matches the batch driver at the level used.
            reference = write_bytecode(
                compile_and_link([PROGRAMS[3]], "program",
                                 result["level"]),
                strip_names=False)
            assert result["bytecode"] == reference
            stats = server.statistics()
            assert stats["serverd.degraded"] >= 1
            assert stats["serverd.degraded-requests"] >= 1
        finally:
            server.stop()


class TestObservability:
    def test_stats_expose_cache_and_queue_counters(self, server):
        with make_client(server) as client:
            client.compile([PROGRAMS[4]])
            client.compile([PROGRAMS[4]])  # warm: cache hit in worker
            stats = client.stats()
        assert stats["serverd.accepted"] >= 2
        assert stats["serverd.completed"] >= 2
        assert stats["serverd.queue-depth"] == 0
        assert stats["serverd.workers"] == 2
        # Worker cache counters folded into the daemon's own totals.
        assert stats.get("serverd.cache-stores", 0) >= 1
        hits = stats.get("serverd.cache-hits", 0)
        misses = stats.get("serverd.cache-misses", 0)
        assert hits >= 1 and misses >= 1


class TestDrain:
    def test_sigterm_drains_in_flight_requests(self, tmp_path):
        """The CLI daemon, SIGTERMed mid-request, completes the request
        and exits 0 — drained, not dropped."""
        socket_path = str(tmp_path / "drain.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(__file__),
                                         os.pardir, "src")
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.tools", "serverd",
             "--socket", socket_path, "--workers", "1", "-q"],
            env=env, stderr=subprocess.PIPE)
        try:
            deadline = time.monotonic() + 20.0
            while not os.path.exists(socket_path):
                assert time.monotonic() < deadline, "daemon never bound"
                assert daemon.poll() is None, daemon.stderr.read()
                time.sleep(0.05)
            outcome: dict = {}
            client = ServeClient(socket_path)

            def slow_request() -> None:
                outcome["result"] = client.request("sleep", ms=1_500)

            thread = threading.Thread(target=slow_request)
            thread.start()
            time.sleep(0.4)  # the sleep is in flight
            daemon.send_signal(signal.SIGTERM)
            thread.join(timeout=20.0)
            assert not thread.is_alive()
            client.close()
            assert outcome["result"] == {"slept_ms": 1500}
            assert daemon.wait(timeout=20.0) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    def test_embedded_stop_refuses_new_work(self, tmp_path):
        config = ServerConfig(socket_path=str(tmp_path / "s.sock"),
                              workers=1, idle_reopt=False)
        server = Server(config)
        address = server.address
        server.stop()
        # After the drain the front door is gone (socket unlinked).
        assert not os.path.exists(address)


class TestIdleReoptimizer:
    def test_degraded_compiles_are_redone_at_idle(self, tmp_path):
        """Paper section 2.4: overload degrades, idle time re-runs the
        degraded compiles at full level, warming the shared cache."""
        # degrade_water=2: pressure needs a real backlog (admissions
        # that land on an already-occupied queue), so the idle-time
        # polling below reads as calm, not as fresh pressure.
        config = ServerConfig(socket_path=str(tmp_path / "s.sock"),
                              workers=1, queue_depth=16,
                              degrade_water=2, idle_reopt=True,
                              idle_delay=0.05,
                              cache_dir=str(tmp_path / "cache"))
        server = Server(config)
        try:
            holders = []
            for _ in range(6):
                def hold() -> None:
                    with make_client(server) as sleeper:
                        sleeper.request("sleep", ms=200)
                thread = threading.Thread(target=hold)
                thread.start()
                holders.append(thread)
                time.sleep(0.02)
            with make_client(server) as client:
                degraded = client.compile([PROGRAMS[0]],
                                          deadline_ms=60_000)
                assert degraded["degraded"] is True
                for thread in holders:
                    thread.join()
                # Calm completions step the shift back down; the idle
                # loop then drains the reopt backlog.
                deadline = time.monotonic() + 30.0
                while time.monotonic() < deadline:
                    for _ in range(4):
                        client.request("sleep", ms=0)
                    stats = client.stats()
                    if stats["serverd.reopt.completed"] >= 1:
                        break
                    time.sleep(0.1)
                stats = client.stats()
            assert stats["serverd.reopt.queued"] >= 1
            assert stats["serverd.reopt.completed"] >= 1
            assert stats["serverd.recovered"] >= 1
        finally:
            server.stop()


class TestClientBudget:
    def test_retry_budget_is_shared_and_finite(self, tmp_path):
        """A client facing a permanently full queue runs out of retry
        budget and surfaces BUSY instead of retrying forever."""
        config = ServerConfig(socket_path=str(tmp_path / "s.sock"),
                              workers=1, queue_depth=1, high_water=1,
                              idle_reopt=False)
        server = Server(config)
        try:
            blocker = make_client(server)
            hold = threading.Thread(
                target=lambda: blocker.request("sleep", ms=1_500))
            hold.start()
            time.sleep(0.2)
            filler = make_client(server, retry_budget=0)
            victim = make_client(server, retry_budget=2,
                                 backoff_base=0.01, backoff_cap=0.05)
            fill = threading.Thread(
                target=lambda: filler.request("sleep", ms=1_500))
            fill.start()
            time.sleep(0.2)  # queue now holds the filler: at high water
            with pytest.raises(ServeRequestError) as info:
                victim.request("sleep", ms=0)
            assert info.value.code == protocol.BUSY
            assert victim.retries_used == 2  # budget spent, then surfaced
            hold.join()
            fill.join()
            for client in (blocker, filler, victim):
                client.close()
        finally:
            server.stop()
