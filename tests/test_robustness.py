"""Tests for fault-tolerant compilation (docs/ROBUSTNESS.md).

The contract under test: a lifelong compiler must outlive its own
bugs.  A crashing pass is a rolled-back transaction with a crash
report, not an abort; corrupted artifacts (bytecode, cache entries,
summary sidecars) cost recompilation, never correctness; and every
registered fault-injection site, armed one at a time, still yields a
program with the clean ``-O0`` behaviour.
"""

from __future__ import annotations

import json
import os
import random
import threading

import pytest

from repro.bitcode import (
    BytecodeError, read_bytecode, write_bytecode,
)
from repro.core import parse_module, print_module, verify_module
from repro.driver import (
    BytecodeCache, CrashReport, FaultPolicy, LifelongSession,
    TransactionalPassManager, compile_and_link, optimize_module,
    restore_module, snapshot_module,
)
from repro.driver.passmanager import PassBudgetExceeded
from repro.driver.pipelines import lint_whole_program
from repro.frontend import compile_source
from repro.fuzz import (
    InjectedFault, generate_program, registered_sites, run_fault_matrix,
    run_interpreter,
)
from repro.fuzz import faultinject
from repro.transforms import PromoteMem2Reg, SimplifyCFG

SRC = """
extern int print_int(int x);
int add(int x, int y) { return x + y; }
int victim(int n) {
  int total;
  int i;
  total = 0;
  for (i = 0; i < n; i = i + 1) { total = add(total, i); }
  return total;
}
int main() { print_int(victim(7)); return victim(3); }
"""

STEP_LIMIT = 1_000_000


def fresh_module(name="m"):
    return compile_source(SRC, name)


def reference_outcome():
    return run_interpreter(fresh_module("ref"), STEP_LIMIT)


class EvilFunctionPass:
    """Raises on exactly one function; optimizes nothing."""

    name = "evil"

    def __init__(self, target: str = "main"):
        self.target = target

    def run_on_function(self, function):
        if function.name == self.target:
            raise RuntimeError("planted bug")
        return False


class EvilModulePass:
    name = "evil-module"

    def run_on_module(self, module):
        for function in module.defined_functions():
            if function.name == "victim":
                raise RuntimeError("module pass planted bug")
        return False


class CorruptingPass:
    """Breaks the IR without raising: drops a terminator."""

    name = "corrupting"

    def run_on_function(self, function):
        if function.name == "victim":
            function.blocks[0].instructions[-1].erase_from_parent()
            return True
        return False


class SpinPass:
    """Loops forever, making Python-level calls the watchdog can see."""

    name = "spin"

    def run_on_function(self, function):
        def poke():
            return 0

        while True:
            poke()


# ----------------------------------------------------------------------
# The transactional pass manager (tentpole part 1)
# ----------------------------------------------------------------------

class TestTransactionalPassManager:
    def test_throwing_pass_rolls_back_and_pipeline_continues(self, tmp_path):
        """The golden crash-containment test of ISSUE 5."""
        policy = FaultPolicy(crash_dir=str(tmp_path))
        module = fresh_module()
        manager = TransactionalPassManager(policy)
        manager.add(SimplifyCFG())
        manager.add(EvilFunctionPass("main"))
        manager.add(PromoteMem2Reg())
        manager.run(module)

        verify_module(module)
        assert run_interpreter(module, STEP_LIMIT) == reference_outcome()
        stats = policy.statistics()
        assert stats["passes.rolled_back"] >= 1
        assert stats["crashes.reported"] == 1

        (report,) = policy.crash_reports
        assert report.pass_name == "evil"
        assert report.function == "main"
        assert report.error_type == "RuntimeError"
        assert "planted bug" in report.traceback
        # The reduced testcase: verifier-clean and tiny.
        assert report.reduced_instructions is not None
        assert report.reduced_instructions <= 15
        reduced = parse_module(report.reduced_ir)
        verify_module(reduced)
        # ... and it still crashes the pass.
        with pytest.raises(RuntimeError):
            for function in reduced.defined_functions():
                EvilFunctionPass("main").run_on_function(function)

    def test_crash_report_written_to_crash_dir(self, tmp_path):
        policy = FaultPolicy(crash_dir=str(tmp_path))
        module = fresh_module()
        manager = TransactionalPassManager(policy)
        manager.add(EvilFunctionPass("main"))
        manager.run(module)

        names = sorted(os.listdir(tmp_path))
        assert names == ["crash-001-evil.json", "crash-001-evil.ll"]
        with open(tmp_path / "crash-001-evil.json") as handle:
            record = json.load(handle)
        assert record["pass"] == "evil"
        assert record["function"] == "main"
        assert record["error_type"] == "RuntimeError"
        reduced = parse_module((tmp_path / "crash-001-evil.ll").read_text())
        verify_module(reduced)

    def test_function_granularity_retry_spares_innocents(self):
        """Other functions keep their optimization; only the guilty
        function is poisoned for the failing pass."""
        policy = FaultPolicy(reduce_testcases=False)
        module = fresh_module()
        manager = TransactionalPassManager(policy)
        manager.add(EvilFunctionPass("victim"))
        manager.run(module)

        assert policy.is_poisoned("evil", "m", "victim")
        assert not policy.is_poisoned("evil", "m", "main")
        assert not policy.is_poisoned("evil", "m")  # not module-wide
        assert policy.statistics()["retries.function"] == 1

    def test_poisoned_function_is_skipped_on_rerun(self):
        policy = FaultPolicy(reduce_testcases=False)
        module = fresh_module()
        manager = TransactionalPassManager(policy)
        manager.add(EvilFunctionPass("victim"))
        manager.run(module)
        manager.run(module)  # the second run must not crash again
        assert policy.statistics()["crashes.reported"] == 1

    def test_module_pass_bisection_names_guilty_function(self):
        policy = FaultPolicy()
        module = fresh_module()
        manager = TransactionalPassManager(policy)
        manager.add(EvilModulePass())
        manager.run(module)

        (report,) = policy.crash_reports
        assert report.pass_name == "evil-module"
        assert report.function == "victim"
        assert policy.is_poisoned("evil-module", "m")  # module-wide

    def test_verifier_failure_rolls_back(self):
        """A pass that silently corrupts the IR is caught by the
        per-transaction verify and undone."""
        policy = FaultPolicy(reduce_testcases=False)
        module = fresh_module()
        before = print_module(module)
        manager = TransactionalPassManager(policy)
        manager.add(CorruptingPass())
        manager.run(module)

        verify_module(module)
        assert policy.statistics()["passes.rolled_back"] >= 1
        # Rollback + failed per-function retry: the module is pristine.
        assert print_module(module) == before

    def test_budget_exhaustion_preempts_runaway_pass(self):
        policy = FaultPolicy(pass_step_budget=5_000, pass_time_budget=5.0,
                             reduce_testcases=False)
        module = fresh_module()
        manager = TransactionalPassManager(policy)
        manager.add(SpinPass())
        manager.run(module)

        verify_module(module)
        assert run_interpreter(module, STEP_LIMIT) == reference_outcome()
        assert any(r.error_type == "PassBudgetExceeded"
                   for r in policy.crash_reports)
        # Budget blowouts are not reproducible probes: no reduction.
        assert all(r.reduced_ir is None for r in policy.crash_reports)

    def test_rollback_restores_module_in_place(self):
        module = fresh_module()
        snapshot = snapshot_module(module)
        before = print_module(module)
        module.functions["main"].delete_body()
        assert print_module(module) != before
        restore_module(module, snapshot)
        assert print_module(module) == before
        verify_module(module)
        for function in module.functions.values():
            assert function.parent is module


class TestPerFunctionTransactions:
    """The per-function snapshot machinery of ISSUE 7: function passes
    snapshot (and roll back) one function's text, never the module."""

    def test_function_rollback_restores_in_place(self):
        from repro.driver.passmanager import (
            restore_function, snapshot_function,
        )

        module = fresh_module()
        victim = module.functions["victim"]
        before = print_module(module)
        snapshot = snapshot_function(victim)
        victim.blocks[0].instructions[-1].erase_from_parent()
        assert print_module(module) != before
        restore_function(module, victim, snapshot)
        assert print_module(module) == before
        verify_module(module)
        # Restoration happens *inside* the existing function object, so
        # every call site (main calls victim) stays valid.
        assert module.functions["victim"] is victim
        for block in victim.blocks:
            assert block.parent is victim
        for arg in victim.args:
            assert arg.parent is victim
        assert run_interpreter(module, STEP_LIMIT) == reference_outcome()

    def test_partial_mutation_rolled_back_others_kept(self):
        """A pass that mutates the guilty function *before* raising must
        have that partial work undone, while functions it already
        processed cleanly keep their changes."""

        class MutateThenThrow:
            name = "mutate-then-throw"

            def run_on_function(self, function):
                if function.name == "victim":
                    # Real damage first, then the crash.
                    function.blocks[0].instructions[-1].erase_from_parent()
                    raise RuntimeError("planted mid-mutation bug")
                # Touch every other function observably but validly.
                function.blocks[0].name = f"{function.blocks[0].name}.t"
                return True

        policy = FaultPolicy(reduce_testcases=False,
                             translation_validate=False)
        module = fresh_module()
        victim_before = print_module(module).split("\n\n")
        manager = TransactionalPassManager(policy)
        manager.add(MutateThenThrow())
        manager.run(module)

        verify_module(module)
        text = print_module(module)
        # The guilty function is byte-identical to its pre-pass self...
        victim_text = next(p for p in victim_before if "victim" in p
                           and "int %victim" in p)
        assert victim_text in text
        # ...while the innocents kept the renames the pass made.
        assert ".t:" in text
        assert run_interpreter(module, STEP_LIMIT) == reference_outcome()
        assert policy.statistics()["passes.rolled_back"] == 1

    def test_fault_tolerant_timings_count_each_pass_once(self):
        """-time-passes audit: one transactional run records every pass
        exactly once, and containment time bills to the causing pass."""
        from repro.transforms.passmanager import PassTimings

        policy = FaultPolicy(reduce_testcases=False)
        sink = PassTimings()
        module = fresh_module()
        manager = TransactionalPassManager(policy, timings=sink)
        manager.add(SimplifyCFG())
        manager.add(EvilFunctionPass("victim"))
        manager.add(PromoteMem2Reg())
        manager.run(module)

        assert sink.runs == {"simplifycfg": 1, "evil": 1, "mem2reg": 1}
        # The crashing pass's containment overhead is its own bill.
        assert sink.seconds["evil"] > 0.0


# ----------------------------------------------------------------------
# The degradation ladder (tentpole part 2)
# ----------------------------------------------------------------------

class TestDegradationLadder:
    def test_falls_back_to_level_without_the_bad_pass(self, monkeypatch):
        """GVN (an -O2 pass) always crashing: -O2 is abandoned, -O1
        succeeds, and the output is still correct."""
        from repro.transforms import gvn as gvn_module

        def boom(self, function):
            raise RuntimeError("gvn is broken today")

        monkeypatch.setattr(gvn_module.GVN, "run_on_function", boom)
        policy = FaultPolicy(max_poisoned_passes=0, reduce_testcases=False)
        module = fresh_module()
        optimize_module(module, 2, policy=policy)

        verify_module(module)
        assert run_interpreter(module, STEP_LIMIT) == reference_outcome()
        assert policy.statistics()["fallbacks.taken"] >= 1

    def test_retry_after_fallback_skips_poisoned_work(self, monkeypatch):
        """SimplifyCFG (present at every level >= 1) always crashing:
        the first attempt is abandoned, and the retry succeeds because
        the poison marks persist — the broken pass is skipped, every
        healthy pass still runs.  Strictly better than dropping to -O0."""
        from repro.transforms import simplifycfg as cfg_module

        def boom(self, function):
            raise RuntimeError("simplifycfg is broken today")

        monkeypatch.setattr(cfg_module.SimplifyCFG, "run_on_function", boom)
        policy = FaultPolicy(max_poisoned_passes=0, reduce_testcases=False)
        module = fresh_module()
        optimize_module(module, 2, policy=policy)

        assert policy.statistics()["fallbacks.taken"] >= 1
        assert policy.statistics()["crashes.reported"] >= 1
        verify_module(module)
        assert run_interpreter(module, STEP_LIMIT) == reference_outcome()
        # The healthy passes did run on the retry: SSA got built.
        assert "alloca" not in print_module(module)

    def test_policy_threads_through_compile_and_link(self, monkeypatch):
        from repro.transforms import gvn as gvn_module

        def boom(self, function):
            raise RuntimeError("gvn is broken today")

        monkeypatch.setattr(gvn_module.GVN, "run_on_function", boom)
        policy = FaultPolicy(reduce_testcases=False)
        module = compile_and_link([SRC], "program", 2, policy=policy)
        verify_module(module)
        assert run_interpreter(module, STEP_LIMIT) == reference_outcome()
        assert policy.statistics()["passes.rolled_back"] >= 1


# ----------------------------------------------------------------------
# Bytecode reader hardening (satellite)
# ----------------------------------------------------------------------

class TestBytecodeHardening:
    def _blob(self):
        return write_bytecode(fresh_module(), strip_names=False)

    def test_thousand_byte_flips_raise_only_bytecode_error(self):
        """The ISSUE 5 acceptance criterion: 1000 fixed-seed single
        byte-flip mutations — nothing but BytecodeError ever escapes."""
        blob = self._blob()
        rng = random.Random(0xC0FFEE)
        rejected = decoded = 0
        for _ in range(1000):
            mutant = bytearray(blob)
            mutant[rng.randrange(len(mutant))] ^= 1 << rng.randrange(8)
            try:
                read_bytecode(bytes(mutant))
                decoded += 1
            except BytecodeError:
                rejected += 1
            # Any other exception type propagates and fails the test.
        assert rejected + decoded == 1000
        assert rejected > 100  # the magic/header/counts actually bite

    def test_every_truncation_raises_bytecode_error(self):
        blob = self._blob()
        for cut in range(len(blob)):
            with pytest.raises(BytecodeError):
                read_bytecode(blob[:cut])

    def test_error_carries_offset_and_section(self):
        blob = self._blob()
        with pytest.raises(BytecodeError) as info:
            read_bytecode(blob[: len(blob) // 2])
        assert info.value.offset is not None
        assert info.value.section is not None
        rendered = str(info.value)
        assert "byte offset" in rendered and "section" in rendered

    def test_newer_version_is_structured_error(self):
        blob = bytearray(self._blob())
        blob[4] = 99  # the version byte, right after the magic
        with pytest.raises(BytecodeError, match="version"):
            read_bytecode(bytes(blob))

    def test_garbage_is_structured_error(self):
        for garbage in (b"", b"ll", b"not bytecode at all", b"llvm"):
            with pytest.raises(BytecodeError):
                read_bytecode(garbage)


# ----------------------------------------------------------------------
# Cache robustness (satellite)
# ----------------------------------------------------------------------

class TestCacheRobustness:
    def _warm(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        key = cache.key(SRC, 1)
        cache.store(key, fresh_module())
        return cache, key

    def _entry_path(self, tmp_path, key):
        return os.path.join(str(tmp_path), f"{key}.bc")

    def test_flipped_byte_is_miss_and_eviction(self, tmp_path):
        cache, key = self._warm(tmp_path)
        path = self._entry_path(tmp_path, key)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0x10
        with open(path, "wb") as handle:
            handle.write(bytes(data))

        assert cache.load(key) is None
        assert cache.misses == 1
        assert cache.evictions == 1
        assert not os.path.exists(path)  # evicted, next store re-creates

    def test_truncated_entry_is_miss_and_eviction(self, tmp_path):
        cache, key = self._warm(tmp_path)
        path = self._entry_path(tmp_path, key)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[: len(data) // 3])
        assert cache.load(key) is None
        assert cache.evictions == 1

    def test_newer_toolchain_entry_is_miss_not_raise(self, tmp_path):
        """An entry whose *payload* was written by a newer bytecode
        format passes the integrity frame but fails the decoder with a
        version error — still a miss + eviction, never a raise."""
        cache, key = self._warm(tmp_path)
        payload = bytearray(write_bytecode(fresh_module(),
                                           strip_names=False))
        payload[4] = 99  # future version byte
        cache.store_bytes(key, bytes(payload))  # correctly framed
        assert cache.load(key) is None
        assert cache.evictions == 1

    def test_foreign_file_is_miss(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        key = cache.key(SRC, 1)
        with open(self._entry_path(tmp_path, key), "wb") as handle:
            handle.write(b"this was never a cache entry")
        assert cache.load(key) is None

    def test_concurrent_writer_and_reader_share_one_directory(self, tmp_path):
        """Two cache handles (as two compiler processes would hold) on
        one directory: racing store/load never raises and never yields
        a wrong module — only a hit with the right content or a miss."""
        writer_cache = BytecodeCache(str(tmp_path))
        reader_cache = BytecodeCache(str(tmp_path))
        module = fresh_module()
        expected = print_module(module)
        key = writer_cache.key(SRC, 1)
        errors: list = []

        def writer():
            try:
                for _ in range(150):
                    writer_cache.store(key, module)
                    writer_cache.invalidate(key)
            except Exception as error:  # pragma: no cover - the assert
                errors.append(error)

        def reader():
            try:
                for _ in range(300):
                    loaded = reader_cache.load(key)
                    if loaded is not None:
                        assert print_module(loaded) == expected
            except Exception as error:  # pragma: no cover - the assert
                errors.append(error)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


# ----------------------------------------------------------------------
# Summary-sidecar robustness (satellite)
# ----------------------------------------------------------------------

class TestSidecarRobustness:
    def test_corrupt_sidecar_degrades_to_recompute(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        clean = lint_whole_program([SRC], level=2, cache=cache)
        clean_rendered = [d.render() for d in clean.diagnostics]
        sidecars = [n for n in os.listdir(tmp_path) if n.endswith(".json")]
        assert sidecars, "warm lint should have stored summary sidecars"
        for name in sidecars:
            with open(os.path.join(str(tmp_path), name), "w") as handle:
                handle.write("\x00 this is not json {")

        relint = lint_whole_program([SRC], level=2, cache=cache)
        assert [d.render() for d in relint.diagnostics] == clean_rendered
        assert cache.summary_evictions >= 1
        assert cache.statistics()["summary-evictions"] >= 1


# ----------------------------------------------------------------------
# Fault injection (tentpole part 3)
# ----------------------------------------------------------------------

class TestFaultInjection:
    def test_site_catalogue_tracks_the_real_pipelines(self):
        sites = registered_sites()
        for static in ("cache.read", "bytecode.truncate", "bytecode.corrupt",
                       "sidecar.corrupt", "linker.symbol-clash"):
            assert static in sites
        for pass_site in ("pass:gvn", "pass:simplifycfg", "pass:inline",
                          "pass:internalize"):
            assert pass_site in sites

    def test_arming_an_unknown_site_is_an_error(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            faultinject.arm("pass:not-a-pass")
        faultinject.disarm()

    def test_plans_are_single_shot(self):
        with faultinject.injected("pass:gvn", 3) as plan:
            with pytest.raises(InjectedFault):
                faultinject.check("pass:gvn")
            faultinject.check("pass:gvn")  # second hit: disarmed
            assert plan.fired
        faultinject.check("pass:gvn")  # context exited: nothing armed

    def test_mangling_is_deterministic(self):
        data = bytes(range(64))
        with faultinject.injected("cache.read", 7):
            first = faultinject.mangle("cache.read", data)
        with faultinject.injected("cache.read", 7):
            second = faultinject.mangle("cache.read", data)
        assert first == second != data

    def test_injected_pass_fault_is_transient_not_poisonous(self):
        """A single-shot fault fails one transaction; the per-function
        retry succeeds, so nothing gets poisoned and nothing degrades."""
        policy = FaultPolicy(reduce_testcases=False)
        with faultinject.injected("pass:gvn", 1):
            module = compile_and_link([SRC], "program", 2, policy=policy)
        verify_module(module)
        assert run_interpreter(module, STEP_LIMIT) == reference_outcome()
        stats = policy.statistics()
        assert stats["passes.rolled_back"] == 1
        assert stats["passes.poisoned"] == 0

    def test_matrix_subset_is_clean(self):
        report = run_fault_matrix(
            program_seeds=(401,), size=1,
            sites=("pass:instcombine", "cache.read", "bytecode.truncate",
                   "sidecar.corrupt", "linker.symbol-clash"),
            step_limit=STEP_LIMIT)
        assert report.clean, "\n".join(o.describe()
                                       for o in report.failures)
        assert len(report.outcomes) == 5


# ----------------------------------------------------------------------
# Lifelong session fault tolerance
# ----------------------------------------------------------------------

class TestLifelongFaultTolerance:
    def test_reoptimizer_crash_is_contained(self, monkeypatch):
        policy = FaultPolicy(reduce_testcases=False)
        session = LifelongSession([SRC], level=1, fault_policy=policy)
        before = session.run().exit_value

        from repro.profile import OfflineReoptimizer

        def boom(self, module, profile, **kwargs):
            module.functions["main"].delete_body()  # half-done rewrite
            raise RuntimeError("reoptimizer bug")

        monkeypatch.setattr(OfflineReoptimizer, "run", boom)
        report = session.reoptimize()
        assert report.hot_functions == []
        assert session.run().exit_value == before  # rolled back, still runs
        assert any(r.pass_name == "reoptimizer"
                   for r in policy.crash_reports)

    def test_without_policy_reoptimizer_crash_propagates(self, monkeypatch):
        session = LifelongSession([SRC], level=1)
        from repro.profile import OfflineReoptimizer

        def boom(self, module, profile, **kwargs):
            raise RuntimeError("reoptimizer bug")

        monkeypatch.setattr(OfflineReoptimizer, "run", boom)
        with pytest.raises(RuntimeError):
            session.reoptimize()


# ----------------------------------------------------------------------
# Tool flags
# ----------------------------------------------------------------------

class TestToolFlags:
    @pytest.fixture
    def source_file(self, tmp_path):
        path = tmp_path / "prog.lc"
        path.write_text(SRC)
        return str(path)

    def test_lc_cc_fault_inject_and_stats(self, source_file, tmp_path,
                                          capsys):
        from repro.tools import lc_cc

        out = tmp_path / "prog.ll"
        code = lc_cc([source_file, "-O", "2", "-o", str(out),
                      "--fault-inject", "pass:gvn", "-stats"])
        captured = capsys.readouterr()
        assert code == 0
        assert "passes.rolled_back" in captured.err
        assert "contained" in captured.err
        assert "%main" in out.read_text()

    def test_lc_opt_crash_dir(self, source_file, tmp_path, capsys):
        from repro.tools import lc_cc, lc_opt

        bc = tmp_path / "prog.bc"
        assert lc_cc([source_file, "-c", "-o", str(bc)]) == 0
        crashes = tmp_path / "crashes"
        code = lc_opt([str(bc), "-O", "2", "-o", os.devnull,
                       "--fault-inject", "pass:instcombine:5",
                       "--crash-dir", str(crashes)])
        capsys.readouterr()
        assert code == 0
        assert any(n.endswith(".json") for n in os.listdir(crashes))

    def test_lc_opt_rejects_unknown_site(self, source_file, tmp_path,
                                         capsys):
        from repro.tools import lc_cc, lc_opt

        bc = tmp_path / "prog.bc"
        assert lc_cc([source_file, "-c", "-o", str(bc)]) == 0
        with pytest.raises(SystemExit):
            lc_opt([str(bc), "-O", "1", "--fault-inject", "no.such.site"])
        capsys.readouterr()

    def test_lc_fuzz_lists_sites(self, capsys):
        from repro.tools import lc_fuzz

        assert lc_fuzz(["--list-fault-sites"]) == 0
        out = capsys.readouterr().out
        assert "cache.read" in out and "pass:gvn" in out

    def test_lc_fuzz_single_cell_matrix(self, capsys):
        from repro.tools import lc_fuzz

        code = lc_fuzz(["--fault-inject", "linker.symbol-clash",
                        "--size", "1", "-q"])
        err = capsys.readouterr().err
        assert code == 0
        assert "0 failing" in err
