"""Tests for the textual representation: printer and parser round trips.

Section 2.5's claim: the textual, binary, and in-memory representations
are equivalent, with no information loss between them.
"""

import pytest

from repro.core import (
    ConstantInt, IRBuilder, Module, ParseError, parse_function, parse_module,
    print_module, types, verify_module,
)
from repro.core.values import ConstantString


def _roundtrip(source: str) -> str:
    module = parse_module(source)
    verify_module(module)
    text = print_module(module)
    again = parse_module(text)
    assert print_module(again) == text
    return text


class TestParsing:
    def test_minimal_function(self):
        fn = parse_function("int %f() {\nentry:\n  ret int 0\n}")
        assert fn.name == "f"
        assert len(fn.blocks) == 1

    def test_all_binary_ops(self):
        ops = ["add", "sub", "mul", "div", "rem", "and", "or", "xor",
               "seteq", "setne", "setlt", "setgt", "setle", "setge"]
        body = "\n".join(
            f"  %v{i} = {op} int %a, %b" for i, op in enumerate(ops)
        )
        fn = parse_function(
            f"int %f(int %a, int %b) {{\nentry:\n{body}\n  ret int %v0\n}}"
        )
        assert fn.instruction_count() == len(ops) + 1

    def test_forward_branch_reference(self):
        fn = parse_function("""
int %f(bool %c) {
entry:
  br bool %c, label %later, label %other
other:
  ret int 1
later:
  ret int 2
}
""")
        assert [b.name for b in fn.blocks] == ["entry", "other", "later"]

    def test_forward_value_reference_in_phi(self):
        fn = parse_function("""
int %f(int %n) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %loop ]
  %next = add int %i, 1
  %done = setge int %next, %n
  br bool %done, label %exit, label %loop
exit:
  ret int %i
}
""")
        verify_module(fn.parent)

    def test_call_to_later_function(self):
        module = parse_module("""
int %caller() {
entry:
  %r = call int %callee(int 1)
  ret int %r
}
int %callee(int %x) {
entry:
  ret int %x
}
""")
        verify_module(module)
        assert module.functions["caller"].instructions().__next__().callee \
            is module.functions["callee"]

    def test_global_and_string(self):
        module = parse_module("""
%greeting = internal constant [6 x sbyte] c"hello\\00"
%count = global int 42
""")
        assert module.globals["count"].initializer.value == 42
        assert isinstance(module.globals["greeting"].initializer, ConstantString)

    def test_recursive_named_type(self):
        module = parse_module("""
%list = type { int, %list* }
%head = global %list* null
""")
        list_ty = module.named_types["list"]
        assert list_ty.fields[1].pointee is list_ty

    def test_undefined_value_rejected(self):
        with pytest.raises(ParseError):
            parse_function("int %f() {\nentry:\n  ret int %nope\n}")

    def test_undefined_label_rejected(self):
        with pytest.raises(ParseError):
            parse_function("int %f() {\nentry:\n  br label %nowhere\n}")

    def test_type_mismatch_rejected(self):
        with pytest.raises(ParseError):
            parse_function("""
int %f(long %x) {
entry:
  %y = add int %x, 1
  ret int %y
}
""")

    def test_duplicate_definition_rejected(self):
        with pytest.raises(ParseError):
            parse_function("""
int %f() {
entry:
  %x = add int 1, 2
  %x = add int 3, 4
  ret int %x
}
""")

    def test_module_name_from_comment(self):
        module = parse_module("; ModuleID = 'fancy'\n%g = global int 0\n")
        assert module.name == "fancy"

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_module("int main() { return 0; }")  # C, not IR


class TestRoundTrips:
    def test_every_scalar_constant_form(self):
        _roundtrip("""
%a = global int -5
%b = global ulong 18446744073709551615
%c = global double 2.5
%d = global float 1.5
%e = global bool true
%f = global sbyte* null
%g = global { int, bool } { int 3, bool false }
%h = global [2 x int] [ int 1, int 2 ]
%i = global [3 x int] zeroinitializer
""")

    def test_constant_expressions(self):
        _roundtrip("""
%table = internal constant [4 x int] [ int 1, int 2, int 3, int 4 ]
%second = global int* getelementptr ([4 x int]* %table, long 0, long 1)
""")

    def test_function_pointer_constant(self):
        _roundtrip("""
declare int %target(int %x)
%fp = global int (int)* %target
""")

    def test_control_flow_forms(self):
        _roundtrip("""
int %f(int %x) {
entry:
  switch int %x, label %done [ int 1, label %one int 2, label %two ]
one:
  ret int 10
two:
  ret int 20
done:
  ret int 0
}
""")

    def test_invoke_unwind(self):
        _roundtrip("""
declare void %may_throw()
int %f() {
entry:
  invoke void %may_throw() to label %ok unwind to label %bad
ok:
  ret int 0
bad:
  unwind
}
""")

    def test_memory_forms(self):
        _roundtrip("""
%node = type { int, %node* }
%node* %f(uint %n) {
entry:
  %one = malloc %node
  %many = malloc %node, uint %n
  %local = alloca int
  store int 5, int* %local
  %v = load int* %local
  %field = getelementptr %node* %one, long 0, uint 0
  store int %v, int* %field
  free %node* %many
  ret %node* %one
}
""")

    def test_shift_and_cast_and_vaarg(self):
        _roundtrip("""
int %f(int %x, sbyte** %ap) {
entry:
  %a = shl int %x, ubyte 2
  %b = shr int %a, ubyte 1
  %c = cast int %b to long
  %d = cast long %c to int
  %e = vaarg sbyte** %ap, int
  %f.1 = add int %d, %e
  ret int %f.1
}
""")

    def test_quoted_names(self):
        module = Module("odd")
        fn = module.new_function(types.function(types.INT, []), "odd name!")
        builder = IRBuilder(fn.append_block("entry block"))
        builder.ret(ConstantInt(types.INT, 0))
        text = print_module(module)
        again = parse_module(text)
        assert "odd name!" in again.functions
        assert print_module(again) == text

    def test_unnamed_values_get_slots(self):
        module = parse_module("""
int %f(int %x) {
entry:
  %0 = add int %x, 1
  %1 = mul int %0, %0
  ret int %1
}
""")
        text = print_module(module)
        assert "%0" in text and "%1" in text

    def test_local_global_collision_resolved(self):
        """A local whose name matches a global must print unambiguously."""
        module = parse_module("""
%x = global int 7
int %f() {
entry:
  %x.local = load int* %x
  ret int %x.local
}
""")
        fn = module.functions["f"]
        load = fn.entry_block.instructions[0]
        load.name = "x"  # force the collision
        text = print_module(module)
        again = parse_module(text)
        verify_module(again)
        assert print_module(again) == text


def _locs(module):
    return [
        (fn.name, bi, ii, inst.loc)
        for fn in module.functions.values()
        for bi, block in enumerate(fn.blocks)
        for ii, inst in enumerate(block.instructions)
    ]


class TestLocMetadata:
    def test_loc_prints_and_parses(self):
        module = parse_module("""
int %f(int %x) {
entry:
  %a = add int %x, 1 !loc 3
  %b = mul int %a, %a !loc 4
  ret int %b !loc 5
}
""")
        fn = module.functions["f"]
        assert [i.loc for i in fn.entry_block.instructions] == [3, 4, 5]
        text = print_module(module)
        assert "!loc 3" in text and "!loc 5" in text
        assert _locs(parse_module(text)) == _locs(module)

    def test_unlocated_instructions_print_without_suffix(self):
        module = parse_module("""
int %f() {
entry:
  %a = add int 1, 2
  ret int %a !loc 9
}
""")
        text = print_module(module)
        lines = [l for l in text.splitlines() if "add" in l]
        assert lines and "!loc" not in lines[0]
        again = parse_module(text)
        assert _locs(again) == _locs(module)

    def test_loc_on_void_instructions(self):
        """Stores/branches have no result name; the suffix still applies."""
        module = parse_module("""
void %f(int* %p) {
entry:
  store int 1, int* %p !loc 7
  br label %exit !loc 7
exit:
  ret void !loc 8
}
""")
        verify_module(module)
        assert _locs(parse_module(print_module(module))) == _locs(module)

    def test_frontend_locs_survive_text_round_trip(self):
        from repro.frontend import compile_source

        module = compile_source("""
int main() {
  int x = 4;
  int y = x * 10;
  return y + 2;
}
""", "located")
        locs = _locs(module)
        assert any(loc is not None for *_ignored, loc in locs)
        assert _locs(parse_module(print_module(module))) == locs

    def test_bad_loc_metadata_rejected(self):
        with pytest.raises(ParseError):
            parse_module("""
int %f() {
entry:
  ret int 0 !loc
}
""")
        with pytest.raises(ParseError):
            parse_module("""
int %f() {
entry:
  ret int 0 !line 3
}
""")
