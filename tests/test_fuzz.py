"""Tests for the differential fuzzer and lc-bugpoint.

Three claims under test: the generator emits valid, deterministic,
defined programs; the harness actually notices miscompiles (checked by
planting one); and bugpoint can both name a guilty pass and shrink a
reproducer below the size a human wants to read.
"""

import pytest

from repro.core import print_module, verify_module
from repro.core.instructions import Opcode
from repro.driver.pipelines import optimize_module, standard_pipeline
from repro.frontend import compile_source
from repro.fuzz import (
    HarnessConfig, bisect_passes, bugpoint_source, check_program,
    clone_module, fuzz, generate_program, reduce_module, run_interpreter,
    run_machine,
)
from repro.backend.targets import SPARC, X86


FAST = HarnessConfig(step_limit=1_000_000)


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------

def test_generator_is_deterministic():
    assert generate_program(42) == generate_program(42)
    assert generate_program(42) != generate_program(43)


@pytest.mark.parametrize("seed", range(8))
def test_generated_programs_compile_and_verify_at_all_levels(seed):
    source = generate_program(seed)
    for level in (0, 1, 2):
        module = compile_source(source, f"gen{seed}")
        if level:
            optimize_module(module, level=level)
        verify_module(module)


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------

def test_fixed_seed_batch_is_clean():
    report = fuzz(seed=7000, count=8, config=FAST)
    details = [
        (seed, result.error or [d.describe() for d in result.divergences])
        for seed, result in report.divergent
    ]
    assert report.clean, details


def test_harness_detects_injected_miscompile(monkeypatch):
    """Plant a miscompiling pass in the -O pipeline; the optimizer
    oracle must flag it."""

    class EvilPass:
        name = "evil-add-flip"

        def run_on_function(self, function):
            for block in function.blocks:
                for inst in block:
                    if inst.opcode == Opcode.ADD:
                        inst.opcode = Opcode.SUB
                        return True
            return False

    from repro.driver import pipelines

    real_pipeline = pipelines.standard_pipeline

    def evil_pipeline(level=2, verify_each=False):
        manager = real_pipeline(level, verify_each)
        if level > 0:
            manager.add(EvilPass())
        return manager

    monkeypatch.setattr(pipelines, "standard_pipeline", evil_pipeline)
    source = generate_program(7001)
    result = check_program(source, FAST)
    oracles = {d.oracle for d in result.divergences}
    assert any(o.startswith("interp-O") for o in oracles), result


def test_simulators_agree_with_interpreter_on_function_pointers():
    # The generator does not emit function pointers; cover CALLR here.
    source = """
extern int print_int(int x);
int twice(int x) { return x * 2; }
int thrice(int x) { return x * 3; }
int main() {
  int (*table[2])(int);
  table[0] = twice;
  table[1] = thrice;
  int total = 0;
  int i = 0;
  for (i = 0; i < 6; i = i + 1) {
    total = total + table[i & 1](i + 1);
  }
  print_int(total);
  return total % 256;
}
"""
    result = check_program(source, FAST)
    assert result.divergences == [], [
        d.describe() for d in result.divergences]
    assert result.reference.output == "54\n"


def test_timeouts_are_skipped_not_flagged():
    source = """
int main() {
  int i = 0;
  while (i < 1000000000) { i = i + 1; }
  return i;
}
"""
    result = check_program(source, HarnessConfig(step_limit=10_000))
    assert result.skipped
    assert result.divergences == []


# ----------------------------------------------------------------------
# Bugpoint
# ----------------------------------------------------------------------

# Function parameters are opaque to the (intraprocedural) -O pipeline,
# so the adds below survive constant propagation and a planted
# add-flipping pass always has something to break.
_FIXTURE = """
extern int print_int(int x);
int mix(int a, int b) {
  int c = a * 7;
  int d = b * 11;
  int e = c ^ d;
  int f = e | 12;
  int g = (f & 60) + b;
  return (a + b) + (g - e);
}
int main() {
  print_int(mix(3, 5));
  return 0;
}
"""


class _EvilAddFlip:
    name = "evil-add-flip"

    def run_on_function(self, function):
        for block in function.blocks:
            for inst in block:
                if inst.opcode == Opcode.ADD:
                    inst.opcode = Opcode.SUB
                    return True
        return False


def test_bisection_names_the_planted_pass():
    reference = run_interpreter(compile_source(_FIXTURE, "fix"))
    pipeline = standard_pipeline(2).passes
    planted = pipeline[:4] + [_EvilAddFlip()] + pipeline[4:]

    def interesting(module):
        outcome = run_interpreter(module)
        return outcome.kind != "timeout" and outcome != reference

    result = bisect_passes(lambda: compile_source(_FIXTURE, "fix"),
                           interesting, passes=planted)
    assert result.guilty_pass == "evil-add-flip"


def test_reduction_shrinks_injected_miscompile_below_ten_instructions():
    def interesting(module):
        base = run_interpreter(clone_module(module), 100_000)
        if base.kind == "timeout":
            return False
        mutated = clone_module(module)
        for function in mutated.defined_functions():
            _EvilAddFlip().run_on_function(function)
        outcome = run_interpreter(mutated, 100_000)
        return outcome.kind != "timeout" and outcome != base

    reduced = reduce_module(compile_source(_FIXTURE, "fix"), interesting)
    verify_module(reduced)  # every accepted step stays verifier-clean
    count = sum(f.instruction_count()
                for f in reduced.defined_functions())
    assert count <= 10, print_module(reduced)
    assert interesting(reduced)


def test_bugpoint_refuses_uninteresting_input():
    module = compile_source(_FIXTURE, "fix")
    with pytest.raises(ValueError):
        reduce_module(module, lambda m: False)


def test_bugpoint_source_end_to_end(monkeypatch):
    """Full workflow against a planted optimizer bug: guilty pass is
    named and the reproducer is small and verifier-clean."""
    from repro.driver import pipelines

    real_pipeline = pipelines.standard_pipeline

    def evil_pipeline(level=2, verify_each=False):
        manager = real_pipeline(level, verify_each)
        if level > 0:
            manager.add(_EvilAddFlip())
        return manager

    monkeypatch.setattr(pipelines, "standard_pipeline", evil_pipeline)
    result = bugpoint_source(_FIXTURE, "interp-O1", step_limit=1_000_000)
    assert result.guilty_pass == "evil-add-flip"
    verify_module(result.reduced)
    assert result.instruction_count <= 10, result.reduced_text


# ----------------------------------------------------------------------
# Machine simulator basics (the backend oracle's execution engine)
# ----------------------------------------------------------------------

def test_simulator_runs_both_targets_and_matches_reference():
    source = generate_program(7002)
    module = compile_source(source, "sim")
    reference = run_interpreter(module, 1_000_000)
    if reference.kind == "timeout":
        pytest.skip("unlucky seed: reference exceeds budget")
    for target in (X86, SPARC):
        outcome = run_machine(module, target, 8_000_000)
        assert outcome == reference, (target.name, outcome.describe(),
                                      reference.describe())
