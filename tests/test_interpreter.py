"""Tests for the execution engine: memory model, control flow,
exceptions, varargs, externals, and fault behaviour."""

import pytest

from repro.core import parse_module, types
from repro.execution import (
    ExecutionError, Interpreter, MemoryFault, StepLimitExceeded,
    UndefinedFunction, UnhandledUnwind,
)
from repro.execution.memory import Memory
from repro.core.datalayout import DEFAULT


def _run(source: str, fn: str = "main", args=()):
    module = parse_module(source)
    interp = Interpreter(module)
    return interp.run(fn, args), interp


class TestArithmetic:
    def test_wrapping(self):
        result, _ = _run("""
int %main() {
entry:
  %big = mul int 2000000000, 2
  ret int %big
}
""")
        assert result == types.INT.wrap(4000000000)

    def test_signed_division(self):
        result, _ = _run("""
int %main() {
entry:
  %q = div int -7, 2
  ret int %q
}
""")
        assert result == -3

    def test_division_by_zero_faults(self):
        module = parse_module("""
int %main(int %d) {
entry:
  %q = div int 10, %d
  ret int %q
}
""")
        from repro.core.constfold import ArithmeticFault

        with pytest.raises(ArithmeticFault):
            Interpreter(module).run("main", [0])

    def test_float_math(self):
        result, _ = _run("""
double %main() {
entry:
  %x = mul double 1.5, 4.0
  %y = add double %x, 0.25
  ret double %y
}
""")
        assert result == 6.25


class TestMemory:
    def test_alloca_store_load(self):
        result, _ = _run("""
int %main() {
entry:
  %slot = alloca int
  store int 77, int* %slot
  %v = load int* %slot
  ret int %v
}
""")
        assert result == 77

    def test_malloc_free(self):
        result, interp = _run("""
int %main() {
entry:
  %p = malloc int
  store int 5, int* %p
  %v = load int* %p
  free int* %p
  ret int %v
}
""")
        assert result == 5
        assert interp.memory.live_allocations("heap") == 0

    def test_null_dereference_faults(self):
        module = parse_module("""
int %main(int* %p) {
entry:
  %v = load int* %p
  ret int %v
}
""")
        with pytest.raises(MemoryFault, match="null"):
            Interpreter(module).run("main", [0])

    def test_out_of_bounds_faults(self):
        module = parse_module("""
int %main() {
entry:
  %arr = alloca [2 x int]
  %p = getelementptr [2 x int]* %arr, long 0, long 5
  %v = load int* %p
  ret int %v
}
""")
        with pytest.raises(MemoryFault, match="overruns"):
            Interpreter(module).run("main")

    def test_use_after_free_faults(self):
        module = parse_module("""
int %main() {
entry:
  %p = malloc int
  free int* %p
  %v = load int* %p
  ret int %v
}
""")
        with pytest.raises(MemoryFault, match="unmapped"):
            Interpreter(module).run("main")

    def test_double_free_faults(self):
        module = parse_module("""
void %main() {
entry:
  %p = malloc int
  free int* %p
  free int* %p
  ret void
}
""")
        with pytest.raises(MemoryFault):
            Interpreter(module).run("main")

    def test_stack_freed_on_return(self):
        _, interp = _run("""
internal void %frame() {
entry:
  %local = alloca [16 x int]
  ret void
}
void %main() {
entry:
  call void %frame()
  call void %frame()
  ret void
}
""")
        assert interp.memory.live_allocations("stack") == 0

    def test_write_to_constant_faults(self):
        module = parse_module("""
%table = internal constant [2 x int] [ int 1, int 2 ]
void %main() {
entry:
  %p = getelementptr [2 x int]* %table, long 0, long 0
  store int 9, int* %p
  ret void
}
""")
        with pytest.raises(MemoryFault, match="constant"):
            Interpreter(module).run("main")

    def test_pointer_int_round_trip(self):
        result, _ = _run("""
int %main() {
entry:
  %p = malloc int
  store int 31, int* %p
  %as_long = cast int* %p to long
  %back = cast long %as_long to int*
  %v = load int* %back
  ret int %v
}
""")
        assert result == 31

    def test_byte_punning(self):
        """Store an int, read its low byte through a char view —
        little-endian, like the flat memory model promises."""
        result, _ = _run("""
int %main() {
entry:
  %slot = alloca int
  store int 258, int* %slot
  %raw = cast int* %slot to sbyte*
  %low = load sbyte* %raw
  %v = cast sbyte %low to int
  ret int %v
}
""")
        assert result == 2

    def test_struct_field_layout(self):
        result, _ = _run("""
%pair = type { sbyte, int }
int %main() {
entry:
  %p = malloc %pair
  %f1 = getelementptr %pair* %p, long 0, uint 1
  store int 12, int* %f1
  %v = load int* %f1
  ret int %v
}
""")
        assert result == 12


class TestGlobals:
    def test_initialized_global(self):
        result, _ = _run("""
%counter = global int 41
int %main() {
entry:
  %v = load int* %counter
  %v1 = add int %v, 1
  store int %v1, int* %counter
  %w = load int* %counter
  ret int %w
}
""")
        assert result == 42

    def test_global_array_and_string(self):
        result, _ = _run("""
%text = internal constant [3 x sbyte] c"ab\\00"
int %main() {
entry:
  %p = getelementptr [3 x sbyte]* %text, long 0, long 1
  %c = load sbyte* %p
  %v = cast sbyte %c to int
  ret int %v
}
""")
        assert result == ord("b")

    def test_global_pointing_to_global(self):
        result, _ = _run("""
%target = global int 99
%indirect = global int* getelementptr (int* %target, long 0)
int %main() {
entry:
  %p = load int** %indirect
  %v = load int* %p
  ret int %v
}
""")
        assert result == 99


class TestControlFlow:
    def test_switch_dispatch(self):
        module = parse_module("""
int %main(int %x) {
entry:
  switch int %x, label %other [ int 1, label %one int 5, label %five ]
one:
  ret int 100
five:
  ret int 500
other:
  ret int -1
}
""")
        interp = Interpreter(module)
        assert interp.run("main", [1]) == 100
        assert Interpreter(module).run("main", [5]) == 500
        assert Interpreter(module).run("main", [9]) == -1

    def test_phi_swap(self):
        """Phis read their inputs simultaneously: the classic swap."""
        result, _ = _run("""
int %main() {
entry:
  br label %loop
loop:
  %a = phi int [ 1, %entry ], [ %b, %loop ]
  %b = phi int [ 2, %entry ], [ %a, %loop ]
  %i = phi int [ 0, %entry ], [ %i1, %loop ]
  %i1 = add int %i, 1
  %go = setlt int %i1, 3
  br bool %go, label %loop, label %done
done:
  %r = mul int %a, 10
  %r2 = add int %r, %b
  ret int %r2
}
""")
        # Two swaps happen on the two back edges: a=1, b=2 -> 12.  A
        # (buggy) sequential phi evaluation would give a=b and 22.
        assert result == 12

    def test_indirect_call(self):
        result, _ = _run("""
internal int %double(int %x) {
entry:
  %r = mul int %x, 2
  ret int %r
}
%fp = global int (int)* %double
int %main() {
entry:
  %f = load int (int)** %fp
  %v = call int (int)* %f(int 8)
  ret int %v
}
""")
        assert result == 16

    def test_bad_function_pointer_faults(self):
        module = parse_module("""
int %main() {
entry:
  %p = cast long 12345 to int ()*
  %v = call int ()* %p()
  ret int %v
}
""")
        with pytest.raises(MemoryFault):
            Interpreter(module).run("main")

    def test_step_limit(self):
        module = parse_module("""
void %main() {
entry:
  br label %forever
forever:
  br label %forever
}
""")
        with pytest.raises(StepLimitExceeded):
            Interpreter(module, step_limit=1000).run("main")


class TestExceptions:
    SOURCE = """
internal void %thrower(int %x) {
entry:
  %bad = setgt int %x, 0
  br bool %bad, label %boom, label %calm
boom:
  unwind
calm:
  ret void
}
int %main(int %x) {
entry:
  invoke void %thrower(int %x) to label %ok unwind to label %caught
ok:
  ret int 0
caught:
  ret int 1
}
"""

    def test_invoke_normal_path(self):
        module = parse_module(self.SOURCE)
        assert Interpreter(module).run("main", [0]) == 0

    def test_invoke_unwind_path(self):
        module = parse_module(self.SOURCE)
        assert Interpreter(module).run("main", [5]) == 1

    def test_unwind_skips_frames(self):
        result, _ = _run("""
internal void %level3() {
entry:
  unwind
}
internal void %level2() {
entry:
  call void %level3()
  ret void
}
internal void %level1() {
entry:
  call void %level2()
  ret void
}
int %main() {
entry:
  invoke void %level1() to label %ok unwind to label %caught
ok:
  ret int 0
caught:
  ret int 7
}
""")
        assert result == 7

    def test_unhandled_unwind_raises(self):
        module = parse_module("""
void %main() {
entry:
  unwind
}
""")
        with pytest.raises(UnhandledUnwind):
            Interpreter(module).run("main")

    def test_stack_released_during_unwind(self):
        _, interp = _run("""
internal void %deep(int %n) {
entry:
  %buf = alloca [8 x int]
  %zero = seteq int %n, 0
  br bool %zero, label %boom, label %go
boom:
  unwind
go:
  %n1 = sub int %n, 1
  call void %deep(int %n1)
  ret void
}
int %main() {
entry:
  invoke void %deep(int 10) to label %ok unwind to label %caught
ok:
  ret int 0
caught:
  ret int 1
}
""")
        assert interp.memory.live_allocations("stack") == 0


class TestExternals:
    def test_printf(self):
        _, interp = _run(r"""
%fmt = internal constant [15 x sbyte] c"x=%d s=%s c=%c\00"
%msg = internal constant [3 x sbyte] c"hi\00"
declare int %printf(sbyte* %f, ...)
void %main() {
entry:
  %f = getelementptr [15 x sbyte]* %fmt, long 0, long 0
  %m = getelementptr [3 x sbyte]* %msg, long 0, long 0
  %c = cast int 33 to sbyte
  %n = call int (sbyte*, ...)* %printf(sbyte* %f, int 42, sbyte* %m, sbyte %c)
  ret void
}
""")
        assert "".join(interp.output) == "x=42 s=hi c=!"

    def test_undefined_external_raises(self):
        module = parse_module("""
declare void %no_such_function()
void %main() {
entry:
  call void %no_such_function()
  ret void
}
""")
        with pytest.raises(UndefinedFunction):
            Interpreter(module).run("main")

    def test_exit(self):
        result, _ = _run("""
declare void %exit(int %code)
int %main() {
entry:
  call void %exit(int 3)
  ret int 0
}
""")
        assert result == 3

    def test_strlen_strcmp(self):
        result, _ = _run(r"""
%a = internal constant [4 x sbyte] c"abc\00"
declare long %strlen(sbyte* %s)
int %main() {
entry:
  %p = getelementptr [4 x sbyte]* %a, long 0, long 0
  %n = call long %strlen(sbyte* %p)
  %v = cast long %n to int
  ret int %v
}
""")
        assert result == 3

    def test_memset_memcpy(self):
        result, _ = _run("""
declare sbyte* %memset(sbyte* %d, int %c, long %n)
declare sbyte* %memcpy(sbyte* %d, sbyte* %s, long %n)
int %main() {
entry:
  %a = malloc sbyte, uint 8
  %b = malloc sbyte, uint 8
  %r1 = call sbyte* %memset(sbyte* %a, int 7, long 8)
  %r2 = call sbyte* %memcpy(sbyte* %b, sbyte* %a, long 8)
  %p = getelementptr sbyte* %b, long 5
  %v = load sbyte* %p
  %w = cast sbyte %v to int
  ret int %w
}
""")
        assert result == 7


class TestVarargs:
    def test_defined_vararg_function(self):
        result, _ = _run("""
internal int %sum3(int %count, ...) {
entry:
  %ap = alloca sbyte*
  call void %llvm.va_start(sbyte** %ap)
  %a = vaarg sbyte** %ap, int
  %b = vaarg sbyte** %ap, int
  %c = vaarg sbyte** %ap, int
  %s1 = add int %a, %b
  %s2 = add int %s1, %c
  ret int %s2
}
declare void %llvm.va_start(sbyte** %ap)
int %main() {
entry:
  %v = call int (int, ...)* %sum3(int 3, int 10, int 20, int 12)
  ret int %v
}
""")
        assert result == 42


class TestMemoryUnit:
    def test_allocation_bounds(self):
        memory = Memory(DEFAULT)
        address = memory.allocate(16)
        memory.write_bytes(address, b"x" * 16)
        with pytest.raises(MemoryFault):
            memory.write_bytes(address + 10, b"y" * 8)

    def test_typed_round_trip(self):
        memory = Memory(DEFAULT)
        address = memory.allocate(8)
        for ty, value in ((types.INT, -123), (types.DOUBLE, 2.5),
                          (types.BOOL, True), (types.ULONG, 2**63)):
            memory.store(address, ty, value)
            assert memory.load(address, ty) == value

    def test_cstring(self):
        memory = Memory(DEFAULT)
        address = memory.allocate(8)
        memory.write_bytes(address, b"hey\0more")
        assert memory.read_cstring(address) == b"hey"
