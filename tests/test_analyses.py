"""Tests for CFG utilities, loops, call graph, alias analysis, Mod/Ref."""

import pytest

from repro.analysis import (
    AliasResult, CallGraph, LoopInfo, ModRefAnalysis, alias,
)
from repro.analysis.cfg import (
    edges, is_critical_edge, postorder, reachable_blocks,
    reverse_postorder, split_critical_edge, unreachable_blocks,
)
from repro.core import (
    IRBuilder, Module, parse_function, parse_module, types,
    verify_function,
)
from repro.execution import Interpreter


LOOP_SOURCE = """
int %f(int %n) {
entry:
  br label %header
header:
  %i = phi int [ 0, %entry ], [ %next, %latch ]
  %c = setlt int %i, %n
  br bool %c, label %body, label %exit
body:
  br label %latch
latch:
  %next = add int %i, 1
  br label %header
exit:
  ret int %i
}
"""


class TestCFG:
    def test_reachable_and_unreachable(self):
        fn = parse_function("""
int %f() {
entry:
  ret int 1
island:
  ret int 2
}
""")
        assert [b.name for b in reachable_blocks(fn)] == ["entry"]
        assert [b.name for b in unreachable_blocks(fn)] == ["island"]

    def test_postorder_ends_at_entry_reversed(self):
        fn = parse_function(LOOP_SOURCE)
        rpo = reverse_postorder(fn)
        assert rpo[0].name == "entry"
        po = postorder(fn)
        assert po[-1].name == "entry"
        assert {b.name for b in rpo} == {"entry", "header", "body", "latch", "exit"}

    def test_edges(self):
        fn = parse_function(LOOP_SOURCE)
        edge_names = {(a.name, b.name) for a, b in edges(fn)}
        assert ("latch", "header") in edge_names
        assert ("header", "exit") in edge_names

    def test_critical_edge_split(self):
        fn = parse_function("""
int %f(bool %c) {
entry:
  br bool %c, label %shared, label %other
other:
  br label %shared
shared:
  %p = phi int [ 1, %entry ], [ 2, %other ]
  ret int %p
}
""")
        entry = fn.entry_block
        shared = fn.blocks[-1]
        assert is_critical_edge(entry, shared)
        split_critical_edge(entry, shared)
        verify_function(fn)
        assert Interpreter(fn.parent).run("f", [True]) == 1
        assert Interpreter(fn.parent).run("f", [False]) == 2


class TestLoops:
    def test_single_loop(self):
        fn = parse_function(LOOP_SOURCE)
        info = LoopInfo(fn)
        loops = info.all_loops()
        assert len(loops) == 1
        loop = loops[0]
        assert loop.header.name == "header"
        assert {b.name for b in loop.blocks} == {"header", "body", "latch"}
        assert [l.name for l in loop.latches] == ["latch"]
        assert loop.depth == 1

    def test_preheader_detection(self):
        fn = parse_function(LOOP_SOURCE)
        loop = LoopInfo(fn).all_loops()[0]
        assert loop.preheader().name == "entry"

    def test_exit_edges(self):
        fn = parse_function(LOOP_SOURCE)
        loop = LoopInfo(fn).all_loops()[0]
        exits = [(a.name, b.name) for a, b in loop.exit_edges()]
        assert exits == [("header", "exit")]

    def test_nested_loops(self):
        fn = parse_function("""
void %f(int %n) {
entry:
  br label %outer
outer:
  %i = phi int [ 0, %entry ], [ %i1, %outer.latch ]
  br label %inner
inner:
  %j = phi int [ 0, %outer ], [ %j1, %inner ]
  %j1 = add int %j, 1
  %jc = setlt int %j1, %n
  br bool %jc, label %inner, label %outer.latch
outer.latch:
  %i1 = add int %i, 1
  %ic = setlt int %i1, %n
  br bool %ic, label %outer, label %done
done:
  ret void
}
""")
        info = LoopInfo(fn)
        loops = info.all_loops()
        assert len(loops) == 2
        inner = next(l for l in loops if l.header.name == "inner")
        outer = next(l for l in loops if l.header.name == "outer")
        assert inner.parent is outer
        assert inner.depth == 2
        assert info.depth_of(inner.header) == 2
        assert info.depth_of(fn.entry_block) == 0

    def test_no_loops(self):
        fn = parse_function("int %f() {\nentry:\n  ret int 0\n}")
        assert LoopInfo(fn).all_loops() == []


class TestCallGraph:
    MODULE = """
declare void %external()
internal int %leaf(int %x) {
entry:
  ret int %x
}
internal int %middle(int %x) {
entry:
  %r = call int %leaf(int %x)
  ret int %r
}
int %main() {
entry:
  %a = call int %middle(int 1)
  call void %external()
  ret int %a
}
"""

    def test_edges(self):
        module = parse_module(self.MODULE)
        graph = CallGraph(module)
        main = graph.node(module.functions["main"])
        assert {f.name for f in main.callees} == {"middle", "external"}
        leaf = graph.node(module.functions["leaf"])
        assert {f.name for f in leaf.callers} == {"middle"}

    def test_post_order_bottom_up(self):
        module = parse_module(self.MODULE)
        order = [f.name for f in CallGraph(module).post_order()]
        assert order.index("leaf") < order.index("middle") < order.index("main")

    def test_unknown_callers(self):
        module = parse_module(self.MODULE)
        graph = CallGraph(module)
        assert graph.node(module.functions["main"]).has_unknown_callers
        assert not graph.node(module.functions["leaf"]).has_unknown_callers

    def test_address_taken(self):
        module = parse_module("""
internal int %cb(int %x) {
entry:
  ret int %x
}
%table = global int (int)* %cb
int %main(int %v) {
entry:
  %f = load int (int)** %table
  %r = call int (int)* %f(int %v)
  ret int %r
}
""")
        graph = CallGraph(module)
        cb = module.functions["cb"]
        assert graph.is_address_taken(cb)
        # The indirect call conservatively edges to cb.
        main = graph.node(module.functions["main"])
        assert cb in main.callees


class TestAlias:
    def _f(self):
        return parse_function("""
void %f(int* %p, int* %q) {
entry:
  %a = alloca int
  %b = alloca int
  %pair = alloca { int, int }
  %f0 = getelementptr { int, int }* %pair, long 0, uint 0
  %f1 = getelementptr { int, int }* %pair, long 0, uint 1
  ret void
}
""")

    def test_distinct_allocas_no_alias(self):
        fn = self._f()
        a, b = fn.entry_block.instructions[0], fn.entry_block.instructions[1]
        assert alias(a, b) is AliasResult.NO_ALIAS

    def test_same_value_must_alias(self):
        fn = self._f()
        a = fn.entry_block.instructions[0]
        assert alias(a, a) is AliasResult.MUST_ALIAS

    def test_distinct_fields_no_alias(self):
        fn = self._f()
        f0 = fn.entry_block.instructions[3]
        f1 = fn.entry_block.instructions[4]
        assert alias(f0, f1) is AliasResult.NO_ALIAS

    def test_unknown_args_may_alias(self):
        fn = self._f()
        assert alias(fn.args[0], fn.args[1]) is AliasResult.MAY_ALIAS

    def test_arg_vs_fresh_alloca(self):
        fn = self._f()
        a = fn.entry_block.instructions[0]
        # Conservative: an unknown pointer may point anywhere visible,
        # but a *fresh* alloca has not escaped.  Our cheap analysis says
        # may-alias; the important bit is it never says MUST.
        assert alias(fn.args[0], a) is not AliasResult.MUST_ALIAS

    def test_null_never_aliases(self):
        from repro.core.values import ConstantPointerNull

        fn = self._f()
        null = ConstantPointerNull(types.pointer(types.INT))
        assert alias(null, fn.args[0]) is AliasResult.NO_ALIAS

    def test_gep_same_offset_must_alias(self):
        fn = parse_function("""
void %f() {
entry:
  %pair = alloca { int, int }
  %x = getelementptr { int, int }* %pair, long 0, uint 1
  %y = getelementptr { int, int }* %pair, long 0, uint 1
  ret void
}
""")
        x = fn.entry_block.instructions[1]
        y = fn.entry_block.instructions[2]
        assert alias(x, y) is AliasResult.MUST_ALIAS


class TestModRef:
    def test_direct_and_transitive(self):
        module = parse_module("""
%a = global int 0
%b = global int 0
internal void %writes_a() {
entry:
  store int 1, int* %a
  ret void
}
internal void %calls_writer() {
entry:
  call void %writes_a()
  ret void
}
internal int %reads_b() {
entry:
  %v = load int* %b
  ret int %v
}
int %main() {
entry:
  call void %calls_writer()
  %v = call int %reads_b()
  ret int %v
}
""")
        modref = ModRefAnalysis(module)
        a = module.globals["a"]
        b = module.globals["b"]
        writer = module.functions["writes_a"]
        caller = module.functions["calls_writer"]
        reader = module.functions["reads_b"]
        assert modref.may_modify(writer, a)
        assert not modref.may_modify(writer, b)
        assert modref.may_modify(caller, a)  # transitively
        assert not modref.may_modify(reader, a)
        assert modref.may_reference(reader, b)
        assert not modref.may_reference(reader, a)

    def test_unknown_external_mods_everything(self):
        module = parse_module("""
%g = global int 0
declare void %mystery()
internal void %calls_mystery() {
entry:
  call void %mystery()
  ret void
}
""")
        modref = ModRefAnalysis(module)
        caller = module.functions["calls_mystery"]
        assert modref.may_modify(caller, module.globals["g"])


class TestSummaries:
    MODULE = """
%counter = global int 0
declare void %external_thing()
internal void %leaf_writer() {
entry:
  store int 1, int* %counter
  ret void
}
internal int %leaf_reader() {
entry:
  %v = load int* %counter
  ret int %v
}
internal void %thrower() {
entry:
  unwind
}
internal void %calls_thrower() {
entry:
  call void %thrower()
  ret void
}
int %main() {
entry:
  call void %leaf_writer()
  %v = call int %leaf_reader()
  ret int %v
}
"""

    def _summaries(self):
        from repro.analysis.summaries import ModuleSummaries
        from repro.core import parse_module

        module = parse_module(self.MODULE)
        return module, ModuleSummaries.compute(module)

    def test_per_function_facts(self):
        _, summaries = self._summaries()
        writer = summaries.summaries["leaf_writer"]
        assert writer.writes_globals == ["counter"]
        assert not writer.reads_globals
        reader = summaries.summaries["leaf_reader"]
        assert reader.reads_globals == ["counter"]
        assert summaries.summaries["thrower"].unwinds_locally
        assert summaries.summaries["external_thing"].is_declaration
        assert set(summaries.summaries["main"].direct_callees) == \
            {"leaf_writer", "leaf_reader"}

    def test_summary_may_unwind_matches_body_scan(self):
        """The incremental-compilation contract: summary-driven facts
        equal recomputed-from-bodies facts."""
        from repro.transforms.ipo import PruneExceptionHandlers

        module, summaries = self._summaries()
        from_summaries = summaries.may_unwind(
            PruneExceptionHandlers.KNOWN_NO_UNWIND
        )
        from_bodies = PruneExceptionHandlers()._compute_may_unwind(module)
        assert from_summaries == from_bodies

    def test_transitive_writes(self):
        _, summaries = self._summaries()
        assert summaries.transitive_global_writes("main") == {"counter"}
        assert summaries.transitive_global_writes("leaf_reader") == set()
        # A closure containing an external is unknown.
        from repro.analysis.summaries import ModuleSummaries
        from repro.core import parse_module

        module = parse_module("""
declare void %mystery()
int %calls_out() {
entry:
  call void %mystery()
  ret int 0
}
""")
        other = ModuleSummaries.compute(module)
        assert other.transitive_global_writes("calls_out") is None

    def test_json_round_trip(self):
        from repro.analysis.summaries import ModuleSummaries

        _, summaries = self._summaries()
        restored = ModuleSummaries.from_json(summaries.to_json())
        assert restored.call_graph_edges() == summaries.call_graph_edges()
        assert restored.may_unwind() == summaries.may_unwind()

    def test_summaries_over_benchsuite(self):
        """Summary facts agree with body scans on a real program."""
        from repro.analysis.summaries import ModuleSummaries
        from repro.benchsuite import load_source
        from repro.frontend import compile_source
        from repro.transforms.ipo import PruneExceptionHandlers

        module = compile_source(load_source("mcf"), "mcf")
        summaries = ModuleSummaries.compute(module)
        assert summaries.may_unwind(
            PruneExceptionHandlers.KNOWN_NO_UNWIND
        ) == PruneExceptionHandlers()._compute_may_unwind(module)

    def test_invoke_does_not_propagate_unwind_in_summary(self):
        from repro.analysis.summaries import ModuleSummaries
        from repro.core import parse_module
        from repro.transforms.ipo import PruneExceptionHandlers

        module = parse_module("""
internal void %thrower() {
entry:
  unwind
}
int %guarded() {
entry:
  invoke void %thrower() to label %ok unwind to label %caught
ok:
  ret int 0
caught:
  ret int 1
}
""")
        summaries = ModuleSummaries.compute(module)
        from_summaries = summaries.may_unwind(
            PruneExceptionHandlers.KNOWN_NO_UNWIND
        )
        from_bodies = PruneExceptionHandlers()._compute_may_unwind(module)
        assert from_summaries == from_bodies
        assert not from_summaries["guarded"], "the invoke catches it"
