"""Tests for the LC front-end: lexer, parser, and code generation —
with semantics validated by executing the generated IR."""

import pytest

from repro.core import verify_module
from repro.execution import Interpreter, UnhandledUnwind
from repro.frontend import CodeGenError, LexError, ParseError, compile_source, parse, tokenize


def run_main(source: str, args=()):
    module = compile_source(source, "t")
    verify_module(module)
    return Interpreter(module).run("main", args)


def run_capture(source: str):
    module = compile_source(source, "t")
    interp = Interpreter(module)
    code = interp.run("main")
    return code, "".join(interp.output)


class TestLexer:
    def test_tokens(self):
        kinds = [t.kind for t in tokenize("int x = 42;")]
        assert kinds == ["keyword", "ident", "=", "int", ";", "eof"]

    def test_numbers(self):
        tokens = tokenize("10 0x1F 2.5 1e3 3u")
        assert [t.value for t in tokens[:-1]] == [10, 31, 2.5, 1000.0, 3]

    def test_char_and_string_escapes(self):
        tokens = tokenize(r"'\n' '\x41' "
                          '"a\\tb"')
        assert tokens[0].value == 10
        assert tokens[1].value == 65
        assert tokens[2].value == b"a\tb"

    def test_comments_skipped(self):
        tokens = tokenize("a // line\n /* block\nmore */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_operators_maximal_munch(self):
        kinds = [t.kind for t in tokenize("a <<= b >> c <= d")]
        assert kinds[1] == "<<=" and kinds[3] == ">>" and kinds[5] == "<="

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestParserErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse("int main() { return 0 }")

    def test_unknown_statement(self):
        with pytest.raises(ParseError):
            parse("int main() { else; }")

    def test_bad_character_rejected(self):
        with pytest.raises(LexError):
            parse("int main() { @bad; }")

    def test_case_outside_switch_body(self):
        with pytest.raises(ParseError):
            parse("int main() { switch (1) { return 0; } }")


class TestExpressions:
    def test_precedence(self):
        assert run_main("int main() { return 2 + 3 * 4; }") == 14
        assert run_main("int main() { return (2 + 3) * 4; }") == 20
        assert run_main("int main() { return 10 - 4 - 3; }") == 3
        assert run_main("int main() { return 1 << 3 | 1; }") == 9

    def test_comparisons_and_logic(self):
        assert run_main("int main() { return (3 < 5) && (5 < 3) ? 1 : 2; }") == 2
        assert run_main("int main() { return 1 == 1 ? 7 : 8; }") == 7

    def test_short_circuit(self):
        source = """
static int calls = 0;
static int noisy() { calls = calls + 1; return 0; }
int main() {
  int r = (0 != 0) && noisy();
  return calls * 10 + r;
}
"""
        assert run_main(source) == 0  # noisy never called

    def test_short_circuit_or(self):
        source = """
static int calls = 0;
static int noisy() { calls = calls + 1; return 1; }
int main() {
  int r = 1 || noisy();
  return calls * 10 + r;
}
"""
        assert run_main(source) == 1

    def test_increment_decrement(self):
        source = """
int main() {
  int x = 5;
  int a = x++;
  int b = ++x;
  int c = x--;
  int d = --x;
  return a * 1000 + b * 100 + c * 10 + d;
}
"""
        assert run_main(source) == 5 * 1000 + 7 * 100 + 7 * 10 + 5

    def test_compound_assignment(self):
        source = """
int main() {
  int x = 10;
  x += 5; x -= 3; x *= 2; x /= 4; x %= 5;
  return x;
}
"""
        assert run_main(source) == ((10 + 5 - 3) * 2 // 4) % 5

    def test_ternary(self):
        assert run_main("int main() { int x = 3; return x > 2 ? 10 : 20; }") == 10

    def test_unary_operators(self):
        assert run_main("int main() { return -(-5); }") == 5
        assert run_main("int main() { return ~0; }") == -1
        assert run_main("int main() { return !0 ? 4 : 5; }") == 4

    def test_integer_division_semantics(self):
        assert run_main("int main() { return -7 / 2; }") == -3
        assert run_main("int main() { return -7 % 2; }") == -1

    def test_sizeof(self):
        source = """
struct S { int a; double b; };
int main() { return (int)(sizeof(struct S) + sizeof(int) + sizeof(char*)); }
"""
        assert run_main(source) == 16 + 4 + 8

    def test_casts(self):
        assert run_main("int main() { return (int)2.9; }") == 2
        assert run_main("int main() { return (int)(char)257; }") == 1
        assert run_main("int main() { long v = 40; return (int)v + 2; }") == 42

    def test_unsigned_comparison(self):
        # As uint, -1 is the maximum value.
        assert run_main(
            "int main() { uint big = (uint)(0 - 1); return big > (uint)5 ? 1 : 0; }"
        ) == 1


class TestControlFlowStatements:
    def test_while_break_continue(self):
        source = """
int main() {
  int acc = 0;
  int i = 0;
  while (1) {
    i = i + 1;
    if (i > 10) { break; }
    if (i % 2 == 0) { continue; }
    acc = acc + i;
  }
  return acc;
}
"""
        assert run_main(source) == 1 + 3 + 5 + 7 + 9

    def test_do_while(self):
        source = """
int main() {
  int n = 0;
  do { n = n + 1; } while (n < 5);
  return n;
}
"""
        assert run_main(source) == 5

    def test_for_with_empty_parts(self):
        source = """
int main() {
  int i = 0;
  for (;;) {
    i = i + 1;
    if (i == 7) { break; }
  }
  return i;
}
"""
        assert run_main(source) == 7

    def test_switch_fallthrough(self):
        source = """
int classify(int x) {
  int r = 0;
  switch (x) {
    case 1:
    case 2: r = r + 10;        // 1 and 2 fall together
    case 3: r = r + 100; break; // 1,2,3 all add 100
    case 4: r = 4; break;
    default: r = 0 - 1;
  }
  return r;
}
int main() {
  return classify(1) * 100000 + classify(3) * 100 + classify(9) + 1;
}
"""
        assert run_main(source) == 110 * 100000 + 100 * 100 + (-1) + 1

    def test_nested_loops(self):
        source = """
int main() {
  int total = 0;
  int i; int j;
  for (i = 0; i < 4; i++) {
    for (j = 0; j < 4; j++) {
      if (j > i) { break; }
      total += 1;
    }
  }
  return total;
}
"""
        assert run_main(source) == 1 + 2 + 3 + 4


class TestDataStructures:
    def test_struct_and_pointers(self):
        source = """
struct Point { int x; int y; };
typedef struct Point Point;
static int manhattan(Point *p) {
  int ax = p->x; if (ax < 0) { ax = 0 - ax; }
  int ay = p->y; if (ay < 0) { ay = 0 - ay; }
  return ax + ay;
}
int main() {
  Point p;
  p.x = 0 - 3;
  p.y = 4;
  return manhattan(&p);
}
"""
        assert run_main(source) == 7

    def test_linked_list(self):
        source = """
struct N { int v; struct N *next; };
typedef struct N N;
int main() {
  N *head = null;
  int i;
  for (i = 1; i <= 5; i++) {
    N *n = malloc(N);
    n->v = i * i;
    n->next = head;
    head = n;
  }
  int total = 0;
  while (head) { total += head->v; head = head->next; }
  return total;
}
"""
        assert run_main(source) == 1 + 4 + 9 + 16 + 25

    def test_arrays_and_2d(self):
        source = """
static int grid[3][4];
int main() {
  int i; int j;
  for (i = 0; i < 3; i++) {
    for (j = 0; j < 4; j++) { grid[i][j] = i * 10 + j; }
  }
  return grid[2][3] + grid[0][1];
}
"""
        assert run_main(source) == 23 + 1

    def test_pointer_arithmetic(self):
        source = """
int main() {
  int *buf = malloc(int, 10);
  int *p = buf;
  int i;
  for (i = 0; i < 10; i++) { *p = i; p = p + 1; }
  int *q = buf + 9;
  long count = q - buf;
  int r = *q + (int)count;
  free(buf);
  return r;
}
"""
        assert run_main(source) == 9 + 9

    def test_string_literals(self):
        code, output = run_capture("""
extern int print_str(char *s);
int main() {
  print_str("hello world");
  return 0;
}
""")
        assert output == "hello world\n"

    def test_function_pointers(self):
        source = """
static int add1(int x) { return x + 1; }
static int times2(int x) { return x * 2; }
static int apply(int (*f)(int), int v) { return f(v); }
int main() {
  int (*op)(int) = null;
  int r = apply(add1, 10);
  return r + apply(times2, 10);
}
"""
        assert run_main(source) == 11 + 20

    def test_global_initializers(self):
        source = """
static int answer = 42;
static double ratio = 0.5;
static char *msg = "yo";
static int table[4];
int main() {
  table[0] = answer;
  return table[0] + (int)(ratio * 2.0) + (int)*msg;
}
"""
        assert run_main(source) == 42 + 1 + ord("y")

    def test_float_arithmetic(self):
        source = """
int main() {
  double a = 1.5;
  double b = a * 4.0 + 0.25;
  float narrow = (float)b;
  return (int)(narrow * 4.0);
}
"""
        assert run_main(source) == 25


class TestExceptionsLC:
    def test_throw_without_try_aborts(self):
        module = compile_source("int main() { throw; return 0; }", "t")
        with pytest.raises(UnhandledUnwind):
            Interpreter(module).run("main")

    def test_local_throw_is_direct_branch(self):
        """Paper 2.4: a throw inside the try lowers to a branch, not an
        unwind — no invoke machinery involved."""
        source = """
int main() {
  int r = 0;
  try { throw; r = 1; } catch { r = 2; }
  return r;
}
"""
        module = compile_source(source, "t")
        from repro.core.instructions import Opcode

        main = module.functions["main"]
        assert not any(i.opcode == Opcode.UNWIND for i in main.instructions())
        assert Interpreter(module).run("main") == 2

    def test_nested_try(self):
        source = """
static void boom() { throw; }
int main() {
  int log = 0;
  try {
    try {
      boom();
    } catch {
      log = log + 1;
      throw;       // rethrow from inner catch... outside inner try
    }
  } catch {
    log = log + 10;
  }
  return log;
}
"""
        # The rethrow in the inner catch is *inside the outer try*, so
        # it branches to the outer catch directly.
        assert run_main(source) == 11


class TestSemanticErrors:
    def test_undefined_variable(self):
        with pytest.raises(CodeGenError, match="undefined"):
            compile_source("int main() { return nope; }")

    def test_unknown_field(self):
        with pytest.raises(CodeGenError, match="field"):
            compile_source("""
struct S { int a; };
int main() { struct S s; return s.b; }
""")

    def test_call_undeclared(self):
        with pytest.raises(CodeGenError, match="undeclared"):
            compile_source("int main() { return missing(1); }")

    def test_wrong_arity(self):
        with pytest.raises(CodeGenError, match="arguments"):
            compile_source("""
static int f(int a, int b) { return a + b; }
int main() { return f(1); }
""")

    def test_pointer_mismatch_requires_cast(self):
        with pytest.raises(CodeGenError, match="cast"):
            compile_source("""
int main() {
  int *p = malloc(int);
  char *q = p;
  return 0;
}
""")

    def test_break_outside_loop(self):
        with pytest.raises(CodeGenError, match="break"):
            compile_source("int main() { break; return 0; }")

    def test_struct_redefinition(self):
        with pytest.raises(CodeGenError, match="redefined"):
            compile_source("""
struct S { int a; };
struct S { int b; };
int main() { return 0; }
""")
