"""Integration tests: tricky whole programs through the full pipeline,
checked for exact output equivalence at every optimization level."""

import pytest

from repro.core import verify_module
from repro.driver import compile_and_link, optimize_module
from repro.execution import Interpreter
from repro.frontend import compile_source


def _equivalent_at_all_levels(source: str, entry: str = "main", args=()):
    reference = None
    outputs = None
    for level in (0, 1, 2, 3):
        module = compile_source(source, f"o{level}")
        optimize_module(module, level, verify_each=True)
        verify_module(module)
        interp = Interpreter(module, step_limit=100_000_000)
        result = interp.run(entry, args)
        if reference is None:
            reference = result
            outputs = interp.output
        else:
            assert result == reference, f"-O{level} changed the result"
            assert interp.output == outputs, f"-O{level} changed the output"
    # And the full LTO pipeline.
    module = compile_and_link([source], "lto", level=3)
    verify_module(module)
    interp = Interpreter(module, step_limit=100_000_000)
    assert interp.run(entry, args) == reference
    assert interp.output == outputs
    return reference


class TestTrickyPrograms:
    def test_mutual_recursion(self):
        result = _equivalent_at_all_levels("""
static int is_odd(int n);
static int is_even(int n) {
  if (n == 0) { return 1; }
  return is_odd(n - 1);
}
static int is_odd(int n) {
  if (n == 0) { return 0; }
  return is_even(n - 1);
}
int main() {
  return is_even(10) * 10 + is_odd(7);
}
""")
        assert result == 11

    def test_function_pointer_dispatch_table(self):
        result = _equivalent_at_all_levels("""
static int op_add(int a, int b) { return a + b; }
static int op_sub(int a, int b) { return a - b; }
static int op_mul(int a, int b) { return a * b; }
static int (*ops[3])(int, int);
int main() {
  ops[0] = op_add;
  ops[1] = op_sub;
  ops[2] = op_mul;
  int acc = 0;
  int i;
  for (i = 0; i < 3; i++) {
    acc = acc * 10 + ops[i](7, 3);
  }
  return acc;
}
""")
        assert result == ((10 * 0 + 10) * 10 + 4) * 10 + 21

    def test_exceptions_inside_loop(self):
        result = _equivalent_at_all_levels("""
static int risky(int x) {
  if (x % 3 == 0) { throw; }
  return x * 2;
}
int main() {
  int total = 0;
  int faults = 0;
  int i;
  for (i = 1; i <= 10; i++) {
    try {
      total += risky(i);
    } catch {
      faults = faults + 1;
    }
  }
  return total * 10 + faults;
}
""")
        # i in 1..10, multiples of 3 fault (3,6,9): total = 2*(sum-18)=74
        assert result == (2 * (55 - 18)) * 10 + 3

    def test_shadowing_and_scopes(self):
        result = _equivalent_at_all_levels("""
static int x = 100;
int main() {
  int x = 10;
  int total = x;
  {
    int x = 1;
    total = total + x;
  }
  total = total + x;
  return total;
}
""")
        assert result == 10 + 1 + 10

    def test_aliased_writes_not_reordered(self):
        """GVN with alias analysis must keep may-aliasing accesses in
        order: two pointers to the same slot."""
        result = _equivalent_at_all_levels("""
static int slot = 0;
static int *alias_one() { return &slot; }
static int *alias_two() { return &slot; }
int main() {
  int *p = alias_one();
  int *q = alias_two();
  *p = 5;
  *q = 9;
  return *p;
}
""")
        assert result == 9

    def test_interleaved_heap_and_stack(self):
        result = _equivalent_at_all_levels("""
struct Frame { int id; int *scratch; };
typedef struct Frame Frame;
static int process(Frame *f, int depth) {
  if (depth == 0) { return f->id; }
  Frame child;
  int local[4];
  local[depth % 4] = depth;
  child.id = f->id + local[depth % 4];
  child.scratch = local;
  return process(&child, depth - 1);
}
int main() {
  Frame root;
  int buf[4];
  root.id = 1;
  root.scratch = buf;
  return process(&root, 6);
}
""")
        assert result == 1 + 6 + 5 + 4 + 3 + 2 + 1

    def test_string_processing(self):
        result = _equivalent_at_all_levels(r"""
extern long strlen(char *s);
static int count_char(char *s, char target) {
  int n = 0;
  while (*s != (char)0) {
    if (*s == target) { n = n + 1; }
    s = s + 1;
  }
  return n;
}
int main() {
  char *text = "the quick brown fox jumps over the lazy dog";
  return count_char(text, 'o') * 100 + (int)strlen(text);
}
""")
        # "the quick brown fox jumps over the lazy dog" is 43 chars
        # with four o's.
        assert result == 4 * 100 + 43

    def test_sieve_of_eratosthenes(self):
        result = _equivalent_at_all_levels("""
static char composite[200];
int main() {
  int count = 0;
  int i;
  for (i = 2; i < 200; i++) {
    if (!composite[i]) {
      count = count + 1;
      int j;
      for (j = i + i; j < 200; j += i) {
        composite[j] = 1;
      }
    }
  }
  return count;
}
""")
        assert result == 46  # primes below 200

    def test_matrix_multiply(self):
        result = _equivalent_at_all_levels("""
static int a[4][4];
static int b[4][4];
static int c[4][4];
int main() {
  int i; int j; int k;
  for (i = 0; i < 4; i++) {
    for (j = 0; j < 4; j++) {
      a[i][j] = i + j;
      b[i][j] = i - j;
    }
  }
  for (i = 0; i < 4; i++) {
    for (j = 0; j < 4; j++) {
      int sum = 0;
      for (k = 0; k < 4; k++) {
        sum += a[i][k] * b[k][j];
      }
      c[i][j] = sum;
    }
  }
  int checksum = 0;
  for (i = 0; i < 4; i++) {
    for (j = 0; j < 4; j++) {
      checksum = checksum * 7 + c[i][j];
    }
  }
  return checksum % 251;
}
""")
        assert isinstance(result, int)

    def test_tail_recursive_gcd_chain(self):
        result = _equivalent_at_all_levels("""
static int gcd(int a, int b) {
  if (b == 0) { return a; }
  return gcd(b, a % b);
}
int main() {
  return gcd(1071, 462) * 1000 + gcd(17, 5);
}
""")
        assert result == 21 * 1000 + 1
