"""Property-based end-to-end tests.

A generator builds random programs (expression trees with nested
if-diamonds) as IR; each program is then

* evaluated directly against the reference semantics
  (:mod:`repro.core.constfold`),
* interpreted as built,
* interpreted after the full -O3 pipeline,
* round-tripped through the textual and binary representations,

and every route must agree.  This is the strongest form of the paper's
"equivalent representations" and "transformations preserve semantics"
claims this repository can check.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bitcode import read_bytecode, write_bytecode
from repro.core import (
    ConstantInt, IRBuilder, Module, parse_module, print_module, types,
    verify_module,
)
from repro.core.constfold import eval_binary
from repro.core.instructions import Opcode
from repro.driver import optimize_module
from repro.execution import Interpreter

_ARITH = [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR,
          Opcode.XOR, Opcode.DIV, Opcode.REM]
_CMP = [Opcode.SETEQ, Opcode.SETNE, Opcode.SETLT, Opcode.SETGT,
        Opcode.SETLE, Opcode.SETGE]


# -- the little expression language -----------------------------------------

@st.composite
def expressions(draw, depth=3):
    """('leaf', index) | ('const', v) | ('bin', op, l, r) | ('if', cmp, l, r, t, f)."""
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return ("leaf", draw(st.integers(min_value=0, max_value=2)))
        return ("const", draw(st.integers(min_value=-100, max_value=100)))
    kind = draw(st.sampled_from(["bin", "bin", "if"]))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    if kind == "bin":
        op = draw(st.sampled_from(_ARITH))
        return ("bin", op, left, right)
    compare = draw(st.sampled_from(_CMP))
    then = draw(expressions(depth=depth - 1))
    otherwise = draw(expressions(depth=depth - 1))
    return ("if", compare, left, right, then, otherwise)


def _safe_divisor(value: int) -> int:
    """The generator guards div/rem: divisor |= 1 makes it non-zero."""
    return eval_binary(Opcode.OR, types.INT, value, 1)


def evaluate_reference(tree, args):
    kind = tree[0]
    if kind == "leaf":
        return args[tree[1]]
    if kind == "const":
        return tree[1]
    if kind == "bin":
        _, op, left, right = tree
        a = evaluate_reference(left, args)
        b = evaluate_reference(right, args)
        if op in (Opcode.DIV, Opcode.REM):
            b = _safe_divisor(b)
        return eval_binary(op, types.INT, a, b)
    _, compare, left, right, then, otherwise = tree
    a = evaluate_reference(left, args)
    b = evaluate_reference(right, args)
    if eval_binary(compare, types.INT, a, b):
        return evaluate_reference(then, args)
    return evaluate_reference(otherwise, args)


def build_ir(tree) -> Module:
    module = Module("property")
    fn = module.new_function(
        types.function(types.INT, [types.INT] * 3), "f",
        arg_names=["a", "b", "c"],
    )
    builder = IRBuilder(fn.append_block("entry"))

    def emit(node):
        kind = node[0]
        if kind == "leaf":
            return fn.args[node[1]]
        if kind == "const":
            return ConstantInt(types.INT, node[1])
        if kind == "bin":
            _, op, left, right = node
            lhs = emit(left)
            rhs = emit(right)
            if op in (Opcode.DIV, Opcode.REM):
                rhs = builder.or_(rhs, ConstantInt(types.INT, 1), "nz")
            return builder._binary(op, lhs, rhs, "t")
        _, compare, left, right, then, otherwise = node
        lhs = emit(left)
        rhs = emit(right)
        cond = builder._binary(compare, lhs, rhs, "c")
        then_block = fn.append_block("then")
        else_block = fn.append_block("else")
        join_block = fn.append_block("join")
        builder.cond_br(cond, then_block, else_block)
        builder.position_at_end(then_block)
        then_value = emit(then)
        then_exit = builder.block
        builder.br(join_block)
        builder.position_at_end(else_block)
        else_value = emit(otherwise)
        else_exit = builder.block
        builder.br(join_block)
        builder.position_at_end(join_block)
        phi = builder.phi(types.INT, "m")
        phi.add_incoming(then_value, then_exit)
        phi.add_incoming(else_value, else_exit)
        return phi

    builder.ret(emit(tree))
    verify_module(module)
    return module


ARGS = st.tuples(*(st.integers(min_value=-(2**31), max_value=2**31 - 1)
                   for _ in range(3)))


@given(expressions(), ARGS)
@settings(max_examples=120, deadline=None)
def test_interpreter_matches_reference(tree, raw_args):
    args = [types.INT.wrap(a) for a in raw_args]
    module = build_ir(tree)
    assert Interpreter(module).run("f", args) == evaluate_reference(tree, args)


@given(expressions(), ARGS)
@settings(max_examples=100, deadline=None)
def test_optimization_preserves_semantics(tree, raw_args):
    args = [types.INT.wrap(a) for a in raw_args]
    module = build_ir(tree)
    expected = Interpreter(module).run("f", args)
    optimize_module(module, level=3)
    verify_module(module)
    assert Interpreter(module).run("f", args) == expected


@given(expressions())
@settings(max_examples=80, deadline=None)
def test_text_round_trip(tree):
    module = build_ir(tree)
    text = print_module(module)
    again = parse_module(text)
    verify_module(again)
    assert print_module(again) == text


@given(expressions(), ARGS)
@settings(max_examples=80, deadline=None)
def test_bytecode_round_trip(tree, raw_args):
    args = [types.INT.wrap(a) for a in raw_args]
    module = build_ir(tree)
    decoded = read_bytecode(write_bytecode(module, strip_names=False))
    verify_module(decoded)
    assert print_module(decoded) == print_module(module)
    assert Interpreter(decoded).run("f", args) == \
        Interpreter(module).run("f", args)


@given(expressions(), ARGS)
@settings(max_examples=40, deadline=None)
def test_reg2mem_mem2reg_round_trip(tree, raw_args):
    from repro.transforms.mem2reg import PromoteMem2Reg
    from repro.transforms.reg2mem import DemoteRegisters

    args = [types.INT.wrap(a) for a in raw_args]
    module = build_ir(tree)
    expected = Interpreter(module).run("f", args)
    fn = module.functions["f"]
    DemoteRegisters().run_on_function(fn)
    verify_module(module)
    assert Interpreter(module).run("f", args) == expected
    PromoteMem2Reg().run_on_function(fn)
    verify_module(module)
    assert Interpreter(module).run("f", args) == expected


@given(expressions(), ARGS)
@settings(max_examples=40, deadline=None)
def test_backend_selection_total(tree, raw_args):
    """Instruction selection + allocation + encoding succeed on any
    generated program, for both targets, without touching the IR."""
    from repro.backend import SPARC, X86, compile_for_size

    module = build_ir(tree)
    before = print_module(module)
    for target in (X86, SPARC):
        image = compile_for_size(module, target)
        assert image.code_size > 0
    assert print_module(module) == before


def _stamp_locs(module: Module) -> list:
    """Give every third instruction a synthetic source line and return the
    full per-instruction loc layout (None included) for comparison."""
    locs = []
    counter = 0
    for fn in module.functions.values():
        for bi, block in enumerate(fn.blocks):
            for ii, inst in enumerate(block.instructions):
                if counter % 3 == 0:
                    inst.loc = counter + 1
                locs.append((fn.name, bi, ii, inst.loc))
                counter += 1
    return locs


def _locs(module: Module) -> list:
    return [
        (fn.name, bi, ii, inst.loc)
        for fn in module.functions.values()
        for bi, block in enumerate(fn.blocks)
        for ii, inst in enumerate(block.instructions)
    ]


@given(expressions())
@settings(max_examples=40, deadline=None)
def test_three_representation_loc_round_trip(tree):
    """Module -> text -> parse -> bytecode -> read -> text: debug
    locations and the printed form are identical at every hop."""
    module = build_ir(tree)
    locs = _stamp_locs(module)
    text = print_module(module)

    reparsed = parse_module(text)
    verify_module(reparsed)
    assert _locs(reparsed) == locs
    assert print_module(reparsed) == text

    decoded = read_bytecode(write_bytecode(reparsed, strip_names=False))
    verify_module(decoded)
    assert _locs(decoded) == locs
    assert print_module(decoded) == text


@given(expressions())
@settings(max_examples=20, deadline=None)
def test_lint_diagnostics_stable_across_representations(tree):
    """The checker suite sees reloaded modules exactly as fresh ones."""
    from repro.sanalysis import run_checkers

    module = build_ir(tree)
    expected = [d.render("m") for d in run_checkers(module)]
    reparsed = parse_module(print_module(module))
    decoded = read_bytecode(write_bytecode(module, strip_names=False))
    assert [d.render("m") for d in run_checkers(reparsed)] == expected
    assert [d.render("m") for d in run_checkers(decoded)] == expected
