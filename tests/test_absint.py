"""Tests for the abstract interpreter (analysis/absint), the rangeopt
pass it feeds, and the range-driven lint checkers."""

import io

import pytest

from repro.analysis.absint import (
    BOOL_SHAPE, Interval, KnownBits, analyze_function, analyze_module,
    exact_binary_range, interval_binary, interval_from_kb, kb_binary,
    kb_from_interval, reduce_pair, run_self_check, shape_of,
)
from repro.core import parse_function, parse_module, types, verify_function
from repro.core.constfold import ArithmeticFault, eval_binary
from repro.core.instructions import Opcode
from repro.execution import ExecutionError, Interpreter
from repro.frontend import compile_source
from repro.sanalysis import run_checkers
from repro.transforms import PromoteMem2Reg, RangeOpt


INT = (32, True)
UINT = (32, False)


class TestDomains:
    def test_interval_join_and_intersect(self):
        a, b = Interval(0, 5), Interval(3, 9)
        assert a.join(b) == Interval(0, 9)
        assert a.intersect(b) == Interval(3, 5)
        assert Interval(0, 1).intersect(Interval(5, 6)) is None

    def test_knownbits_membership(self):
        kb = KnownBits(8, zeros=0b1, ones=0b100)  # xxxxx10x
        assert kb.contains((8, False), 0b0100)
        assert kb.contains((8, False), 0b1100)
        assert not kb.contains((8, False), 0b0101)  # bit0 must be 0
        assert not kb.contains((8, False), 0b0000)  # bit2 must be 1

    def test_reduction_is_sound_and_sharpening(self):
        # [4, 5] pins the common high bits: 000001xx -> 0000010x.
        iv = Interval(4, 5)
        kb = kb_from_interval(INT, iv)
        assert kb.contains(INT, 4) and kb.contains(INT, 5)
        assert not kb.contains(INT, 6)
        back = interval_from_kb(INT, kb)
        assert back.contains_interval(iv)
        riv, rkb = reduce_pair(INT, Interval(0, 100), KnownBits.const(INT, 7))
        assert riv == Interval(7, 7)

    def test_interval_binary_matches_concrete(self):
        a, b = Interval(-3, 4), Interval(2, 5)
        for opcode in (Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.DIV):
            result = interval_binary(opcode, INT, a, b)
            for x in range(a.lo, a.hi + 1):
                for y in range(b.lo, b.hi + 1):
                    concrete = eval_binary(opcode, types.INT, x, y)
                    assert result.contains(concrete), (opcode, x, y)

    def test_kb_and_tracks_masks(self):
        kb = kb_binary(Opcode.AND, UINT, KnownBits.top(32),
                       KnownBits.const(UINT, 0xFF))
        assert kb.zeros & 0xFFFFFF00 == 0xFFFFFF00  # high bits known zero

    def test_exact_binary_range_prewrap(self):
        big = Interval(2_000_000_000, 2_000_000_000)
        assert exact_binary_range(Opcode.ADD, big, big) == \
            (4_000_000_000, 4_000_000_000)
        assert exact_binary_range(Opcode.DIV, big, big) is None

    def test_shape_of(self):
        assert shape_of(types.INT) == INT
        assert shape_of(types.BOOL) == BOOL_SHAPE
        assert shape_of(types.FLOAT) is None


class TestSelfCheck:
    def test_fast_ladder_is_clean(self):
        assert run_self_check(full=False) == []


class TestEngine:
    def _facts(self, text):
        fn = parse_function(text)
        return fn, analyze_function(fn)

    def test_mask_and_compare(self):
        fn, facts = self._facts("""
int %f(int %x) {
entry:
  %masked = and int %x, 15
  %big = setgt int %masked, 100
  ret int %masked
}
""")
        masked = next(i for i in fn.instructions() if i.name == "masked")
        big = next(i for i in fn.instructions() if i.name == "big")
        assert facts.interval_of(masked) == Interval(0, 15)
        assert facts.interval_of(big) == Interval(0, 0)  # proven false

    def test_loop_phi_widens_soundly(self):
        fn, facts = self._facts("""
int %f(int %n) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %loop ]
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %out
out:
  ret int %i
}
""")
        phi = next(i for i in fn.instructions() if i.name == "i")
        interval = facts.interval_of(phi)
        # Sound (admits every iteration count) even if imprecise.
        for count in (0, 1, 100, 2**31 - 1):
            assert interval.contains(count)

    def test_unreachable_code_is_undef(self):
        fn, facts = self._facts("""
int %f() {
entry:
  ret int 1
dead:
  %v = add int 1, 2
  ret int %v
}
""")
        dead = next(i for i in fn.instructions() if i.name == "v")
        assert facts.is_unreached(dead)

    def test_call_range_hook_feeds_results(self):
        fn = parse_function("""
int %f() {
entry:
  %v = call int %mystery()
  ret int %v
}

declare int %mystery()
""")
        facts = analyze_function(fn, call_range=lambda inst: (0, 9))
        call = next(i for i in fn.instructions() if i.name == "v")
        assert facts.interval_of(call) == Interval(0, 9)


class TestRangeOpt:
    def _run(self, text):
        fn = parse_function(text)
        opt = RangeOpt()
        changed = opt.run_on_function(fn)
        verify_function(fn)
        return fn, opt, changed

    def test_rem_identity(self):
        fn, opt, changed = self._run("""
int %f(int %x) {
entry:
  %small = and int %x, 7
  %r = rem int %small, 100
  ret int %r
}
""")
        assert changed and opt.rem_identities == 1
        assert not any(i.opcode == Opcode.REM for i in fn.instructions())

    def test_div_by_power_of_two_becomes_shift(self):
        fn, opt, changed = self._run("""
int %f(int %x) {
entry:
  %nonneg = and int %x, 1023
  %q = div int %nonneg, 16
  ret int %q
}
""")
        assert changed and opt.divrem_reduced == 1
        assert any(i.opcode == Opcode.SHR for i in fn.instructions())
        assert not any(i.opcode == Opcode.DIV for i in fn.instructions())

    def test_possibly_negative_dividend_not_reduced(self):
        fn, opt, changed = self._run("""
int %f(int %x) {
entry:
  %q = div int %x, 16
  ret int %q
}
""")
        assert opt.divrem_reduced == 0
        assert any(i.opcode == Opcode.DIV for i in fn.instructions())

    def test_possible_trap_not_folded(self):
        # 10 div (x & 1): divisor may be zero, so no rewrite may erase
        # the instruction even though x&1 in {0,1} makes results tiny.
        fn, opt, changed = self._run("""
int %f(int %x) {
entry:
  %d = and int %x, 1
  %q = div int 10, %d
  ret int %q
}
""")
        assert any(i.opcode == Opcode.DIV for i in fn.instructions())

    def test_comparison_and_branch_fold(self):
        fn, opt, changed = self._run("""
int %f(int %x) {
entry:
  %masked = and int %x, 15
  %c = setlt int %masked, 100
  br bool %c, label %yes, label %no
yes:
  ret int 1
no:
  ret int 0
}
""")
        assert opt.cmps_folded == 1 and opt.branches_folded == 1
        assert Interpreter(fn.parent).run("f", [12345]) == 1

    def test_redundant_and_simplified(self):
        fn, opt, changed = self._run("""
int %f(int %x) {
entry:
  %low = and int %x, 15
  %again = and int %low, 255
  ret int %again
}
""")
        assert opt.bitops_simplified == 1
        assert Interpreter(fn.parent).run("f", [0xABC]) == 0xC

    def test_semantics_preserved_end_to_end(self):
        source = """
int work(int x) {
  int nonneg = x & 2047;
  int q = nonneg / 32;
  int r = nonneg % 8;
  int keep = (q & 63) | 0;
  return q + r + keep;
}

int main() {
  int acc = 0;
  for (int i = 0; i < 50; i = i + 1)
    acc = acc + work(i * 37);
  return acc;
}
"""
        module = compile_source(source, "rangeopt_e2e")
        expected = Interpreter(module).run("main", [])
        PromoteMem2Reg().run_on_function(module.functions["work"])
        PromoteMem2Reg().run_on_function(module.functions["main"])
        opt = RangeOpt()
        for fn in module.defined_functions():
            opt.run_on_function(fn)
            verify_function(fn)
        assert Interpreter(module).run("main", []) == expected


class TestFuzzOracle:
    def test_interpreter_values_within_computed_facts(self):
        """Every concrete SSA value the -O0 interpreter produces must be
        admitted by the corresponding abstract fact — a violation is a
        soundness bug in a transfer function or the solver."""
        from repro.fuzz.generator import generate_program

        programs_run = 0
        for seed in range(1, 9):
            module = compile_source(generate_program(seed), f"fuzz{seed}")
            facts_by_fn = analyze_module(module)
            violations = []

            def hook(inst, value):
                block = inst.parent
                if block is None or block.parent is None:
                    return
                facts = facts_by_fn.get(block.parent.name)
                if facts is None or not isinstance(value, int):
                    return
                if not facts.contains(inst, value):
                    violations.append(
                        (block.parent.name, inst.name, value,
                         facts.abs_of(inst)))

            interp = Interpreter(module, step_limit=2_000_000)
            interp.value_hook = hook
            try:
                interp.run("main", [])
                programs_run += 1
            except (ArithmeticFault, ExecutionError):
                pass  # a trapping program still checked every value
            assert not violations, violations[:5]
        assert programs_run > 0


class TestRangeCheckers:
    def test_div_by_zero_range(self):
        module = compile_source("""
int bad(int x) {
  int n = x & 0;
  return 10 / n;
}
""", "m")
        found = run_checkers(module, checks=["div-by-zero-range"])
        assert any(d.checker == "div-by-zero-range" for d in found)

    def test_shift_out_of_range(self):
        module = compile_source("""
int bad(int x) {
  int k = 40;
  return x << k;
}
""", "m")
        found = run_checkers(module, checks=["shift-out-of-range"])
        assert any(d.checker == "shift-out-of-range" for d in found)

    def test_definite_overflow(self):
        module = compile_source("""
int bad() {
  int big = 2000000000;
  return big + big;
}
""", "m")
        found = run_checkers(module, checks=["definite-overflow"])
        assert any(d.checker == "definite-overflow" for d in found)

    def test_unsigned_wraparound_not_flagged(self):
        module = compile_source("""
uint fine() {
  uint big = 4000000000u;
  return big + big;
}
""", "m")
        found = run_checkers(module, checks=["definite-overflow"])
        assert not found

    def test_gep_bounds_range_precise(self):
        module = compile_source("""
int bad() {
  int table[8];
  int i = 9;
  int j = i + 2;
  table[0] = 1;
  return table[j];
}

int fine(int x) {
  int table[8];
  int i = x & 7;
  table[0] = 1;
  return table[i];
}
""", "m")
        found = run_checkers(module, checks=["gep-bounds"])
        assert len([d for d in found if d.checker == "gep-bounds"
                    and str(d.severity) == "error"]) == 1

    def test_clean_code_stays_clean(self):
        module = compile_source("""
int fine(int x) {
  int d = (x & 7) + 1;
  int q = 100 / d;
  return (q << 2) + (x >> 31);
}
""", "m")
        found = run_checkers(module, checks=[
            "div-by-zero-range", "shift-out-of-range", "definite-overflow"])
        assert not found


class TestInterprocRanges:
    def test_return_range_sharpened_by_absint(self):
        from repro.sanalysis.interproc import summarize_function_ipa

        module = parse_module("""
int %narrow(int %x) {
entry:
  %v = shr int %x, ubyte 28
  ret int %v
}
""")
        summary = summarize_function_ipa(module.functions["narrow"])
        # The syntactic folder cannot bound a shift; absint can: a
        # signed 32-bit value >> 28 lands in [-8, 7].
        assert summary.return_range == [["const", -8, 7]]


class TestDumpTooling:
    def test_range_dump_pass_prints_facts(self):
        from repro.analysis.absint import RangeDumpPass

        fn = parse_function("""
int %f(int %x) {
entry:
  %masked = and int %x, 15
  ret int %masked
}
""")
        stream = io.StringIO()
        RangeDumpPass(stream=stream).run_on_function(fn)
        text = stream.getvalue()
        assert "value facts" in text and "%masked" in text
        assert "[0, 15]" in text

    def test_lc_absint_self_check_cli(self, capsys):
        from repro.tools import lc_absint

        assert lc_absint(["--self-check", "--fast"]) == 0
        assert "self-check ok" in capsys.readouterr().err

    def test_lc_opt_analyze_ranges(self, tmp_path, capsys):
        from repro.tools import lc_opt

        source = tmp_path / "in.ll"
        source.write_text("""
int %f(int %x) {
entry:
  %masked = and int %x, 15
  ret int %masked
}
""")
        assert lc_opt(["-analyze", "ranges", str(source)]) == 0
        out = capsys.readouterr().out
        assert "value facts" in out and "[0, 15]" in out
