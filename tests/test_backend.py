"""Tests for native code generation: isel, phi elimination, register
allocation, encoding, and image layout."""

import pytest

from repro.backend import (
    SPARC, X86, CodeGenerator, InstructionSelector, LinearScanAllocator,
    compile_for_size, print_machine_function,
)
from repro.backend.machine import MOp, is_phys
from repro.backend.regalloc import FRAME_REG
from repro.core import parse_module, print_module, verify_module
from repro.frontend import compile_source


def _machine(source: str, fn_name: str, target=X86):
    module = parse_module(source)
    selector = InstructionSelector(module)
    machine_fn = selector.select_function(module.functions[fn_name])
    return module, machine_fn


LOOP = """
int %f(int %n) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %loop ]
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %done
done:
  ret int %i
}
"""


class TestInstructionSelection:
    def test_source_ir_unmutated(self):
        module = parse_module(LOOP)
        before = print_module(module)
        InstructionSelector(module).select_function(module.functions["f"])
        assert print_module(module) == before
        verify_module(module)

    def test_phi_becomes_copies(self):
        _, machine_fn = _machine(LOOP, "f")
        ops = [i.op for i in machine_fn.instructions()]
        assert MOp.MOV in ops          # phi copies
        assert MOp.CMPBR in ops        # fused compare-and-branch
        assert MOp.RET in ops

    def test_compare_branch_fusion(self):
        _, machine_fn = _machine(LOOP, "f")
        ops = [i.op for i in machine_fn.instructions()]
        assert MOp.SETCC not in ops, "single-use compare fuses into the branch"

    def test_standalone_compare_keeps_setcc(self):
        _, machine_fn = _machine("""
bool %f(int %a, int %b) {
entry:
  %c = setlt int %a, %b
  ret bool %c
}
""", "f")
        ops = [i.op for i in machine_fn.instructions()]
        assert MOp.SETCC in ops

    def test_global_access_folds_to_direct_form(self):
        _, machine_fn = _machine("""
%g = global int 5
int %f() {
entry:
  %v = load int* %g
  ret int %v
}
""", "f")
        ops = [i.op for i in machine_fn.instructions()]
        assert MOp.LOADG in ops
        assert MOp.LA not in ops

    def test_indexed_addressing(self):
        _, machine_fn = _machine("""
int %f(int* %base, long %i) {
entry:
  %p = getelementptr int* %base, long %i
  %v = load int* %p
  ret int %v
}
""", "f")
        ops = [i.op for i in machine_fn.instructions()]
        assert MOp.LOADX in ops
        # And the GEP itself vanished (folded into the access).
        assert MOp.ALUI not in ops or all(
            i.sub != "mul" for i in machine_fn.instructions()
            if i.op == MOp.ALUI
        )

    def test_struct_field_becomes_displacement(self):
        _, machine_fn = _machine("""
%pair = type { int, int }
int %f(%pair* %p) {
entry:
  %f1 = getelementptr %pair* %p, long 0, uint 1
  %v = load int* %f1
  ret int %v
}
""", "f")
        loads = [i for i in machine_fn.instructions() if i.op == MOp.LOAD]
        assert loads and loads[0].imm == 4

    def test_calls_and_malloc_lowering(self):
        _, machine_fn = _machine("""
declare int %callee(int %x)
int %f() {
entry:
  %p = malloc int
  %v = call int %callee(int 3)
  free int* %p
  ret int %v
}
""", "f")
        symbols = [i.symbol for i in machine_fn.instructions() if i.op == MOp.CALL]
        assert "__rt_malloc" in symbols
        assert "__rt_free" in symbols
        assert "callee" in symbols


class TestRegisterAllocation:
    def _allocate(self, source, fn_name="f", registers=8):
        module, machine_fn = _machine(source, fn_name)
        LinearScanAllocator(registers, fold_memory_operands=False).run(machine_fn)
        return machine_fn

    def test_all_registers_physical_after_allocation(self):
        machine_fn = self._allocate(LOOP)
        for inst in machine_fn.instructions():
            for reg in inst.registers():
                assert is_phys(reg), f"virtual register survived in {inst!r}"

    def test_spilling_under_pressure(self):
        # 12 simultaneously-live values into 4 registers (1 allocatable).
        lines = [f"  %v{i} = add int %x, {i}" for i in range(12)]
        partial_sums = ["  %s0 = add int %v0, %v1"]
        for i in range(2, 12):
            partial_sums.append(f"  %s{i-1} = add int %s{i-2}, %v{i}")
        source = ("int %f(int %x) {\nentry:\n" + "\n".join(lines)
                  + "\n" + "\n".join(partial_sums) + "\n  ret int %s10\n}")
        machine_fn = self._allocate(source, registers=4)
        assert machine_fn.frame_size > 0, "spill slots were allocated"
        spill_stores = [
            i for i in machine_fn.instructions()
            if i.op == MOp.STORE and len(i.srcs) > 1 and i.srcs[1] == FRAME_REG
        ]
        assert spill_stores

    def test_loop_crossing_values_extended(self):
        machine_fn = self._allocate("""
int %f(int %n, int %k) {
entry:
  %pre = mul int %k, 3
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %loop ]
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %done
done:
  ret int %pre
}
""")
        # %pre is defined before the loop and used after: its register
        # must not be reused inside the loop.  We can't observe the
        # assignment directly, but allocation must at least succeed and
        # keep every register physical.
        for inst in machine_fn.instructions():
            for reg in inst.registers():
                assert is_phys(reg)


class TestEncoding:
    def test_x86_variable_width(self):
        module = compile_source("int main() { return 1 + 2 * 3; }", "enc")
        image = compile_for_size(module, X86)
        sizes = set()
        for function in image.functions:
            for block in function.machine_fn.blocks:
                for inst in block.instructions:
                    sizes.add(len(X86.encode_instr(inst, 0)))
        assert len(sizes) > 1, "CISC encodings vary in width"

    def test_sparc_word_multiples(self):
        module = compile_source(
            "int main() { int i; int s = 0; for (i=0;i<9;i++) { s += i; } return s; }",
            "enc",
        )
        image = compile_for_size(module, SPARC)
        for function in image.functions:
            for block in function.machine_fn.blocks:
                for inst in block.instructions:
                    assert len(SPARC.encode_instr(inst, 0)) % 4 == 0

    def test_image_layout(self):
        module = compile_source("""
static int data[100];
static int initialized = 5;
int main() { return initialized; }
""", "img")
        image = compile_for_size(module, X86)
        assert image.bss_size >= 400          # zero data costs no file bytes
        assert len(image.data) >= 4           # the initialized int
        assert image.total_size == len(image.to_bytes())

    def test_assembly_printer(self):
        module = parse_module(LOOP)
        machine_fn = InstructionSelector(module).select_function(
            module.functions["f"]
        )
        listing = print_machine_function(machine_fn)
        assert "cmpbr.lt" in listing
        assert ".loop" in listing

    def test_both_targets_compile_whole_benchmark(self):
        from repro.benchsuite import compile_benchmark

        module = compile_benchmark("mcf")
        for target in (X86, SPARC):
            image = compile_for_size(module, target)
            assert image.code_size > 500
            assert image.to_bytes()
