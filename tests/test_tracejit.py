"""Tests for the trace-compiling JIT tier (repro.execution.tracejit):
differential runs against the plain interpreter, guard side-exit state
reconstruction, trap transparency, lifelong trace-cache invalidation —
plus regression tests for the trace/JIT bugfixes that rode along
(TraceFormation successor double-counting, JITEngine.materialized on
never-seen names, the preload instrumentation gap)."""

import pytest

from repro.analysis.loops import LoopInfo
from repro.core import parse_module
from repro.core.constfold import ArithmeticFault
from repro.driver import LifelongSession
from repro.execution import Interpreter, TraceManager
from repro.frontend import compile_source
from repro.profile import TraceFormation

HOT_LOOP = """
extern int print_int(int x);
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 2000; i++) {
    if (i % 10 == 0) { acc += 100; }
    else { acc += i; }
  }
  print_int(acc);
  return acc % 251;
}
"""

#: The loop's branch flips direction partway through: the trace
#: recorded on the early shape must guard-exit on the late one with
#: every live value reconstructed, or the printed sum is wrong.
SHAPE_SHIFT = """
extern int print_int(int x);
int main() {
  int a = 0;
  int b = 0;
  int i;
  for (i = 0; i < 1000; i++) {
    if (i < 700) { a += i; }
    else { b += 2 * i; }
  }
  print_int(a);
  print_int(b);
  return (a + b) % 199;
}
"""


def _run_pair(source, hot_threshold=8, args=()):
    """((exit, output, steps) x 2, manager) — reference then traced."""
    module = compile_source(source, "t")
    ref = Interpreter(module)
    ref_value = ref.run("main", list(args))
    traced = Interpreter(module)
    manager = TraceManager(hot_threshold=hot_threshold)
    manager.attach(traced)
    jit_value = traced.run("main", list(args))
    return ((ref_value, "".join(ref.output), ref.steps),
            (jit_value, "".join(traced.output), traced.steps), manager)


class TestDifferential:
    def test_hot_loop_matches_interpreter_exactly(self):
        reference, traced, manager = _run_pair(HOT_LOOP)
        assert traced == reference
        assert manager.stats.traces_compiled >= 1
        assert manager.stats.steps_saved > 0
        assert manager.stats.unreconstructed_exits == 0

    def test_guard_side_exit_reconstructs_state(self):
        reference, traced, manager = _run_pair(SHAPE_SHIFT)
        assert traced == reference
        # The shape shift at i == 700 must leave via a guard, not by
        # silently running the wrong arm.
        assert manager.stats.guard_exits >= 1
        assert manager.stats.unreconstructed_exits == 0

    def test_trap_inside_trace_propagates(self):
        source = """
extern int print_int(int x);
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 500; i++) {
    print_int(i);
    acc += 1000 / (400 - i);
  }
  return acc;
}
"""
        module = compile_source(source, "t")
        ref = Interpreter(module)
        with pytest.raises(ArithmeticFault):
            ref.run("main", [])
        traced = Interpreter(module)
        manager = TraceManager(hot_threshold=8)
        manager.attach(traced)
        # The same trap, from inside a compiled trace, with the same
        # output printed up to the faulting iteration.
        with pytest.raises(ArithmeticFault):
            traced.run("main", [])
        assert manager.stats.traces_compiled >= 1
        assert "".join(traced.output) == "".join(ref.output)

    def test_trace_cache_is_interpreter_portable(self):
        """A warm cache keeps matching under a fresh interpreter."""
        module = compile_source(HOT_LOOP, "t")
        ref = Interpreter(module)
        ref_value = ref.run("main", [])
        manager = TraceManager(hot_threshold=8)
        first = Interpreter(module)
        manager.attach(first)
        first.run("main", [])
        compiled = manager.stats.traces_compiled
        assert compiled >= 1
        warm = Interpreter(module)
        manager.attach(warm)
        warm_value = warm.run("main", [])
        assert (warm_value, "".join(warm.output), warm.steps) == (
            ref_value, "".join(ref.output), ref.steps)
        assert manager.stats.trace_entries > 0


class TestLifelongInvalidation:
    def test_reoptimize_invalidates_trace_cache(self, tmp_path):
        session = LifelongSession([HOT_LOOP], "hot", level=0,
                                  jit_traces=True, trace_threshold=8)
        first = session.run()
        compiled = session.trace_manager.stats.traces_compiled
        assert compiled >= 1
        assert len(session.trace_manager.cache) >= 1
        session.reoptimize()
        # Every cached trace closed over pre-rewrite block objects;
        # reoptimize must drop them all, not dispatch into stale code.
        assert session.trace_manager.stats.invalidations >= 1
        assert len(session.trace_manager.cache) == 0
        second = session.run()
        assert second.output == first.output
        assert second.exit_value == first.exit_value


class TestToolsAndOracles:
    def test_lc_run_jit_traces_stats(self, tmp_path, capsys):
        from repro.tools import lc_cc, lc_run

        src = tmp_path / "hot.lc"
        src.write_text(HOT_LOOP)
        ll = tmp_path / "hot.ll"
        assert lc_cc([str(src), "-o", str(ll)]) == 0
        capsys.readouterr()
        plain = lc_run([str(ll)])
        plain_out = capsys.readouterr().out
        traced = lc_run([str(ll), "--jit-traces", "--trace-threshold", "8",
                         "--stats"])
        captured = capsys.readouterr()
        assert traced == plain
        assert captured.out.startswith(plain_out.rstrip("\n").split("\n")[0])
        assert "traces-compiled" in captured.out + captured.err

    def test_fuzz_jit_oracle_column_clean(self):
        from repro.fuzz import HarnessConfig, check_program

        config = HarnessConfig(levels=(), targets=(), machine_levels=(),
                               check_roundtrips=False, jit_traces=True)
        result = check_program(HOT_LOOP, config)
        assert result.error is None
        assert result.divergences == []

    def test_run_interpreter_traced_exported(self):
        from repro.fuzz import run_interpreter, run_interpreter_traced

        reference = run_interpreter(compile_source(HOT_LOOP, "t"))
        traced = run_interpreter_traced(compile_source(HOT_LOOP, "t"))
        assert traced == reference


class TestTraceFormationDedup:
    #: A loop whose middle block branches conditionally to the *same*
    #: successor on both edges.  Before the fix, that successor's count
    #: was summed once per edge, so a perfectly-biased block looked
    #: like a 50% split and the path selection gave up early.
    IR = """
int %f(int %n) {
entry:
  br label %header
header:
  %i = phi int [ 0, %entry ], [ %next, %latch ]
  %c = setlt int %i, %n
  br bool %c, label %mid, label %out
mid:
  %even = seteq int %i, %i
  br bool %even, label %latch, label %latch
latch:
  %next = add int %i, 1
  br label %header
out:
  ret int %i
}
"""

    def test_duplicate_successor_edges_not_double_counted(self):
        function = parse_module(self.IR).functions["f"]
        loops = LoopInfo(function).all_loops()
        assert len(loops) == 1
        counts = {"header": 100, "mid": 100, "latch": 100, "out": 1}
        path = TraceFormation()._select_path(loops[0], counts)
        assert path is not None
        assert [block.name for block in path] == ["header", "mid", "latch"]


class TestJITEngineFixes:
    SOURCE = """
extern int print_int(int x);
static int helper_a(int x) { return x + 1; }
static int helper_b(int x) { return x * 2; }
int main(int which) {
  int r;
  if (which == 0) { r = helper_a(10); }
  else { r = helper_b(10); }
  print_int(r);
  return r;
}
"""

    def _bytecode(self):
        from repro.bitcode import write_bytecode

        return write_bytecode(compile_source(self.SOURCE, "jit"),
                              strip_names=False)

    def test_materialized_false_for_unknown_names(self):
        from repro.execution import JITEngine

        jit = JITEngine(self._bytecode())
        jit.run("main", [0])
        # Names the image never carried a body for must stay False even
        # after everything pending has been decoded.
        assert jit.materialized("main")
        assert not jit.materialized("print_int")       # extern decl
        assert not jit.materialized("no_such_symbol")  # typo

    def test_preloaded_functions_are_instrumented(self):
        from repro.execution import JITEngine

        jit = JITEngine(self._bytecode(), instrument=True,
                        preload=["helper_a", "helper_b"])
        assert jit.materialized("helper_a")
        assert jit.materialized("helper_b")
        jit.run("main", [0])
        counts = jit.profile.function_entry_counts()
        # The preloaded body was decoded before instrumentation was
        # switched on; the init sweep must still cover it.
        assert counts.get("main") == 1
        assert counts.get("helper_a") == 1
        assert counts.get("helper_b") == 0

    def test_preload_counts_as_materialization(self):
        from repro.execution import JITEngine

        jit = JITEngine(self._bytecode(), preload=["helper_b"])
        assert jit.materialized("helper_b")
        assert not jit.materialized("helper_a")
        assert jit.stats.functions_materialized == 1

    def test_jit_traces_tier_wired_in(self):
        from repro.bitcode import write_bytecode
        from repro.execution import JITEngine

        hot = compile_source(HOT_LOOP, "hotjit")
        reference = Interpreter(hot)
        expected = reference.run("main", [])
        jit = JITEngine(write_bytecode(hot, strip_names=False),
                        jit_traces=True, trace_threshold=8)
        assert jit.run("main", []) == expected
        assert jit.trace_manager.stats.traces_compiled >= 1
        assert jit.output == reference.output
