"""Unit tests for values, use lists, and constants."""

import pytest

from repro.core import types
from repro.core.instructions import BinaryOperator, Opcode
from repro.core.values import (
    ConstantAggregateZero, ConstantArray, ConstantBool, ConstantExpr,
    ConstantFP, ConstantInt, ConstantPointerNull, ConstantString,
    ConstantStruct, UndefValue, Value, null_value,
)


def _add(a, b):
    return BinaryOperator(Opcode.ADD, a, b)


class TestUseLists:
    def test_operand_registration(self):
        a = ConstantInt(types.INT, 1)
        b = ConstantInt(types.INT, 2)
        inst = _add(a, b)
        assert [use.user for use in a.uses] == [inst]
        assert inst.operands == [a, b]

    def test_same_value_twice(self):
        a = ConstantInt(types.INT, 3)
        inst = _add(a, a)
        assert len(a.uses) == 2
        assert {use.index for use in a.uses} == {0, 1}

    def test_set_operand_updates_uses(self):
        a = ConstantInt(types.INT, 1)
        b = ConstantInt(types.INT, 2)
        c = ConstantInt(types.INT, 3)
        inst = _add(a, b)
        inst.set_operand(0, c)
        assert not a.uses
        assert [use.user for use in c.uses] == [inst]
        assert inst.operands[0] is c

    def test_replace_all_uses_with(self):
        a = ConstantInt(types.INT, 1)
        b = ConstantInt(types.INT, 2)
        replacement = ConstantInt(types.INT, 9)
        first = _add(a, b)
        second = _add(a, a)
        a.replace_all_uses_with(replacement)
        assert not a.uses
        assert first.operands[0] is replacement
        assert second.operands == [replacement, replacement]

    def test_replace_with_self_rejected(self):
        a = ConstantInt(types.INT, 1)
        with pytest.raises(ValueError):
            a.replace_all_uses_with(a)

    def test_drop_all_references(self):
        a = ConstantInt(types.INT, 1)
        b = ConstantInt(types.INT, 2)
        inst = _add(a, b)
        inst.drop_all_references()
        assert not a.uses and not b.uses
        assert inst.operands == []

    def test_users_iteration(self):
        a = ConstantInt(types.INT, 1)
        inst = _add(a, a)
        assert list(a.users()) == [inst, inst]
        assert a.is_used


class TestConstants:
    def test_constant_int_wraps(self):
        assert ConstantInt(types.SBYTE, 200).value == -56
        assert ConstantInt(types.UBYTE, -1).value == 255

    def test_constant_int_requires_integer_type(self):
        with pytest.raises(TypeError):
            ConstantInt(types.DOUBLE, 1)

    def test_constant_bool(self):
        assert ConstantBool(True).value is True
        assert ConstantBool(False).is_null_value()

    def test_constant_fp_rounds_float32(self):
        # 0.1 is not representable in binary32; the constant must carry
        # the rounded value so folding matches execution.
        single = ConstantFP(types.FLOAT, 0.1)
        double = ConstantFP(types.DOUBLE, 0.1)
        assert single.value != double.value

    def test_null_pointer(self):
        ptr = ConstantPointerNull(types.pointer(types.INT))
        assert ptr.is_null_value()
        with pytest.raises(TypeError):
            ConstantPointerNull(types.INT)

    def test_undef(self):
        undef = UndefValue(types.INT)
        assert undef.type is types.INT
        assert not undef.is_null_value()

    def test_aggregate_zero(self):
        zero = ConstantAggregateZero(types.array(types.INT, 4))
        assert zero.is_null_value()
        with pytest.raises(TypeError):
            ConstantAggregateZero(types.INT)

    def test_constant_array_checks_shape(self):
        ty = types.array(types.INT, 2)
        good = ConstantArray(ty, [ConstantInt(types.INT, 1),
                                  ConstantInt(types.INT, 2)])
        assert len(good.elements) == 2
        with pytest.raises(ValueError):
            ConstantArray(ty, [ConstantInt(types.INT, 1)])
        with pytest.raises(TypeError):
            ConstantArray(ty, [ConstantInt(types.LONG, 1),
                               ConstantInt(types.LONG, 2)])

    def test_constant_struct_checks_fields(self):
        ty = types.struct([types.INT, types.BOOL])
        good = ConstantStruct(ty, [ConstantInt(types.INT, 5),
                                   ConstantBool(True)])
        assert good.fields_values[1].value is True
        with pytest.raises(TypeError):
            ConstantStruct(ty, [ConstantBool(True),
                                ConstantInt(types.INT, 5)])

    def test_constant_string(self):
        s = ConstantString(b"hi\0")
        assert s.type is types.array(types.SBYTE, 3)
        assert not s.is_null_value()
        assert ConstantString(b"\0\0").is_null_value()

    def test_constant_expr_opcode_check(self):
        inner = ConstantInt(types.INT, 1)
        with pytest.raises(ValueError):
            ConstantExpr("add", types.INT, (inner,))

    def test_null_value_factory(self):
        assert null_value(types.INT).value == 0
        assert null_value(types.BOOL).value is False
        assert null_value(types.DOUBLE).value == 0.0
        assert null_value(types.pointer(types.INT)).is_null_value()
        assert isinstance(null_value(types.struct([types.INT])),
                          ConstantAggregateZero)
        with pytest.raises(TypeError):
            null_value(types.VOID)
