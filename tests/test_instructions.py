"""Unit tests for the 31-opcode instruction set."""

import pytest

from repro.core import types
from repro.core.basicblock import BasicBlock
from repro.core.instructions import (
    AllocaInst, BinaryOperator, BranchInst, CallInst, CastInst, FreeInst,
    GetElementPtrInst, InvokeInst, LoadInst, MallocInst, Opcode, PhiNode,
    ReturnInst, ShiftInst, StoreInst, SwitchInst, UnwindInst, VAArgInst,
    gep_result_type,
)
from repro.core.module import Function, Module
from repro.core.values import ConstantBool, ConstantInt, UndefValue


INT = types.INT
I1 = ConstantInt(INT, 1)
I2 = ConstantInt(INT, 2)


def _block():
    return BasicBlock("b")


class TestOpcodeSet:
    def test_exactly_31(self):
        assert len(Opcode) == 31

    def test_categories(self):
        from repro.core.instructions import (
            BINARY_OPCODES, COMPARISON_OPCODES, TERMINATOR_OPCODES,
        )

        assert len(TERMINATOR_OPCODES) == 5
        assert len(BINARY_OPCODES) == 14
        assert COMPARISON_OPCODES <= BINARY_OPCODES


class TestBinaryOperators:
    def test_arithmetic_result_type(self):
        inst = BinaryOperator(Opcode.ADD, I1, I2)
        assert inst.type is INT

    def test_comparison_produces_bool(self):
        inst = BinaryOperator(Opcode.SETLT, I1, I2)
        assert inst.type is types.BOOL

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            BinaryOperator(Opcode.ADD, I1, ConstantInt(types.LONG, 1))

    def test_logic_requires_integral(self):
        f = ConstantInt(INT, 0)
        BinaryOperator(Opcode.AND, f, f)  # fine
        from repro.core.values import ConstantFP

        pi = ConstantFP(types.DOUBLE, 3.14)
        with pytest.raises(TypeError):
            BinaryOperator(Opcode.XOR, pi, pi)

    def test_arithmetic_rejects_bool(self):
        t = ConstantBool(True)
        with pytest.raises(TypeError):
            BinaryOperator(Opcode.ADD, t, t)

    def test_commutativity_flags(self):
        assert BinaryOperator(Opcode.ADD, I1, I2).is_commutative
        assert not BinaryOperator(Opcode.SUB, I1, I2).is_commutative
        assert BinaryOperator(Opcode.SETEQ, I1, I2).is_commutative
        assert not BinaryOperator(Opcode.SETLT, I1, I2).is_commutative


class TestShifts:
    def test_amount_must_be_ubyte(self):
        amount = ConstantInt(types.UBYTE, 3)
        inst = ShiftInst(Opcode.SHL, I1, amount)
        assert inst.type is INT
        with pytest.raises(TypeError):
            ShiftInst(Opcode.SHL, I1, I2)

    def test_value_must_be_integer(self):
        amount = ConstantInt(types.UBYTE, 1)
        with pytest.raises(TypeError):
            ShiftInst(Opcode.SHR, ConstantBool(True), amount)


class TestTerminators:
    def test_return_successors_empty(self):
        assert ReturnInst(I1).successors == []
        assert ReturnInst(None).return_value is None

    def test_unconditional_branch(self):
        dest = _block()
        br = BranchInst(dest)
        assert not br.is_conditional
        assert br.successors == [dest]
        with pytest.raises(ValueError):
            br.condition

    def test_conditional_branch(self):
        t, f = _block(), _block()
        cond = ConstantBool(True)
        br = BranchInst(t, cond, f)
        assert br.is_conditional
        assert br.successors == [t, f]
        assert br.condition is cond

    def test_conditional_branch_type_check(self):
        with pytest.raises(TypeError):
            BranchInst(_block(), I1, _block())

    def test_switch(self):
        default, one = _block(), _block()
        sw = SwitchInst(I1, default, [(ConstantInt(INT, 1), one)])
        assert sw.default_dest is default
        assert sw.successors == [default, one]
        assert sw.cases[0][1] is one

    def test_switch_case_type_check(self):
        sw = SwitchInst(I1, _block())
        with pytest.raises(TypeError):
            sw.add_case(ConstantInt(types.LONG, 1), _block())

    def test_unwind_has_no_successors(self):
        assert UnwindInst().successors == []

    def test_invoke_structure(self):
        fn = Function(types.function(INT, [INT]), "callee")
        normal, unwind = _block(), _block()
        invoke = InvokeInst(fn, [I1], normal, unwind)
        assert invoke.callee is fn
        assert invoke.args == [I1]
        assert invoke.normal_dest is normal
        assert invoke.unwind_dest is unwind
        assert invoke.successors == [normal, unwind]
        assert invoke.is_terminator


class TestMemoryInstructions:
    def test_alloca_and_malloc_types(self):
        alloca = AllocaInst(INT)
        assert alloca.type is types.pointer(INT)
        malloc = MallocInst(types.struct([INT, INT]))
        assert malloc.type.pointee.is_struct

    def test_allocation_count_type(self):
        count = ConstantInt(types.UINT, 8)
        inst = MallocInst(INT, count)
        assert inst.array_size is count
        with pytest.raises(TypeError):
            AllocaInst(INT, I1)  # int, not uint

    def test_load_store_type_checks(self):
        slot = AllocaInst(INT)
        load = LoadInst(slot)
        assert load.type is INT
        StoreInst(I1, slot)  # ok
        with pytest.raises(TypeError):
            StoreInst(ConstantInt(types.LONG, 1), slot)
        with pytest.raises(TypeError):
            LoadInst(I1)

    def test_free_requires_pointer(self):
        with pytest.raises(TypeError):
            FreeInst(I1)

    def test_load_of_aggregate_rejected(self):
        slot = AllocaInst(types.struct([INT]))
        with pytest.raises(TypeError):
            LoadInst(slot)


class TestGetElementPtr:
    def setup_method(self):
        self.node = types.named_struct("gep_node", [INT, types.array(INT, 4)])
        self.ptr = AllocaInst(self.node)
        self.zero = ConstantInt(types.LONG, 0)

    def test_struct_field(self):
        gep = GetElementPtrInst(
            self.ptr, [self.zero, ConstantInt(types.UINT, 0)]
        )
        assert gep.type is types.pointer(INT)

    def test_into_array_field(self):
        gep = GetElementPtrInst(
            self.ptr,
            [self.zero, ConstantInt(types.UINT, 1), ConstantInt(types.LONG, 2)],
        )
        assert gep.type is types.pointer(INT)

    def test_struct_index_must_be_constant_uint(self):
        with pytest.raises(TypeError):
            gep_result_type(self.ptr.type, [self.zero, self.zero])

    def test_first_index_steps_over(self):
        gep = GetElementPtrInst(self.ptr, [ConstantInt(types.LONG, 3)])
        assert gep.type is self.ptr.type

    def test_no_indices_rejected(self):
        with pytest.raises(ValueError):
            gep_result_type(self.ptr.type, [])

    def test_scalar_indexing_rejected(self):
        scalar = AllocaInst(INT)
        with pytest.raises(TypeError):
            gep_result_type(scalar.type, [self.zero, self.zero])

    def test_zero_index_helpers(self):
        field0 = GetElementPtrInst(
            self.ptr, [self.zero, ConstantInt(types.UINT, 0)]
        )
        assert field0.has_all_constant_indices()
        assert field0.has_all_zero_indices()
        field1 = GetElementPtrInst(
            self.ptr, [self.zero, ConstantInt(types.UINT, 1)]
        )
        assert not field1.has_all_zero_indices()


class TestPhiAndCalls:
    def test_phi_incoming(self):
        phi = PhiNode(INT)
        b1, b2 = _block(), _block()
        phi.add_incoming(I1, b1)
        phi.add_incoming(I2, b2)
        assert phi.incoming == [(I1, b1), (I2, b2)]
        assert phi.incoming_for_block(b2) is I2
        assert phi.incoming_for_block(_block()) is None

    def test_phi_remove_incoming(self):
        phi = PhiNode(INT)
        b1, b2 = _block(), _block()
        phi.add_incoming(I1, b1)
        phi.add_incoming(I2, b2)
        phi.remove_incoming(b1)
        assert phi.incoming == [(I2, b2)]

    def test_phi_replace_incoming_block(self):
        phi = PhiNode(INT)
        old, new = _block(), _block()
        phi.add_incoming(I1, old)
        phi.replace_incoming_block(old, new)
        assert phi.incoming == [(I1, new)]

    def test_phi_type_check(self):
        phi = PhiNode(INT)
        with pytest.raises(TypeError):
            phi.add_incoming(ConstantInt(types.LONG, 0), _block())
        with pytest.raises(TypeError):
            PhiNode(types.VOID)

    def test_call_arity_and_types(self):
        fn = Function(types.function(INT, [INT, INT]), "f")
        call = CallInst(fn, [I1, I2])
        assert call.callee is fn
        assert call.type is INT
        with pytest.raises(TypeError):
            CallInst(fn, [I1])
        with pytest.raises(TypeError):
            CallInst(fn, [I1, ConstantBool(True)])

    def test_vararg_call(self):
        fn = Function(types.function(INT, [INT], is_vararg=True), "v")
        CallInst(fn, [I1, I2, I1])  # extra args allowed
        with pytest.raises(TypeError):
            CallInst(fn, [])

    def test_call_requires_function_pointer(self):
        with pytest.raises(TypeError):
            CallInst(I1, [])

    def test_cast_restrictions(self):
        from repro.core.values import ConstantFP

        CastInst(I1, types.LONG)
        CastInst(AllocaInst(INT), types.LONG)
        pi = ConstantFP(types.DOUBLE, 3.0)
        with pytest.raises(TypeError):
            CastInst(pi, types.pointer(INT))
        with pytest.raises(TypeError):
            CastInst(AllocaInst(INT), types.DOUBLE)

    def test_vaarg_valist_shape(self):
        valist = AllocaInst(types.pointer(types.SBYTE))
        inst = VAArgInst(valist, INT)
        assert inst.type is INT
        with pytest.raises(TypeError):
            VAArgInst(AllocaInst(INT), INT)


class TestSideEffects:
    def test_pure_ops_removable(self):
        assert not BinaryOperator(Opcode.ADD, I1, I2).has_side_effects()
        assert not LoadInst(AllocaInst(INT)).has_side_effects()
        assert not MallocInst(INT).has_side_effects()

    def test_effectful_ops(self):
        slot = AllocaInst(INT)
        assert StoreInst(I1, slot).has_side_effects()
        assert FreeInst(slot).has_side_effects()
        assert ReturnInst(None).has_side_effects()

    def test_call_purity_flag(self):
        fn = Function(types.function(INT, []), "f")
        call = CallInst(fn, [])
        assert call.has_side_effects()
        fn.is_pure = True
        assert not CallInst(fn, []).has_side_effects()

    def test_erase_from_parent(self):
        module = Module("m")
        fn = module.new_function(types.function(types.VOID, []), "f")
        block = fn.append_block("entry")
        inst = block.append(BinaryOperator(Opcode.ADD, I1, I2))
        block.append(ReturnInst(None))
        inst.erase_from_parent()
        assert inst.parent is None
        assert len(block.instructions) == 1
