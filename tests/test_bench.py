"""Tests for the lc-bench harness, the baseline gate, and the use-list
complexity pin (ISSUE 7; docs/BENCH.md).

Three contracts:

* the harness is *structurally deterministic* — two runs over the same
  inputs emit the same schema-valid report shape (phase and pass name
  sets), so a committed baseline stays comparable field by field;
* the gate catches both regression kinds (structural: a phase dropped
  out; temporal: a phase got slower than the calibrated tolerance) and
  ignores sub-floor noise;
* ``replace_all_uses_with`` / ``drop_all_references`` on a high-fanout
  value are O(uses) — pinned by counting list operations, not by
  wall-clock, so the pin cannot flake on a loaded CI machine.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    BenchConfig, SCHEMA, compare_runs, default_report_name, run_bench,
    validate_schema, write_report,
)
from repro.bench.compare import load_report

#: One tiny program, minimal repetitions: the harness machinery is what
#: is under test, not the numbers it produces.
FAST = dict(programs=["equake"], warmup=0, repeat=1, rauw_fanout=200)


@pytest.fixture(scope="module")
def report():
    return run_bench(BenchConfig(**FAST))


class TestHarness:
    def test_report_is_schema_valid(self, report):
        assert validate_schema(report) == []
        assert report["schema"] == SCHEMA

    def test_expected_phase_coverage(self, report):
        expected = {
            "frontend.lex", "frontend.parse", "frontend.codegen",
            "pipeline.O2", "transact.O2", "verify",
            "bytecode.write", "bytecode.read",
            "cache.store", "cache.lookup", "link", "rauw.highfanout",
        }
        assert expected <= set(report["phases"])
        # The per-pass table harvested from the pipeline's timing sink.
        assert "mem2reg" in report["passes"]
        assert report["passes"]["mem2reg"]["runs"] >= 1

    def test_structural_determinism(self, report):
        again = run_bench(BenchConfig(**FAST))
        assert set(again["phases"]) == set(report["phases"])
        assert set(again["passes"]) == set(report["passes"])
        assert again["programs"] == report["programs"]
        assert again["schema"] == report["schema"]
        for phase, entry in report["phases"].items():
            assert set(again["phases"][phase]["per_program"]) == set(
                entry["per_program"])

    def test_write_and_reload_round_trip(self, report, tmp_path):
        path = write_report(report, str(tmp_path / "BENCH_test.json"))
        assert load_report(path) == json.loads(json.dumps(report))

    def test_default_report_name(self):
        import datetime

        name = default_report_name(datetime.date(2026, 8, 8))
        assert name == "BENCH_2026-08-08.json"

    def test_validate_schema_rejects_damage(self, report):
        broken = copy.deepcopy(report)
        del broken["phases"]
        assert any("phases" in p for p in validate_schema(broken))
        broken = copy.deepcopy(report)
        broken["schema"] = "lc-bench/999"
        assert validate_schema(broken)
        broken = copy.deepcopy(report)
        broken["calibration_seconds"] = 0
        assert validate_schema(broken)
        assert validate_schema({"schema": SCHEMA})  # everything missing


class TestGate:
    def _baseline(self, report):
        base = copy.deepcopy(report)
        # Lift every phase above the gating floor so the comparisons
        # below actually gate (the FAST config times are tiny).
        for entry in base["phases"].values():
            entry["seconds"] = 1.0
        return base

    def test_identical_runs_pass(self, report):
        base = self._baseline(report)
        regressions, notes = compare_runs(copy.deepcopy(base), base)
        assert regressions == []
        assert any("machine-speed scale" in n for n in notes)

    def test_temporal_regression_caught(self, report):
        base = self._baseline(report)
        current = copy.deepcopy(base)
        current["phases"]["verify"]["seconds"] = 10.0  # 10x the baseline
        regressions, _ = compare_runs(current, base)
        assert any("verify" in r and "regressed" in r for r in regressions)

    def test_structural_regression_caught(self, report):
        base = self._baseline(report)
        current = copy.deepcopy(base)
        del current["phases"]["link"]
        del current["passes"]["mem2reg"]
        regressions, _ = compare_runs(current, base)
        assert any("'link'" in r and "missing" in r for r in regressions)
        assert any("'mem2reg'" in r and "missing" in r for r in regressions)

    def test_sub_floor_phases_not_gated(self, report):
        base = self._baseline(report)
        base["phases"]["verify"]["seconds"] = 0.001  # below the floor
        current = copy.deepcopy(base)
        current["phases"]["verify"]["seconds"] = 5.0  # 5000x "slower"
        regressions, notes = compare_runs(current, base)
        assert regressions == []
        assert any("below gating floor" in n for n in notes)

    def test_calibration_scales_tolerance(self, report):
        """A slower machine (larger calibration time) gets a wider
        band: the same wall-clock 'regression' passes there."""
        base = self._baseline(report)
        current = copy.deepcopy(base)
        current["phases"]["verify"]["seconds"] = 3.0  # > 2x baseline
        regressions, _ = compare_runs(copy.deepcopy(current), base)
        assert regressions  # same-speed machine: a real regression
        current["calibration_seconds"] = (
            base["calibration_seconds"] * 2.0)  # host is 2x slower
        regressions, _ = compare_runs(current, base)
        assert regressions == []  # 3.0 <= 1.0 x 2(scale) x 2(tolerance)

    def test_invalid_report_fails_gate(self, report):
        base = self._baseline(report)
        regressions, _ = compare_runs({"schema": SCHEMA}, base)
        assert any("invalid" in r for r in regressions)


# ---------------------------------------------------------------------------
# use-list complexity pin
# ---------------------------------------------------------------------------

class _CountingList(list):
    """A list that bills every operation to a shared cost meter.

    Constant-time operations cost 1; scanning operations bill their
    worst case, so a linear-scan unlink (the old ``list.remove``-style
    implementation) is charged O(len) per call and blows the budget.
    """

    __slots__ = ("meter",)

    def __init__(self, iterable, meter):
        super().__init__(iterable)
        self.meter = meter

    def append(self, item):
        self.meter["cost"] += 1
        super().append(item)

    def pop(self, *args):
        self.meter["cost"] += 1
        return super().pop(*args)

    def __getitem__(self, index):
        self.meter["cost"] += 1
        return super().__getitem__(index)

    def __setitem__(self, index, value):
        self.meter["cost"] += 1
        super().__setitem__(index, value)

    def remove(self, item):
        self.meter["cost"] += len(self)
        super().remove(item)

    def index(self, *args):
        self.meter["cost"] += len(self)
        return super().index(*args)

    def insert(self, index, item):
        self.meter["cost"] += len(self)
        super().insert(index, item)


class TestUseListComplexity:
    FANOUT = 10_000
    #: Generous linear budget: the O(1) unlink needs ~4 ops per edge
    #: (read last, write slot, pop, append to the new list); a linear
    #: scan would bill ~FANOUT**2/2 = 50M.
    BUDGET_PER_USE = 16

    def _hub_and_users(self, meter):
        from repro.core import types
        from repro.core.values import User, Value

        hub = Value(types.INT, "hub")
        hub.uses = _CountingList(hub.uses, meter)
        users = [User(types.INT, (hub,)) for _ in range(self.FANOUT)]
        return hub, users

    def test_rauw_is_linear_in_uses(self):
        from repro.core import types
        from repro.core.values import Value

        meter = {"cost": 0}
        hub, users = self._hub_and_users(meter)
        assert len(hub.uses) == self.FANOUT
        replacement = Value(types.INT, "replacement")
        replacement.uses = _CountingList(replacement.uses, meter)
        meter["cost"] = 0  # only bill the RAUW itself
        hub.replace_all_uses_with(replacement)
        assert meter["cost"] <= self.FANOUT * self.BUDGET_PER_USE
        assert not hub.uses
        assert len(replacement.uses) == self.FANOUT
        assert all(u.operands[0] is replacement for u in users)

    def test_drop_all_references_is_linear(self):
        meter = {"cost": 0}
        hub, users = self._hub_and_users(meter)
        meter["cost"] = 0
        for user in users:
            user.drop_all_references()
        assert meter["cost"] <= self.FANOUT * self.BUDGET_PER_USE
        assert not hub.uses

    def test_use_list_integrity_after_churn(self):
        """The swap-remove keeps (use.position, uses[position]) in sync
        through interleaved unlink/relink traffic."""
        from repro.core import types
        from repro.core.values import User, Value

        hub = Value(types.INT, "hub")
        other = Value(types.INT, "other")
        users = [User(types.INT, (hub, hub)) for _ in range(50)]
        # Rewire every other edge away and back again.
        for i, user in enumerate(users):
            if i % 2 == 0:
                user.set_operand(0, other)
        for i, user in enumerate(users):
            if i % 2 == 0:
                user.set_operand(0, hub)
        for value in (hub, other):
            for position, use in enumerate(value.uses):
                assert use.position == position
                assert use.user.operands[use.index] is value
        assert len(hub.uses) == 100
        assert not other.uses
