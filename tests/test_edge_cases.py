"""Gap-filling edge-case tests across subsystems."""

import math

import pytest

from repro.core import (
    ConstantFP, ConstantInt, IRBuilder, Module, parse_module, print_module,
    types, verify_module,
)
from repro.execution import Interpreter, MemoryFault
from repro.frontend import compile_source


class TestFloatSpecials:
    def test_inf_nan_round_trip_text(self):
        module = Module("fp")
        module.new_global(types.DOUBLE, "pos_inf",
                          ConstantFP(types.DOUBLE, math.inf))
        module.new_global(types.DOUBLE, "neg_inf",
                          ConstantFP(types.DOUBLE, -math.inf))
        module.new_global(types.DOUBLE, "not_a_number",
                          ConstantFP(types.DOUBLE, math.nan))
        text = print_module(module)
        again = parse_module(text)
        assert math.isinf(again.globals["pos_inf"].initializer.value)
        assert again.globals["neg_inf"].initializer.value < 0
        assert math.isnan(again.globals["not_a_number"].initializer.value)
        assert print_module(again) == text

    def test_inf_nan_round_trip_bytecode(self):
        from repro.bitcode import read_bytecode, write_bytecode

        module = Module("fp")
        module.new_global(types.DOUBLE, "weird",
                          ConstantFP(types.DOUBLE, math.nan))
        decoded = read_bytecode(write_bytecode(module))
        assert math.isnan(decoded.globals["weird"].initializer.value)

    def test_nan_comparison_semantics(self):
        module = parse_module("""
bool %f(double %x) {
entry:
  %eq = seteq double %x, %x
  ret bool %eq
}
""")
        assert Interpreter(module).run("f", [math.nan]) is False
        assert Interpreter(module).run("f", [1.0]) is True

    def test_float32_storage_rounds(self):
        module = parse_module("""
double %f() {
entry:
  %slot = alloca float
  %v = cast double 0.1 to float
  store float %v, float* %slot
  %back = load float* %slot
  %wide = cast float %back to double
  ret double %wide
}
""")
        result = Interpreter(module).run("f")
        assert result != 0.1  # binary32 cannot hold 0.1 exactly
        assert abs(result - 0.1) < 1e-7


class TestWideIntegers:
    def test_ulong_arithmetic(self):
        module = parse_module("""
ulong %f(ulong %x) {
entry:
  %big = mul ulong %x, 18446744073709551615
  ret ulong %big
}
""")
        # x * (2^64 - 1) == -x mod 2^64
        assert Interpreter(module).run("f", [5]) == 2**64 - 5

    def test_unsigned_comparison_against_signed(self):
        module = parse_module("""
bool %f() {
entry:
  %max = cast long -1 to ulong
  %c = setgt ulong %max, 5
  ret bool %c
}
""")
        assert Interpreter(module).run("f") is True

    def test_sbyte_wraparound_loop(self):
        source = """
int main() {
  char c = 120;
  int wraps = 0;
  int i;
  for (i = 0; i < 20; i++) {
    c = c + 1;
    if (c < 0) { wraps = wraps + 1; }
  }
  return wraps;
}
"""
        module = compile_source(source, "wrap")
        # c reaches +127 at i=6, wraps to -128 at i=7, and stays
        # negative for i=7..19: 13 iterations.
        assert Interpreter(module).run("main") == 13


class TestLargeStructures:
    def test_big_switch(self):
        cases = "\n".join(
            f"    case {i}: r = {i * 7}; break;" for i in range(40)
        )
        source = f"""
int pick(int x) {{
  int r = 0 - 1;
  switch (x) {{
{cases}
    default: r = 9999;
  }}
  return r;
}}
int main() {{
  return pick(13) + pick(39) + pick(100);
}}
"""
        module = compile_source(source, "sw")
        assert Interpreter(module).run("main") == 13 * 7 + 39 * 7 + 9999

    def test_deeply_nested_structs(self):
        source = """
struct L3 { int payload; };
struct L2 { struct L3 inner; int pad; };
struct L1 { struct L2 middle; int pad; };
typedef struct L1 L1;
int main() {
  L1 box;
  box.middle.inner.payload = 77;
  return box.middle.inner.payload;
}
"""
        module = compile_source(source, "nest")
        verify_module(module)
        assert Interpreter(module).run("main") == 77

    def test_array_of_structs(self):
        source = """
struct Cell { int key; int value; };
typedef struct Cell Cell;
static Cell table[10];
int main() {
  int i;
  for (i = 0; i < 10; i++) {
    table[i].key = i;
    table[i].value = i * i;
  }
  return table[7].value + table[3].key;
}
"""
        module = compile_source(source, "aos")
        assert Interpreter(module).run("main") == 49 + 3

    def test_many_arguments(self):
        params = ", ".join(f"int a{i}" for i in range(12))
        total = " + ".join(f"a{i}" for i in range(12))
        args = ", ".join(str(i) for i in range(12))
        source = f"""
static int big({params}) {{ return {total}; }}
int main() {{ return big({args}); }}
"""
        module = compile_source(source, "args")
        assert Interpreter(module).run("main") == sum(range(12))


class TestPrintfVarargsFrontend:
    def test_printf_through_lc(self):
        source = r"""
extern int printf(char *fmt, ...);
int main() {
  printf("%d + %d = %d%c", 2, 3, 2 + 3, '!');
  return 0;
}
"""
        module = compile_source(source, "pf")
        interp = Interpreter(module)
        interp.run("main")
        assert "".join(interp.output) == "2 + 3 = 5!"


class TestDeepRecursion:
    def test_thousands_of_frames(self):
        """The explicit-frame interpreter is immune to Python's
        recursion limit."""
        source = """
static int down(int n) {
  if (n == 0) { return 0; }
  return down(n - 1) + 1;
}
int main() { return down(5000); }
"""
        module = compile_source(source, "deep")
        assert Interpreter(module).run("main") == 5000


class TestMemoryLimits:
    def test_huge_allocation_rejected(self):
        module = parse_module("""
void %main() {
entry:
  %p = malloc sbyte, uint 2147483647
  ret void
}
""")
        with pytest.raises(MemoryFault, match="out of range"):
            Interpreter(module).run("main")

    def test_zero_sized_malloc_is_valid_pointer(self):
        module = parse_module("""
bool %main() {
entry:
  %p = malloc sbyte, uint 0
  %nonnull = setne sbyte* %p, null
  free sbyte* %p
  ret bool %nonnull
}
""")
        assert Interpreter(module).run("main") is True
