"""Translation validation + lc-synth: refinement checking of transform
passes, planted-miscompile containment, and the verified peephole
synthesizer (docs/ANALYSIS.md, "Translation validation").
"""

import pytest

from repro.core import parse_module, types
from repro.core.values import ConstantInt
from repro.driver import FaultPolicy, TransactionalPassManager
from repro.driver.pipelines import optimize_module
from repro.execution.interpreter import Interpreter
from repro.transforms import (
    DeadCodeElimination, GVN, InstCombine, Reassociate, SCCP,
)
from repro.tvalid import (
    FAILED, PASSED, SKIPPED_UNSUPPORTED, TranslationValidator,
    ValidationConfig, evaluate_function, refines, supports,
)

INT = types.INT


def _fn(text, name):
    return parse_module(text).functions[name]


# ----------------------------------------------------------------------
# The refinement comparator
# ----------------------------------------------------------------------

def test_refines_equal_values():
    assert refines(("value", 3), ("value", 3)) is True
    assert refines(("value", 3), ("value", 4)) is False


def test_refines_trap_to_anything():
    # Before trapping means any behaviour after is legal.
    assert refines(("trap", "DivisionByZero"), ("value", 0)) is True
    assert refines(("trap", "DivisionByZero"), ("trap", "MemoryFault")) \
        is True


def test_refines_undef_narrowing():
    # An unspecified result may be narrowed to any value (or stay
    # unspecified); a trap on the after side is incomparable, not a
    # violation (the unspecified path may itself trap).
    assert refines(("undef", None), ("value", 42)) is True
    assert refines(("undef", None), ("undef", None)) is True
    assert refines(("undef", None), ("trap", "DivisionByZero")) is None


def test_refines_value_to_trap_is_violation():
    assert refines(("value", 3), ("trap", "DivisionByZero")) is False


def test_refines_timeouts_incomparable():
    assert refines(("timeout", None), ("value", 1)) is None
    assert refines(("value", 1), ("timeout", None)) is None


# ----------------------------------------------------------------------
# The exhaustive evaluator
# ----------------------------------------------------------------------

def test_evaluate_pure_arithmetic():
    fn = _fn("""
int %f(int %x) {
entry:
  %a = add int %x, 1
  ret int %a
}
""", "f")
    assert supports(fn)
    assert evaluate_function(fn, (41,)) == ("value", 42)
    assert evaluate_function(fn, (types.INT.max_value,)) == (
        "value", types.INT.min_value)  # wraps, like the interpreter


def test_evaluate_branches_and_phis():
    fn = _fn("""
int %f(bool %c, int %x) {
entry:
  br bool %c, label %t, label %join
t:
  %double = add int %x, %x
  br label %join
join:
  %r = phi int [ %double, %t ], [ %x, %entry ]
  ret int %r
}
""", "f")
    assert evaluate_function(fn, (True, 5)) == ("value", 10)
    assert evaluate_function(fn, (False, 5)) == ("value", 5)


def test_evaluate_trap_and_undef():
    trap = _fn("""
int %f(int %x) {
entry:
  %q = div int %x, 0
  ret int %q
}
""", "f")
    assert evaluate_function(trap, (7,))[0] == "trap"
    undef = _fn("""
int %f(int %x) {
entry:
  %u = add int undef, %x
  ret int %u
}
""", "f")
    assert evaluate_function(undef, (7,)) == ("undef", None)


def test_evaluate_undef_absorbed_by_and_zero():
    fn = _fn("""
int %f(int %x) {
entry:
  %u = and int undef, 0
  %r = add int %u, %x
  ret int %r
}
""", "f")
    # undef & 0 is pinned to 0, not propagated.
    assert evaluate_function(fn, (9,)) == ("value", 9)


def test_supports_rejects_memory_and_calls():
    fn = _fn("""
int %f(int* %p) {
entry:
  %v = load int* %p
  ret int %v
}
""", "f")
    assert not supports(fn)


# ----------------------------------------------------------------------
# The validator: verdicts on function pairs
# ----------------------------------------------------------------------

LEGAL_BEFORE = """
int %f(int %x) {
entry:
  %a = add int %x, 0
  ret int %a
}
"""
LEGAL_AFTER = """
int %f(int %x) {
entry:
  ret int %x
}
"""


def test_validator_accepts_legal_simplification():
    results = TranslationValidator().validate(
        parse_module(LEGAL_BEFORE), parse_module(LEGAL_AFTER))
    assert [r.status for r in results] == [PASSED]
    assert results[0].engine == "exhaustive"
    assert results[0].inputs_checked > 0


def test_validator_ignores_unchanged_functions():
    results = TranslationValidator().validate(
        parse_module(LEGAL_BEFORE), parse_module(LEGAL_BEFORE))
    assert results == []


def test_validator_catches_wrong_fold_with_counterexample():
    wrong = """
int %f(int %x) {
entry:
  %a = sub int 0, %x
  ret int %a
}
"""
    results = TranslationValidator().validate(
        parse_module(LEGAL_BEFORE), parse_module(wrong))
    assert len(results) == 1
    assert results[0].status == FAILED
    witness = results[0].counterexample
    assert witness is not None
    # The reported input really does discriminate the two bodies.
    assert -witness.args[0] != witness.args[0] or witness.args[0] == 0


def test_validator_skips_signature_changes():
    resigned = """
int %f(int %x, int %y) {
entry:
  ret int %x
}
"""
    results = TranslationValidator().validate(
        parse_module(LEGAL_BEFORE), parse_module(resigned))
    assert [r.status for r in results] == [SKIPPED_UNSUPPORTED]


def test_validator_skips_pointer_returning_functions():
    alloc_before = """
sbyte* %alloc(uint %n) {
entry:
  %p = malloc sbyte, uint %n
  ret sbyte* %p
}
"""
    alloc_after = """
sbyte* %alloc(uint %n) {
entry:
  %m = add uint %n, 0
  %p = malloc sbyte, uint %m
  ret sbyte* %p
}
"""
    results = TranslationValidator().validate(
        parse_module(alloc_before), parse_module(alloc_after))
    assert [r.status for r in results] == [SKIPPED_UNSUPPORTED]


def test_trap_to_defined_is_legal():
    """DCE'ing an unused div-by-zero turns an always-trapping function
    into a defined one — more defined is exactly what refinement
    permits."""
    before = parse_module("""
int %f(int %x) {
entry:
  %dead = div int %x, 0
  ret int %x
}
""")
    after = parse_module("""
int %f(int %x) {
entry:
  ret int %x
}
""")
    assert evaluate_function(before.functions["f"], (5,))[0] == "trap"
    results = TranslationValidator().validate(before, after)
    assert [r.status for r in results] == [PASSED]
    # And the real pass produces exactly that rewrite.
    DeadCodeElimination().run_on_function(before.functions["f"])
    results = TranslationValidator().validate(
        parse_module("""
int %f(int %x) {
entry:
  %dead = div int %x, 0
  ret int %x
}
"""), before)
    assert [r.status for r in results] == [PASSED]


def test_undef_narrowing_is_legal():
    before = parse_module("""
int %f(int %x) {
entry:
  %u = add int undef, %x
  ret int %u
}
""")
    after = parse_module("""
int %f(int %x) {
entry:
  ret int %x
}
""")
    results = TranslationValidator().validate(before, after)
    assert [r.status for r in results] == [PASSED]


def test_coexecution_validates_loops():
    before = parse_module("""
int %sum(int %n) {
entry:
  br label %head
head:
  %i = phi int [ 0, %entry ], [ %inext, %body ]
  %acc = phi int [ 0, %entry ], [ %anext, %body ]
  %done = setge int %i, %n
  br bool %done, label %exit, label %body
body:
  %anext = add int %acc, %i
  %inext = add int %i, 1
  br label %head
exit:
  ret int %acc
}
""")
    wrong = parse_module("""
int %sum(int %n) {
entry:
  ret int 0
}
""")
    validator = TranslationValidator()
    results = validator.validate(before, wrong)
    assert len(results) == 1
    assert results[0].status == FAILED
    assert results[0].engine == "coexec"


# ----------------------------------------------------------------------
# Planted wrong folds through the transactional pass manager: each of
# sccp / gvn / reassociate corrupted in its own characteristic way must
# be caught, rolled back, and poisoned.
# ----------------------------------------------------------------------

PLANT_SOURCE = """
int %f(int %x, int %y) {
entry:
  %sum = add int %x, %y
  %diff = sub int %sum, %y
  %r = sub int %diff, %y
  ret int %r
}
"""


def _plant(base_cls, corrupt):
    """A subclass of ``base_cls`` that additionally applies ``corrupt``
    — the planted miscompile — after the real pass logic."""

    class Planted(base_cls):
        def run_on_function(self, function):
            changed = super().run_on_function(function)
            return corrupt(function) or changed

    return Planted()


def _first_inst(function, opcode_name):
    for inst in function.instructions():
        if inst.opcode.value == opcode_name:
            return inst
    return None


def _corrupt_sccp(function):
    # A wrong "proved constant": replace the returned value with 7.
    ret = _first_inst(function, "ret")
    if ret is None or ret.return_value is None:
        return False
    if isinstance(ret.return_value, ConstantInt):
        return False
    ret.set_operand(0, ConstantInt(INT, 7))
    return True


def _corrupt_gvn(function):
    # A wrong congruence: "x+y and x-y compute the same value".
    first = _first_inst(function, "add")
    second = _first_inst(function, "sub")
    if first is None or second is None:
        return False
    second.replace_all_uses_with(first)
    second.erase_from_parent()
    return True


def _corrupt_reassociate(function):
    # A wrong "reassociation": a - b "=" b - a.
    inst = _first_inst(function, "sub")
    if inst is None:
        return False
    a, b = inst.operands
    inst.set_operand(0, b)
    inst.set_operand(1, a)
    return True


@pytest.mark.parametrize("base_cls,corrupt", [
    (SCCP, _corrupt_sccp),
    (GVN, _corrupt_gvn),
    (Reassociate, _corrupt_reassociate),
], ids=["sccp", "gvn", "reassociate"])
def test_planted_wrong_fold_caught_and_rolled_back(base_cls, corrupt):
    module = parse_module(PLANT_SOURCE)
    policy = FaultPolicy(translation_validate=True, reduce_testcases=False)
    manager = TransactionalPassManager(policy)
    manager.add(_plant(base_cls, corrupt))
    manager.run(module)

    assert policy.statistics()["validations.failed"] >= 1
    assert policy.statistics()["passes.rolled_back"] >= 1
    reports = [r for r in policy.crash_reports
               if r.error_type == "TranslationValidationError"]
    assert reports, [r.describe() for r in policy.crash_reports]
    assert reports[0].pass_name == base_cls.name
    assert policy.is_poisoned(base_cls.name, module.name, "f")
    # Rolled back: the module still computes x - y on every probe.
    interp = Interpreter(module)
    assert interp.run("f", [10, 3]) == 7
    assert interp.run("f", [-4, 9]) == -13


def test_correct_passes_validate_cleanly():
    """The same passes, unplanted, over the same input: all green."""
    module = parse_module(PLANT_SOURCE)
    policy = FaultPolicy(translation_validate=True, reduce_testcases=False)
    manager = TransactionalPassManager(policy)
    for pass_obj in (SCCP(), GVN(), Reassociate(), InstCombine()):
        manager.add(pass_obj)
    manager.run(module)
    stats = policy.statistics()
    assert stats["validations.failed"] == 0
    assert stats["passes.rolled_back"] == 0


# ----------------------------------------------------------------------
# The acceptance scenario: the PR-4 double-cast miscompile planted in
# the real instcombine, caught by --translation-validate with a
# reduced counterexample.
# ----------------------------------------------------------------------

def test_planted_double_cast_contained_with_reduced_counterexample():
    module = parse_module("""
long %widen(int %x) {
entry:
  %mid = cast int %x to uint
  %wide = cast uint %mid to long
  ret long %wide
}

int %untouched(int %x) {
entry:
  %r = add int %x, 1
  ret int %r
}
""")
    policy = FaultPolicy(translation_validate=True)
    manager = TransactionalPassManager(policy)
    manager.add(InstCombine(unsafe_cast_fold=True))
    manager.run(module)

    # Caught and reported with the counterexample in the message...
    reports = [r for r in policy.crash_reports
               if r.error_type == "TranslationValidationError"]
    assert len(reports) == 1
    report = reports[0]
    assert report.pass_name == "instcombine"
    assert report.function == "widen"
    assert "@widen" in report.error_message
    # ...rolled back (zero-extension semantics intact)...
    interp = Interpreter(module)
    assert interp.run("widen", [-5]) == 4294967291
    # ...poisoned at function granularity: the innocent function keeps
    # its optimization eligibility...
    assert policy.is_poisoned("instcombine", module.name, "widen")
    assert not policy.is_poisoned("instcombine", module.name, "untouched")
    # ...and the testcase reducer shipped a small replayable module.
    assert report.reduced_ir is not None
    assert report.reduced_instructions is not None
    assert report.reduced_instructions <= 10
    # The reduced module really still fails validation under the pass.
    reduced_before = parse_module(report.reduced_ir)
    reduced_after = parse_module(report.reduced_ir)
    for function in list(reduced_after.defined_functions()):
        InstCombine(unsafe_cast_fold=True).run_on_function(function)
    verdicts = TranslationValidator().validate(reduced_before, reduced_after)
    assert any(v.status == FAILED for v in verdicts)


#: A body the -O2 pipeline definitely rewrites (constant-chain folds),
#: so validation verdicts are actually produced.
CHANGING_SOURCE = """
int %g(int %x) {
entry:
  %a = add int %x, 7
  %b = add int %a, 9
  %c = add int %b, 0
  ret int %c
}
"""


def test_optimize_module_under_validation_stays_correct():
    """The full -O2 ladder with validation on over a plain module:
    no rollbacks, same IR behaviour, counters populated."""
    module = parse_module(CHANGING_SOURCE)
    policy = FaultPolicy(translation_validate=True, reduce_testcases=False)
    optimize_module(module, level=2, policy=policy)
    stats = policy.statistics()
    assert stats["validations.failed"] == 0
    assert stats["passes.rolled_back"] == 0
    assert stats["validations.run"] >= 1
    assert stats["validations.passed"] == stats["validations.run"]
    interp = Interpreter(module)
    assert interp.run("g", [10]) == 26


# ----------------------------------------------------------------------
# The fuzz-harness oracle column (lc-fuzz --translation-validate)
# ----------------------------------------------------------------------

WIDEN_PROGRAM = """
extern int print_long(long x);
long widen(int x) { return (long)(uint)x; }
int main() {
  print_long(widen(-5));
  return 0;
}
"""


def _unsafe_instcombine(*args, **kwargs):
    return InstCombine(unsafe_cast_fold=True)


def test_harness_tvalid_oracle_reports_planted_bug(monkeypatch):
    """With the buggy fold planted in the pipeline, the validator
    column reports tvalid-O<N> findings — and because the violation is
    rolled back, the end-to-end interp oracle stays clean."""
    from repro.driver import pipelines
    from repro.fuzz import HarnessConfig, check_program

    monkeypatch.setattr(pipelines, "InstCombine", _unsafe_instcombine)
    result = check_program(WIDEN_PROGRAM, HarnessConfig(
        levels=(1,), machine_levels=(), check_roundtrips=False,
        translation_validate=True))
    assert result.error is None
    oracles = [d.oracle for d in result.divergences]
    assert "tvalid-O1" in oracles, oracles
    assert "interp-O1" not in oracles, oracles
    finding = next(d for d in result.divergences if d.oracle == "tvalid-O1")
    assert "instcombine" in finding.actual
    assert "@widen" in finding.actual


def test_harness_reports_validator_miss(monkeypatch):
    """The cross-check: when the validator is blinded (every function
    skipped by size), the planted bug escapes to the end-to-end oracle
    and the disagreement is its own tvalid-miss finding."""
    from repro.driver import pipelines
    from repro.fuzz import HarnessConfig, check_program, harness

    monkeypatch.setattr(pipelines, "InstCombine", _unsafe_instcombine)
    monkeypatch.setattr(
        harness, "_validation_policy",
        lambda: FaultPolicy(
            translation_validate=True, reduce_testcases=False,
            validation_config=ValidationConfig(max_tuples=0,
                                               max_function_size=0)))
    result = check_program(WIDEN_PROGRAM, HarnessConfig(
        levels=(1,), machine_levels=(), check_roundtrips=False,
        translation_validate=True))
    oracles = [d.oracle for d in result.divergences]
    assert "interp-O1" in oracles, oracles
    assert "tvalid-miss-O1" in oracles, oracles
    assert "tvalid-O1" not in oracles, oracles


def test_harness_clean_program_has_no_tvalid_findings():
    from repro.fuzz import HarnessConfig, check_program

    result = check_program(WIDEN_PROGRAM, HarnessConfig(
        levels=(1, 2), machine_levels=(), check_roundtrips=False,
        translation_validate=True))
    assert result.error is None
    assert result.divergences == [], [
        d.describe() for d in result.divergences]


# ----------------------------------------------------------------------
# lc-synth: the verified peephole synthesizer
# ----------------------------------------------------------------------

def test_verify_rule_accepts_identity_and_rejects_nonidentity():
    from repro.tvalid.synth import verify_rule

    x, y = ("var", 0), ("var", 1)
    cancel = ("sub", ("add", x, y), y)
    for signed in (True, False):
        assert verify_rule(cancel, x, signed=signed)
        assert not verify_rule(("add", x, y), x, signed=signed)
    # Signedness-dependent: x >> 0 is the identity everywhere, but
    # setlt(x, 0) == "sign bit set" only holds for signed types.
    negative = ("setlt", x, ("const", 0))
    assert not verify_rule(negative, ("bool", False), signed=True)
    assert verify_rule(negative, ("bool", False), signed=False)


def test_synthesizer_discovers_known_identities():
    from repro.tvalid.synth import synthesize

    report = synthesize(max_rules=8, arith_ops=("add", "sub"),
                        shift_ops=(), cmp_ops=())
    assert report.enumerated > 0
    assert len(report.rules) > 0
    assert report.cast_problems == []
    x = ("var", 0)
    # The add/sub cancellation family must be in a small-scope run.
    assert any(rule.rhs == x and rule.lhs[0] in ("add", "sub")
               for rule in report.rules), [r.name for r in report.rules]
    # Every emitted rule is strictly profitable and well-formed.
    from repro.transforms.peephole import tree_cost, tree_vars

    for rule in report.rules:
        assert tree_cost(rule.rhs) < tree_cost(rule.lhs)
        assert tree_vars(rule.rhs) <= tree_vars(rule.lhs)


def test_checked_in_generated_rules_are_substantial():
    from repro.transforms.peephole import (
        load_generated_rules, tree_cost, tree_cvars, tree_vars,
    )

    rules = load_generated_rules()
    assert len(rules) >= 10
    for rule in rules:
        assert rule.applies in ("int", "sint", "uint")
        assert tree_cost(rule.rhs) < tree_cost(rule.lhs)
        assert tree_vars(rule.rhs) <= tree_vars(rule.lhs)
        assert tree_cvars(rule.rhs) <= tree_cvars(rule.lhs)


def test_generated_rules_fire_and_are_correct():
    """The constant-reassociation family on live IR: two chained adds
    collapse to one, semantics pinned by the interpreter."""
    module = parse_module("""
int %f(int %x) {
entry:
  %a = add int %x, 7
  %b = add int %a, 9
  ret int %b
}
""")
    combiner = InstCombine()
    assert combiner.stats.generated_rules_loaded >= 10
    combiner.run_on_function(module.functions["f"])
    assert combiner.stats.generated_rules_fired >= 1
    body = module.functions["f"]
    assert body.instruction_count() == 2  # one add + ret
    assert Interpreter(module).run("f", [5]) == 21
    assert Interpreter(module).run("f", [-16]) == 0


def test_generated_rule_nand_complement_fires():
    """A purely synthesized identity (x & ~x == 0) that the hand-written
    folds do not cover on their own."""
    module = parse_module("""
int %f(int %x) {
entry:
  %not = xor int %x, -1
  %r = and int %x, %not
  ret int %r
}
""")
    InstCombine().run_on_function(module.functions["f"])
    assert Interpreter(module).run("f", [12345]) == 0
    assert Interpreter(module).run("f", [-1]) == 0


def test_cast_chain_audit_is_clean():
    from repro.tvalid.synth import audit_cast_chains

    assert audit_cast_chains() == []


# ----------------------------------------------------------------------
# -stats plumbing (satellite: counters via the FaultPolicy channel)
# ----------------------------------------------------------------------

def test_stats_counters_reported():
    from repro.transforms.peephole import load_generated_rules

    module = parse_module(CHANGING_SOURCE)
    policy = FaultPolicy(translation_validate=True, reduce_testcases=False)
    optimize_module(module, level=2, policy=policy)
    stats = policy.statistics()
    for counter in ("validations.run", "validations.passed",
                    "validations.failed", "validations.skipped-by-size",
                    "validations.skipped-unsupported", "synth.rules-loaded"):
        assert counter in stats
    assert stats["synth.rules-loaded"] == len(load_generated_rules())
    assert stats["validations.run"] >= 1


def test_benchsuite_spot_check_zero_rollbacks():
    """One real benchmark at -O2 under --translation-validate: the
    whole-suite version of this is the CI tvalid-gate."""
    from repro.benchsuite import load_source
    from repro.frontend import compile_source

    module = compile_source(load_source("mcf"), "mcf")
    policy = FaultPolicy(translation_validate=True, reduce_testcases=False)
    optimize_module(module, level=2, policy=policy)
    stats = policy.statistics()
    assert stats["validations.failed"] == 0
    assert stats["passes.rolled_back"] == 0
    assert stats["validations.run"] >= 1
