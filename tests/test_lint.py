"""Tests for the sparse/dense dataflow engine and the lc-lint checkers.

Engine tests drive hand-built CFGs (a diamond and a two-entry loop) to
fixpoints in both directions; checker tests compile small LC programs
and assert on the rendered diagnostics, golden-output style; the
acceptance test runs the whole suite over every benchmark program after
the standard pipeline and requires zero errors or warnings.
"""

import pytest

from repro.benchsuite import benchmark_names, compile_benchmark
from repro.core import IRBuilder, Module, parse_module, types
from repro.core.values import ConstantExpr, ConstantInt
from repro.frontend import compile_source
from repro.driver.pipelines import analyze_module, compile_and_link
from repro.sanalysis import (
    BACKWARD, CHECKERS, DenseAnalysis, FORWARD, Severity, SparseAnalysis,
    StaticCheckSuite, check_cross_module, run_checkers, solve_dense,
    solve_sparse,
)
from repro.transforms import PassManager


# ---------------------------------------------------------------------------
# The dataflow engine on hand-built CFGs
# ---------------------------------------------------------------------------

def _diamond():
    """entry -> {left, right} -> join, returning an int."""
    module = Module("cfg")
    fn = module.new_function(types.function(types.INT, [types.BOOL]), "f")
    entry = fn.append_block("entry")
    left = fn.append_block("left")
    right = fn.append_block("right")
    join = fn.append_block("join")
    IRBuilder(entry).cond_br(fn.args[0], left, right)
    IRBuilder(left).br(join)
    IRBuilder(right).br(join)
    IRBuilder(join).ret(ConstantInt(types.INT, 0))
    return fn, entry, left, right, join


def _two_entry_loop():
    """entry -> {b1, b2}; b1 -> b2; b2 -> {b1, exit}: a loop that is
    entered at two points (irreducible), forcing real iteration."""
    module = Module("cfg")
    fn = module.new_function(types.function(types.INT, [types.BOOL]), "f")
    entry = fn.append_block("entry")
    b1 = fn.append_block("b1")
    b2 = fn.append_block("b2")
    exit_ = fn.append_block("exit")
    IRBuilder(entry).cond_br(fn.args[0], b1, b2)
    IRBuilder(b1).br(b2)
    IRBuilder(b2).cond_br(fn.args[0], b1, exit_)
    IRBuilder(exit_).ret(ConstantInt(types.INT, 0))
    return fn, entry, b1, b2, exit_


class _Trace(DenseAnalysis):
    """Collects the names of blocks on paths to (forward) or from
    (backward) each point.  Union meet = may; intersection = must."""

    def __init__(self, direction, must=False, universe=frozenset()):
        self.direction = direction
        self.must = must
        self.universe = universe

    def boundary(self, function):
        return frozenset()

    def top(self, function):
        return self.universe if self.must else frozenset()

    def meet(self, a, b):
        return (a & b) if self.must else (a | b)

    def transfer(self, block, state):
        return state | {block.name}


class TestDenseEngine:
    def test_forward_union_on_diamond(self):
        fn, entry, left, right, join = _diamond()
        result = solve_dense(_Trace(FORWARD), fn)
        assert result.block_in[entry] == frozenset()
        assert result.block_in[join] == {"entry", "left", "right"}
        assert result.block_out[join] == {"entry", "left", "right", "join"}

    def test_forward_intersection_on_diamond(self):
        fn, entry, left, right, join = _diamond()
        universe = frozenset(b.name for b in fn.blocks)
        result = solve_dense(_Trace(FORWARD, must=True, universe=universe), fn)
        # Only the blocks on *every* path reach the join: entry alone.
        assert result.block_in[join] == {"entry"}

    def test_backward_union_on_diamond(self):
        fn, entry, left, right, join = _diamond()
        result = solve_dense(_Trace(BACKWARD), fn)
        # Backward: block_in is "after transfer" at the block's start.
        assert result.block_in[entry] == {"entry", "left", "right", "join"}
        assert result.block_out[join] == frozenset()
        assert result.block_in[join] == {"join"}

    def test_forward_fixpoint_on_two_entry_loop(self):
        fn, entry, b1, b2, exit_ = _two_entry_loop()
        result = solve_dense(_Trace(FORWARD), fn)
        # Every path into the loop eventually carries both loop blocks.
        assert result.block_in[exit_] == {"entry", "b1", "b2"}
        # The back edge forces at least one block to be revisited.
        assert result.iterations > len(fn.blocks)

    def test_backward_fixpoint_on_two_entry_loop(self):
        fn, entry, b1, b2, exit_ = _two_entry_loop()
        result = solve_dense(_Trace(BACKWARD), fn)
        assert result.block_in[entry] == {"entry", "b1", "b2", "exit"}

    def test_must_analysis_converges_through_loop(self):
        fn, entry, b1, b2, exit_ = _two_entry_loop()
        universe = frozenset(b.name for b in fn.blocks)
        result = solve_dense(_Trace(FORWARD, must=True, universe=universe), fn)
        # b2 is reachable from entry directly (skipping b1), so b1 is
        # not on every path; the optimistic seed must be torn down.
        assert "b1" not in result.block_in[exit_]
        assert "b2" in result.block_in[exit_]

    def test_unreachable_blocks_not_solved(self):
        fn = parse_module("""
int %f(int %x) {
entry:
  ret int %x
dead:
  ret int %x
}
""").functions["f"]
        result = solve_dense(_Trace(FORWARD), fn)
        dead = [b for b in fn.blocks if b.name == "dead"][0]
        assert dead not in result.block_in


class _OpcodeFlow(SparseAnalysis):
    """Each value's element is the set of opcodes that feed it."""

    def top(self):
        return frozenset()

    def initial(self, value):
        return frozenset()

    def meet(self, a, b):
        return a | b

    def transfer(self, inst, get):
        element = frozenset({inst.opcode.value})
        for operand in inst.operands:
            fed = get(operand)
            if fed:
                element = element | fed
        return element


class TestSparseEngine:
    def test_propagates_through_phi(self):
        fn = parse_module("""
int %f(bool %c, int %x) {
entry:
  br bool %c, label %a, label %b
a:
  %p = add int %x, 1
  br label %join
b:
  %q = mul int %x, 2
  br label %join
join:
  %m = phi int [ %p, %a ], [ %q, %b ]
  %r = sub int %m, 3
  ret int %r
}
""").functions["f"]
        result = solve_sparse(_OpcodeFlow(), fn)
        by_name = {i.name: i for b in fn.blocks for i in b.instructions
                   if i.name}
        assert result[by_name["m"]] == {"phi", "add", "mul"}
        assert result[by_name["r"]] == {"sub", "phi", "add", "mul"}


# ---------------------------------------------------------------------------
# Checker golden outputs on small LC programs
# ---------------------------------------------------------------------------

def _lint_source(source, checks=None):
    module = compile_source(source, "t")
    return run_checkers(module, checks)


def _rendered(diags):
    return [d.render("t.lc") for d in diags]


class TestUninitChecker:
    def test_definite_uninitialized_read(self):
        diags = _lint_source("""
int main() {
  int x;
  return x;
}
""", ["uninit"])
        [diag] = diags
        assert diag.severity == Severity.ERROR
        assert diag.line == 4
        assert "variable 'x' is read before any initialization" in diag.message
        assert "initialize 'x'" in diag.fixit

    def test_maybe_uninitialized_on_one_path(self):
        diags = _lint_source("""
int main(int argc) {
  int x;
  if (argc > 1) {
    x = 5;
  }
  return x;
}
""", ["uninit"])
        [diag] = diags
        assert diag.severity == Severity.WARNING
        assert "may be read before initialization" in diag.message

    def test_initialized_on_all_paths_is_clean(self):
        diags = _lint_source("""
int main(int argc) {
  int x;
  if (argc > 1) { x = 5; } else { x = 7; }
  return x;
}
""", ["uninit"])
        assert diags == []


class TestNullDerefChecker:
    def test_provably_null_load(self):
        diags = _lint_source("""
int main() {
  int *p;
  p = null;
  return *p;
}
""", ["null-deref"])
        [diag] = diags
        assert diag.severity == Severity.ERROR
        assert diag.line == 5
        assert "provably null" in diag.message

    def test_null_through_phi(self):
        diags = _lint_source("""
int main(int argc) {
  int *p;
  int *q;
  p = null;
  q = null;
  int *r;
  if (argc > 1) { r = p; } else { r = q; }
  return *r;
}
""", ["null-deref"])
        assert any("provably null" in d.message for d in diags)

    def test_maybe_null_is_not_flagged(self):
        diags = _lint_source("""
int main(int argc) {
  int *p;
  if (argc > 1) { p = null; } else { p = malloc(int); }
  return *p;
}
""", ["null-deref"])
        assert diags == []


class TestStaticBoundsChecker:
    def test_constant_out_of_bounds_index(self):
        diags = _lint_source("""
int main() {
  int a[4];
  a[7] = 1;
  return a[7];
}
""", ["gep-bounds"])
        assert len(diags) == 2  # the store and the load
        assert all(d.severity == Severity.ERROR for d in diags)
        assert "index 7 is out of bounds" in diags[0].message
        assert "valid range 0..3" in diags[0].message
        assert diags[0].fixit == "clamp the index into 0..3"

    def test_in_range_and_variable_indices_clean(self):
        diags = _lint_source("""
int main(int i) {
  int a[4];
  a[0] = 1;
  a[3] = 2;
  a[i] = 3;
  return a[0];
}
""", ["gep-bounds"])
        assert diags == []


class TestDeadStoreChecker:
    def test_overwritten_store(self):
        diags = _lint_source("""
int main() {
  int x;
  x = 1;
  x = 2;
  return x;
}
""", ["dead-store"])
        [diag] = diags
        assert diag.severity == Severity.WARNING
        assert diag.line == 4
        assert "overwritten before it is read" in diag.message

    def test_never_read_store(self):
        diags = _lint_source("""
int main() {
  int x;
  x = 1;
  return 0;
}
""", ["dead-store"])
        [diag] = diags
        assert "never read" in diag.message

    def test_store_read_in_loop_is_live(self):
        diags = _lint_source("""
int main(int n) {
  int total;
  total = 0;
  int i;
  i = 0;
  while (i < n) {
    total = total + i;
    i = i + 1;
  }
  return total;
}
""", ["dead-store"])
        assert diags == []


class TestUnreachableChecker:
    def test_dead_block_flagged(self):
        module = parse_module("""
int %g(int %x) {
entry:
  ret int %x
dead:
  %y = add int %x, 1
  ret int %y
}
""")
        [diag] = run_checkers(module, ["unreachable"])
        assert diag.severity == Severity.WARNING
        assert diag.block == "dead"
        assert "unreachable" in diag.message


class TestCallSignatureChecker:
    def test_call_through_cast_in_module(self):
        module = Module("m")
        helper = module.new_function(
            types.function(types.INT, [types.INT]), "helper")
        wrong = types.pointer(
            types.function(types.INT, [types.INT, types.INT]))
        fn = module.new_function(types.function(types.INT, []), "f")
        builder = IRBuilder(fn.append_block("entry"))
        result = builder.call(
            ConstantExpr("cast", wrong, (helper,)),
            [ConstantInt(types.INT, 1), ConstantInt(types.INT, 2)], "r")
        builder.ret(result)
        [diag] = run_checkers(module, ["call-signature"])
        assert diag.severity == Severity.ERROR
        assert "call to 'helper' through a cast" in diag.message

    def test_cross_module_prototype_conflict(self):
        tu1 = compile_source("""
extern int helper(int a, int b);
int main() { return helper(1, 2); }
""", "tu1")
        tu2 = compile_source("""
int helper(int a) { return a + 1; }
""", "tu2")
        [diag] = check_cross_module([tu1, tu2])
        assert diag.severity == Severity.ERROR
        assert "symbol 'helper'" in diag.message
        assert "tu1" in diag.message and "tu2" in diag.message

    def test_agreeing_prototypes_clean(self):
        tu1 = compile_source("""
extern int helper(int a);
int main() { return helper(1); }
""", "tu1")
        tu2 = compile_source("""
int helper(int a) { return a + 1; }
""", "tu2")
        assert check_cross_module([tu1, tu2]) == []


class TestTypeSafetyChecker:
    def test_collapsing_cast_noted(self):
        module = parse_module("""
%pair = type { int, int }

void %f(%pair* %p) {
entry:
  %q = cast %pair* %p to long*
  store long 1, long* %q
  ret void
}
""")
        [diag] = run_checkers(module, ["type-safety"])
        assert diag.severity == Severity.NOTE
        assert "DSA collapsed" in diag.message

    def test_compatible_view_not_noted(self):
        module = parse_module("""
void %f(int* %p) {
entry:
  store int 1, int* %p
  ret void
}
""")
        assert run_checkers(module, ["type-safety"]) == []


# ---------------------------------------------------------------------------
# Suite-level behaviour
# ---------------------------------------------------------------------------

SEEDED = """
extern int print_int(int x);

int main() {
  int x;
  int a[4];
  int *p;
  p = null;
  a[7] = 1;
  print_int(x);
  print_int(*p);
  return 0;
}
"""


class TestSuite:
    def test_seeded_bugs_all_flagged_with_locations(self):
        """The acceptance scenario: one program seeding an uninitialized
        load, a null dereference, and a constant OOB GEP."""
        diags = run_checkers(compile_source(SEEDED, "seeded"))
        by_checker = {d.checker: d for d in diags if d.is_error}
        assert set(by_checker) >= {"uninit", "null-deref", "gep-bounds"}
        assert by_checker["gep-bounds"].line == 9
        assert by_checker["uninit"].line == 10
        assert by_checker["null-deref"].line == 11

    def test_unknown_checker_rejected(self):
        with pytest.raises(ValueError, match="unknown checker"):
            run_checkers(Module("m"), ["no-such-check"])

    def test_checkers_never_mutate_the_module(self):
        from repro.core import print_module

        module = compile_source(SEEDED, "seeded")
        before = print_module(module)
        run_checkers(module)
        assert print_module(module) == before

    def test_pass_manager_integration_and_stats(self):
        suite = StaticCheckSuite()
        manager = PassManager()
        manager.add(suite)
        changed = manager.run(compile_source(SEEDED, "seeded"))
        assert changed is False  # linting never changes the IR
        stats = manager.statistics()["lint"]
        assert stats["errors"] >= 3
        assert stats["uninit"] == 1
        assert suite.errors

    def test_diagnostics_sorted_by_function_and_line(self):
        diags = run_checkers(compile_source(SEEDED, "seeded"))
        keyed = [(d.function or "", d.line or 0) for d in diags]
        assert keyed == sorted(keyed)

    def test_analyze_stage_attaches_diagnostics(self):
        module = compile_and_link([SEEDED], "prog", level=0, lto=False,
                                  analyze=True)
        assert module.diagnostics
        assert any(d.checker == "gep-bounds" for d in module.diagnostics)
        # analyze_module can re-run standalone with a narrower selection.
        only_bounds = analyze_module(module, ["gep-bounds"])
        assert {d.checker for d in only_bounds} == {"gep-bounds"}


class TestNoFalsePositives:
    """The suite must stay silent on correct, optimized programs."""

    @pytest.mark.parametrize("name", benchmark_names())
    def test_benchmark_clean_after_standard_pipeline(self, name):
        module = compile_benchmark(name, level=2, lto=False)
        noisy = [d for d in run_checkers(module)
                 if d.severity >= Severity.WARNING]
        assert noisy == [], [d.render(name) for d in noisy]

    def test_seeded_gep_and_null_survive_optimization(self):
        """Real bugs (not artifacts of -O0 codegen) stay visible after
        the standard pipeline, with their source lines intact."""
        module = compile_source(SEEDED, "seeded")
        from repro.driver import optimize_module

        optimize_module(module, 2)
        errors = {d.checker for d in run_checkers(module) if d.is_error}
        assert "gep-bounds" in errors
        assert "null-deref" in errors
