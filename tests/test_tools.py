"""Tests for the command-line tools (the llvm-as/dis/opt/llc/lli suite)."""

import subprocess
import sys

import pytest

from repro.tools import lc_as, lc_cc, lc_dis, lc_link, lc_llc, lc_opt, lc_run

HELLO = """
extern int print_int(int x);
int main() { print_int(40 + 2); return 0; }
"""


@pytest.fixture
def hello_lc(tmp_path):
    path = tmp_path / "hello.lc"
    path.write_text(HELLO)
    return str(path)


class TestToolPipeline:
    def test_cc_emits_text(self, hello_lc, tmp_path, capsys):
        out = tmp_path / "hello.ll"
        assert lc_cc([hello_lc, "-O", "2", "-o", str(out)]) == 0
        text = out.read_text()
        assert "%main" in text and "print_int" in text

    def test_cc_emits_bytecode(self, hello_lc, tmp_path):
        out = tmp_path / "hello.bc"
        assert lc_cc([hello_lc, "-c", "-o", str(out)]) == 0
        assert out.read_bytes()[:4] == b"llvm"

    def test_as_dis_round_trip(self, hello_lc, tmp_path):
        ll = tmp_path / "x.ll"
        bc = tmp_path / "x.bc"
        back = tmp_path / "back.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        assert lc_as([str(ll), "-o", str(bc)]) == 0
        assert lc_dis([str(bc), "-o", str(back)]) == 0
        assert back.read_text() == ll.read_text()

    def test_opt_named_passes(self, hello_lc, tmp_path):
        ll = tmp_path / "x.ll"
        out = tmp_path / "opt.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        assert lc_opt([str(ll), "-p", "mem2reg,sccp,simplifycfg,adce",
                       "-o", str(out)]) == 0
        assert "alloca" not in out.read_text()

    def test_opt_unknown_pass_rejected(self, hello_lc, tmp_path):
        ll = tmp_path / "x.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        with pytest.raises(SystemExit):
            lc_opt([str(ll), "-p", "no_such_pass"])

    def test_run_executes(self, hello_lc, tmp_path, capsys):
        ll = tmp_path / "x.ll"
        lc_cc([hello_lc, "-O", "2", "-o", str(ll)])
        code = lc_run([str(ll)])
        assert code == 0
        assert capsys.readouterr().out == "42\n"

    def test_llc_size_report(self, hello_lc, tmp_path, capsys):
        ll = tmp_path / "x.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        assert lc_llc([str(ll), "--target", "sparc", "--emit", "size"]) == 0
        report = capsys.readouterr().out
        assert "target: sparc" in report and "total:" in report

    def test_llc_assembly(self, hello_lc, tmp_path, capsys):
        ll = tmp_path / "x.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        assert lc_llc([str(ll)]) == 0
        assert "main:" in capsys.readouterr().out

    def test_link_two_modules(self, tmp_path, capsys):
        lib = tmp_path / "lib.lc"
        lib.write_text("int helper(int x) { return x * 2; }")
        app = tmp_path / "app.lc"
        app.write_text("""
extern int helper(int x);
int main() { return helper(21); }
""")
        lib_ll = tmp_path / "lib.ll"
        app_ll = tmp_path / "app.ll"
        linked = tmp_path / "linked.ll"
        lc_cc([str(lib), "-o", str(lib_ll)])
        lc_cc([str(app), "-o", str(app_ll)])
        assert lc_link([str(lib_ll), str(app_ll), "--lto",
                        "-o", str(linked)]) == 0
        assert lc_run([str(linked)]) == 42

    def test_module_entry_point(self, hello_lc):
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "cc", hello_lc, "-O", "2"],
            capture_output=True, text=True, cwd="/root/repo",
        )
        assert result.returncode == 0
        assert "%main" in result.stdout

    def test_usage_message(self, capsys):
        from repro.tools import main

        assert main([]) == 2
