"""Tests for the command-line tools (the llvm-as/dis/opt/llc/lli suite)."""

import subprocess
import sys

import pytest

from repro.tools import (
    lc_as, lc_cc, lc_dis, lc_link, lc_lint, lc_llc, lc_opt, lc_run,
)

HELLO = """
extern int print_int(int x);
int main() { print_int(40 + 2); return 0; }
"""

BUGGY = """
extern int print_int(int x);

int main() {
  int x;
  int a[4];
  int *p;
  p = null;
  a[7] = 1;
  print_int(x);
  print_int(*p);
  return 0;
}
"""


@pytest.fixture
def hello_lc(tmp_path):
    path = tmp_path / "hello.lc"
    path.write_text(HELLO)
    return str(path)


@pytest.fixture
def buggy_lc(tmp_path):
    path = tmp_path / "buggy.lc"
    path.write_text(BUGGY)
    return str(path)


class TestToolPipeline:
    def test_cc_emits_text(self, hello_lc, tmp_path, capsys):
        out = tmp_path / "hello.ll"
        assert lc_cc([hello_lc, "-O", "2", "-o", str(out)]) == 0
        text = out.read_text()
        assert "%main" in text and "print_int" in text

    def test_cc_emits_bytecode(self, hello_lc, tmp_path):
        out = tmp_path / "hello.bc"
        assert lc_cc([hello_lc, "-c", "-o", str(out)]) == 0
        assert out.read_bytes()[:4] == b"llvm"

    def test_as_dis_round_trip(self, hello_lc, tmp_path):
        ll = tmp_path / "x.ll"
        bc = tmp_path / "x.bc"
        back = tmp_path / "back.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        assert lc_as([str(ll), "-o", str(bc)]) == 0
        assert lc_dis([str(bc), "-o", str(back)]) == 0
        assert back.read_text() == ll.read_text()

    def test_opt_named_passes(self, hello_lc, tmp_path):
        ll = tmp_path / "x.ll"
        out = tmp_path / "opt.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        assert lc_opt([str(ll), "-p", "mem2reg,sccp,simplifycfg,adce",
                       "-o", str(out)]) == 0
        assert "alloca" not in out.read_text()

    def test_opt_unknown_pass_rejected(self, hello_lc, tmp_path):
        ll = tmp_path / "x.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        with pytest.raises(SystemExit):
            lc_opt([str(ll), "-p", "no_such_pass"])

    def test_run_executes(self, hello_lc, tmp_path, capsys):
        ll = tmp_path / "x.ll"
        lc_cc([hello_lc, "-O", "2", "-o", str(ll)])
        code = lc_run([str(ll)])
        assert code == 0
        assert capsys.readouterr().out == "42\n"

    def test_llc_size_report(self, hello_lc, tmp_path, capsys):
        ll = tmp_path / "x.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        assert lc_llc([str(ll), "--target", "sparc", "--emit", "size"]) == 0
        report = capsys.readouterr().out
        assert "target: sparc" in report and "total:" in report

    def test_llc_assembly(self, hello_lc, tmp_path, capsys):
        ll = tmp_path / "x.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        assert lc_llc([str(ll)]) == 0
        assert "main:" in capsys.readouterr().out

    def test_link_two_modules(self, tmp_path, capsys):
        lib = tmp_path / "lib.lc"
        lib.write_text("int helper(int x) { return x * 2; }")
        app = tmp_path / "app.lc"
        app.write_text("""
extern int helper(int x);
int main() { return helper(21); }
""")
        lib_ll = tmp_path / "lib.ll"
        app_ll = tmp_path / "app.ll"
        linked = tmp_path / "linked.ll"
        lc_cc([str(lib), "-o", str(lib_ll)])
        lc_cc([str(app), "-o", str(app_ll)])
        assert lc_link([str(lib_ll), str(app_ll), "--lto",
                        "-o", str(linked)]) == 0
        assert lc_run([str(linked)]) == 42

    def test_opt_verify_each(self, hello_lc, tmp_path):
        ll = tmp_path / "x.ll"
        out = tmp_path / "opt.ll"
        lc_cc([hello_lc, "-o", str(ll)])
        assert lc_opt([str(ll), "-O", "2", "--verify-each",
                       "-o", str(out)]) == 0
        assert "%main" in out.read_text()

    def test_opt_stats_reports_bounds_check_elision(self, tmp_path, capsys):
        """`-p safecode -stats` shows the inserted/elided split; the
        provably in-range constant index is elided, a[7] is not."""
        src = tmp_path / "b.lc"
        src.write_text("""
int main() {
  int a[4];
  a[3] = 1;
  a[7] = 2;
  return 0;
}
""")
        ll = tmp_path / "b.ll"
        lc_cc([str(src), "-o", str(ll)])
        assert lc_opt([str(ll), "-p", "safecode", "-stats",
                       "-o", str(tmp_path / "out.ll")]) == 0
        err = capsys.readouterr().err
        assert "statistics" in err
        assert "1 safecode-bounds    checks_elided" in err
        assert "1 safecode-bounds    checks_inserted" in err

    def test_module_entry_point(self, hello_lc):
        result = subprocess.run(
            [sys.executable, "-m", "repro.tools", "cc", hello_lc, "-O", "2"],
            capture_output=True, text=True, cwd="/root/repo",
        )
        assert result.returncode == 0
        assert "%main" in result.stdout

    def test_usage_message(self, capsys):
        from repro.tools import main

        assert main([]) == 2


class TestLint:
    def test_buggy_source_fails_with_located_diagnostics(self, buggy_lc,
                                                         capsys):
        assert lc_lint([buggy_lc]) == 1
        captured = capsys.readouterr()
        out = captured.out
        assert f"{buggy_lc}:9: error:" in out and "[gep-bounds]" in out
        assert f"{buggy_lc}:10: error:" in out and "[uninit]" in out
        assert f"{buggy_lc}:11: error:" in out and "[null-deref]" in out
        assert "3 error(s)" in captured.err

    def test_clean_source_passes(self, hello_lc, capsys):
        assert lc_lint([hello_lc]) == 0
        assert "0 error(s)" in capsys.readouterr().err

    def test_checks_selection(self, buggy_lc, capsys):
        assert lc_lint([buggy_lc, "--checks", "gep-bounds"]) == 1
        out = capsys.readouterr().out
        assert "[gep-bounds]" in out and "[uninit]" not in out

    def test_unknown_check_rejected(self, buggy_lc):
        with pytest.raises(SystemExit):
            lc_lint([buggy_lc, "--checks", "bogus"])

    def test_list_checks(self, capsys):
        assert lc_lint(["--list-checks"]) == 0
        out = capsys.readouterr().out
        for name in ("uninit", "null-deref", "gep-bounds", "dead-store",
                     "unreachable", "call-signature", "type-safety"):
            assert name in out

    def test_lints_textual_ir_and_bytecode(self, buggy_lc, tmp_path, capsys):
        ll = tmp_path / "b.ll"
        bc = tmp_path / "b.bc"
        lc_cc([buggy_lc, "-o", str(ll)])
        lc_cc([buggy_lc, "-c", "-o", str(bc)])
        assert lc_lint([str(ll)]) == 1
        assert lc_lint([str(bc)]) == 1

    def test_werror_promotes_warnings(self, tmp_path, capsys):
        src = tmp_path / "w.lc"
        src.write_text("""
int main() {
  int x;
  x = 1;
  return 0;
}
""")
        assert lc_lint([str(src)]) == 0       # dead store is a warning
        assert lc_lint([str(src), "--Werror"]) == 1

    def test_cross_module_signature_conflict(self, tmp_path, capsys):
        tu1 = tmp_path / "tu1.lc"
        tu1.write_text("""
extern int helper(int a, int b);
int main() { return helper(1, 2); }
""")
        tu2 = tmp_path / "tu2.lc"
        tu2.write_text("int helper(int a) { return a + 1; }")
        assert lc_lint([str(tu1), str(tu2)]) == 1
        out = capsys.readouterr().out
        assert "[call-signature]" in out and "symbol 'helper'" in out
