"""Unit + property tests for the shared evaluation semantics.

:mod:`repro.core.constfold` is the single source of truth for opcode
semantics (the interpreter and the optimizer both use it), so these
tests pin down the C-like rules: two's-complement wrap, truncating
division, sign-of-dividend remainder, source-signedness extension.
"""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import constfold, types
from repro.core.constfold import ArithmeticFault, eval_binary, eval_cast, eval_shift
from repro.core.instructions import Opcode
from repro.core.values import ConstantBool, ConstantFP, ConstantInt


class TestIntegerArithmetic:
    def test_add_wraps(self):
        assert eval_binary(Opcode.ADD, types.SBYTE, 127, 1) == -128
        assert eval_binary(Opcode.ADD, types.UBYTE, 255, 1) == 0

    def test_sub_wraps(self):
        assert eval_binary(Opcode.SUB, types.INT, -(2**31), 1) == 2**31 - 1

    def test_mul_wraps(self):
        assert eval_binary(Opcode.MUL, types.UBYTE, 16, 16) == 0

    def test_div_truncates_toward_zero(self):
        assert eval_binary(Opcode.DIV, types.INT, 7, 2) == 3
        assert eval_binary(Opcode.DIV, types.INT, -7, 2) == -3
        assert eval_binary(Opcode.DIV, types.INT, 7, -2) == -3
        assert eval_binary(Opcode.DIV, types.INT, -7, -2) == 3

    def test_rem_takes_dividend_sign(self):
        assert eval_binary(Opcode.REM, types.INT, 7, 3) == 1
        assert eval_binary(Opcode.REM, types.INT, -7, 3) == -1
        assert eval_binary(Opcode.REM, types.INT, 7, -3) == 1
        assert eval_binary(Opcode.REM, types.INT, -7, -3) == -1

    def test_div_rem_identity(self):
        for a in (-17, -3, 0, 5, 23):
            for b in (-7, -1, 2, 9):
                q = eval_binary(Opcode.DIV, types.INT, a, b)
                r = eval_binary(Opcode.REM, types.INT, a, b)
                assert q * b + r == a

    def test_division_by_zero_faults(self):
        with pytest.raises(ArithmeticFault):
            eval_binary(Opcode.DIV, types.INT, 1, 0)
        with pytest.raises(ArithmeticFault):
            eval_binary(Opcode.REM, types.INT, 1, 0)

    def test_bitwise_on_negative(self):
        assert eval_binary(Opcode.AND, types.SBYTE, -1, 0x0F) == 15
        assert eval_binary(Opcode.OR, types.SBYTE, -128, 1) == -127
        assert eval_binary(Opcode.XOR, types.INT, -1, 0) == -1

    def test_bool_logic(self):
        assert eval_binary(Opcode.AND, types.BOOL, True, False) is False
        assert eval_binary(Opcode.OR, types.BOOL, True, False) is True
        assert eval_binary(Opcode.XOR, types.BOOL, True, True) is False

    def test_comparisons(self):
        assert eval_binary(Opcode.SETLT, types.INT, -1, 0) is True
        assert eval_binary(Opcode.SETGE, types.UINT, 0, 0) is True
        assert eval_binary(Opcode.SETNE, types.INT, 3, 3) is False


class TestFloatArithmetic:
    def test_float32_rounds_each_op(self):
        result = eval_binary(Opcode.ADD, types.FLOAT, 0.1, 0.2)
        import struct

        expected = struct.unpack("<f", struct.pack("<f", 0.1 + 0.2))[0]
        assert result == expected

    def test_fp_division_by_zero_is_inf(self):
        assert math.isinf(eval_binary(Opcode.DIV, types.DOUBLE, 1.0, 0.0))
        assert math.isnan(eval_binary(Opcode.DIV, types.DOUBLE, 0.0, 0.0))

    def test_fp_rem(self):
        assert eval_binary(Opcode.REM, types.DOUBLE, 7.5, 2.0) == 1.5


class TestShifts:
    def test_shl(self):
        assert eval_shift(Opcode.SHL, types.INT, 1, 4) == 16
        assert eval_shift(Opcode.SHL, types.SBYTE, 1, 7) == -128

    def test_shr_arithmetic_for_signed(self):
        assert eval_shift(Opcode.SHR, types.INT, -8, 1) == -4

    def test_shr_logical_for_unsigned(self):
        assert eval_shift(Opcode.SHR, types.UINT, types.UINT.wrap(2**31), 31) == 1

    def test_overwide_shifts_saturate(self):
        assert eval_shift(Opcode.SHL, types.INT, 5, 40) == 0
        assert eval_shift(Opcode.SHR, types.UINT, 5, 40) == 0
        assert eval_shift(Opcode.SHR, types.INT, -5, 40) == -1
        assert eval_shift(Opcode.SHR, types.INT, 5, 40) == 0


class TestCasts:
    def test_narrowing_reinterprets(self):
        assert eval_cast(types.INT, types.SBYTE, 257) == 1
        assert eval_cast(types.INT, types.UBYTE, -1) == 255

    def test_widening_follows_source_signedness(self):
        # LLVM 1.x rule: extension is driven by the *source* type.
        assert eval_cast(types.SBYTE, types.ULONG, -1) == 2**64 - 1
        assert eval_cast(types.UBYTE, types.LONG, 255) == 255

    def test_int_to_bool(self):
        assert eval_cast(types.INT, types.BOOL, 0) is False
        assert eval_cast(types.INT, types.BOOL, -5) is True

    def test_fp_to_int_truncates(self):
        assert eval_cast(types.DOUBLE, types.INT, 2.9) == 2
        assert eval_cast(types.DOUBLE, types.INT, -2.9) == -2

    def test_fp_nan_inf_to_int(self):
        assert eval_cast(types.DOUBLE, types.INT, math.nan) == 0
        assert eval_cast(types.DOUBLE, types.INT, math.inf) == 0

    def test_double_to_float_rounds(self):
        import struct

        rounded = eval_cast(types.DOUBLE, types.FLOAT, 0.1)
        assert rounded == struct.unpack("<f", struct.pack("<f", 0.1))[0]

    def test_pointer_int_round_trip(self):
        address = 0x123456789A
        as_int = eval_cast(types.pointer(types.INT), types.ULONG, address)
        back = eval_cast(types.ULONG, types.pointer(types.INT), as_int)
        assert back == address

    def test_bool_to_fp(self):
        assert eval_cast(types.BOOL, types.DOUBLE, True) == 1.0


class TestConstantFolding:
    def test_fold_binary(self):
        folded = constfold.fold_binary(
            Opcode.ADD, ConstantInt(types.INT, 2), ConstantInt(types.INT, 3)
        )
        assert folded.value == 5

    def test_fold_comparison_gives_bool(self):
        folded = constfold.fold_binary(
            Opcode.SETLT, ConstantInt(types.INT, 1), ConstantInt(types.INT, 2)
        )
        assert isinstance(folded, ConstantBool) and folded.value is True

    def test_fold_division_by_zero_refused(self):
        folded = constfold.fold_binary(
            Opcode.DIV, ConstantInt(types.INT, 1), ConstantInt(types.INT, 0)
        )
        assert folded is None

    def test_fold_undef_refused(self):
        from repro.core.values import UndefValue

        folded = constfold.fold_binary(
            Opcode.ADD, ConstantInt(types.INT, 1), UndefValue(types.INT)
        )
        assert folded is None

    def test_fold_cast(self):
        folded = constfold.fold_cast(ConstantInt(types.INT, 300), types.SBYTE)
        assert folded.value == types.SBYTE.wrap(300)

    def test_fold_cast_null_pointer(self):
        from repro.core.values import ConstantPointerNull

        null = ConstantPointerNull(types.pointer(types.INT))
        folded = constfold.fold_cast(null, types.LONG)
        assert folded.value == 0

    def test_fold_shift(self):
        folded = constfold.fold_shift(
            Opcode.SHL, ConstantInt(types.INT, 3),
            ConstantInt(types.UBYTE, 2),
        )
        assert folded.value == 12


# ---------------------------------------------------------------------------
# Property tests: the evaluator is total and in-range over its domain.
# ---------------------------------------------------------------------------

_INT_TYPES = [types.SBYTE, types.UBYTE, types.SHORT, types.USHORT,
              types.INT, types.UINT, types.LONG, types.ULONG]
_ARITH = [Opcode.ADD, Opcode.SUB, Opcode.MUL, Opcode.AND, Opcode.OR, Opcode.XOR]


@given(
    st.sampled_from(_INT_TYPES),
    st.sampled_from(_ARITH),
    st.integers(), st.integers(),
)
def test_binary_results_stay_in_range(ty, opcode, raw_a, raw_b):
    a, b = ty.wrap(raw_a), ty.wrap(raw_b)
    result = eval_binary(opcode, ty, a, b)
    assert ty.min_value <= result <= ty.max_value


@given(st.sampled_from(_INT_TYPES), st.integers(),
       st.integers(min_value=0, max_value=255))
def test_shift_results_stay_in_range(ty, raw, amount):
    value = ty.wrap(raw)
    for opcode in (Opcode.SHL, Opcode.SHR):
        result = eval_shift(opcode, ty, value, amount)
        assert ty.min_value <= result <= ty.max_value


@given(st.sampled_from(_INT_TYPES), st.sampled_from(_INT_TYPES), st.integers())
def test_cast_results_stay_in_range(src, dst, raw):
    value = src.wrap(raw)
    result = eval_cast(src, dst, value)
    assert dst.min_value <= result <= dst.max_value


@given(st.sampled_from(_INT_TYPES), st.integers())
def test_cast_to_same_width_is_bijective(ty, raw):
    value = ty.wrap(raw)
    other = types.integer(ty.bits, not ty.signed)
    there = eval_cast(ty, other, value)
    back = eval_cast(other, ty, there)
    assert back == value


@given(st.sampled_from(_INT_TYPES), st.integers(), st.integers())
def test_fold_matches_eval(ty, raw_a, raw_b):
    """Constant folding must agree with direct evaluation (the property
    that keeps the optimizer and the interpreter in sync)."""
    a, b = ty.wrap(raw_a), ty.wrap(raw_b)
    for opcode in (Opcode.ADD, Opcode.MUL, Opcode.SETLT, Opcode.SETEQ):
        folded = constfold.fold_binary(
            opcode, ConstantInt(ty, a), ConstantInt(ty, b)
        )
        direct = eval_binary(opcode, ty, a, b)
        assert folded.value == direct
