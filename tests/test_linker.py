"""Tests for the module linker."""

import pytest

from repro.core import parse_module, print_module, verify_module, types
from repro.core.module import Linkage
from repro.execution import Interpreter
from repro.linker import LinkError, link_modules


def _link(*sources, name="linked"):
    modules = [parse_module(src, f"tu{i}") for i, src in enumerate(sources)]
    linked = link_modules(modules, name)
    verify_module(linked)
    return linked


class TestSymbolResolution:
    def test_declaration_resolves_to_definition(self):
        linked = _link(
            """
declare int %callee(int %x)
int %main() {
entry:
  %v = call int %callee(int 20)
  ret int %v
}
""",
            """
int %callee(int %x) {
entry:
  %r = add int %x, 1
  ret int %r
}
""",
        )
        assert Interpreter(linked).run("main") == 21

    def test_definition_first_also_works(self):
        linked = _link(
            "int %f(int %x) {\nentry:\n  ret int %x\n}",
            "declare int %f(int %x)",
        )
        assert not linked.functions["f"].is_declaration

    def test_global_resolution(self):
        linked = _link(
            "%shared = global int 9",
            """
%shared = external global int
int %main() {
entry:
  %v = load int* %shared
  ret int %v
}
""",
        )
        assert Interpreter(linked).run("main") == 9

    def test_internal_symbols_renamed(self):
        linked = _link(
            """
%secret = internal global int 1
int %get1() {
entry:
  %v = load int* %secret
  ret int %v
}
""",
            """
%secret = internal global int 2
int %get2() {
entry:
  %v = load int* %secret
  ret int %v
}
""",
        )
        assert Interpreter(linked).run("get1") == 1
        assert Interpreter(linked).run("get2") == 2
        assert len(linked.globals) == 2

    def test_duplicate_definition_rejected(self):
        with pytest.raises(LinkError, match="twice"):
            _link(
                "int %f() {\nentry:\n  ret int 1\n}",
                "int %f() {\nentry:\n  ret int 2\n}",
            )

    def test_signature_mismatch_rejected(self):
        with pytest.raises(LinkError, match="signature"):
            _link(
                "declare int %f(int %x)",
                "declare int %f(long %x)",
            )

    def test_global_function_clash_rejected(self):
        with pytest.raises(LinkError):
            _link("%sym = global int 1", "declare void %sym()")

    def test_unresolved_stays_declaration(self):
        linked = _link("declare int %externally_provided(int %x)")
        assert linked.functions["externally_provided"].is_declaration


class TestTypeUnification:
    def test_same_named_struct_merges(self):
        linked = _link(
            """
%pair = type { int, int }
%pair* %make() {
entry:
  %p = malloc %pair
  ret %pair* %p
}
""",
            """
%pair = type { int, int }
declare %pair* %make()
int %main() {
entry:
  %p = call %pair* %make()
  %f = getelementptr %pair* %p, long 0, uint 0
  store int 5, int* %f
  %v = load int* %f
  ret int %v
}
""",
        )
        assert len(linked.named_types) == 1
        assert Interpreter(linked).run("main") == 5

    def test_recursive_type_across_modules(self):
        linked = _link(
            """
%node = type { int, %node* }
%node* %cons(int %v, %node* %rest) {
entry:
  %n = malloc %node
  %val = getelementptr %node* %n, long 0, uint 0
  store int %v, int* %val
  %next = getelementptr %node* %n, long 0, uint 1
  store %node* %rest, %node** %next
  ret %node* %n
}
""",
            """
%node = type { int, %node* }
declare %node* %cons(int %v, %node* %rest)
int %main() {
entry:
  %a = call %node* %cons(int 1, %node* null)
  %b = call %node* %cons(int 2, %node* %a)
  %next = getelementptr %node* %b, long 0, uint 1
  %rest = load %node** %next
  %val = getelementptr %node* %rest, long 0, uint 0
  %v = load int* %val
  ret int %v
}
""",
        )
        node = linked.named_types["node"]
        assert node.fields[1].pointee is node
        assert Interpreter(linked).run("main") == 1

    def test_struct_shape_conflict_rejected(self):
        with pytest.raises(LinkError, match="disagrees"):
            _link(
                "%t = type { int }\n%g1 = global %t zeroinitializer",
                "%t = type { int, int }\n%g2 = global %t zeroinitializer",
            )


class TestInputsPreserved:
    def test_sources_unmutated(self):
        a = parse_module("int %f() {\nentry:\n  ret int 1\n}", "a")
        b = parse_module("declare int %f()", "b")
        text_a = print_module(a)
        text_b = print_module(b)
        link_modules([a, b])
        assert print_module(a) == text_a
        assert print_module(b) == text_b

    def test_empty_link_rejected(self):
        with pytest.raises(LinkError):
            link_modules([])


class TestAppendingLinkage:
    def test_arrays_concatenate(self):
        linked = _link(
            "%ctors = appending global [1 x int] [ int 10 ]",
            "%ctors = appending global [2 x int] [ int 20, int 30 ]",
        )
        ctors = linked.globals["ctors"]
        assert ctors.value_type.count == 3
        values = [e.value for e in ctors.initializer.elements]
        assert sorted(values) == [10, 20, 30]
