"""Tests for the binary bytecode representation (section 2.5/4.1.3)."""

import pytest

from repro.bitcode import BytecodeError, BytecodeWriter, read_bytecode, write_bytecode
from repro.core import parse_module, print_module, verify_module
from repro.execution import Interpreter
from repro.frontend import compile_source


def _roundtrip(source: str):
    module = parse_module(source)
    data = write_bytecode(module, strip_names=False)
    decoded = read_bytecode(data)
    verify_module(decoded)
    assert print_module(decoded) == print_module(module)
    return module, decoded, data


class TestRoundTrips:
    def test_functions_and_globals(self):
        _roundtrip("""
%counter = global int 5
%text = internal constant [3 x sbyte] c"hi\\00"
declare int %printf(sbyte* %fmt, ...)
int %main(int %argc) {
entry:
  %v = load int* %counter
  %r = add int %v, %argc
  ret int %r
}
""")

    def test_all_opcode_shapes(self):
        _roundtrip("""
%node = type { int, %node* }
int %everything(int %a, int %b, bool %c, sbyte** %ap) {
entry:
  %add = add int %a, %b
  %cmp = setlt int %add, 100
  %shifted = shl int %add, ubyte 2
  %wide = cast int %shifted to long
  %narrow = cast long %wide to int
  %n = malloc %node
  %slot = alloca int
  store int %narrow, int* %slot
  %v = load int* %slot
  %field = getelementptr %node* %n, long 0, uint 0
  store int %v, int* %field
  %va = vaarg sbyte** %ap, int
  free %node* %n
  br bool %cmp, label %left, label %right
left:
  br label %join
right:
  br label %join
join:
  %p = phi int [ %add, %left ], [ %va, %right ]
  switch int %p, label %done [ int 1, label %done ]
done:
  ret int %p
}
""")

    def test_invoke_unwind(self):
        _roundtrip("""
declare void %risky()
int %f() {
entry:
  invoke void %risky() to label %ok unwind to label %no
ok:
  ret int 0
no:
  unwind
}
""")

    def test_forward_references_across_layout(self):
        # 'use' precedes 'def' in the block *layout* while being
        # dominated by it in the CFG — the case the reader's typed
        # placeholders exist for.
        _roundtrip("""
int %f(bool %c) {
entry:
  br label %def
use:
  %r = add int %value, 1
  ret int %r
def:
  %value = add int 1, 2
  br label %use
}
""")

    def test_recursive_types(self):
        module, decoded, _ = _roundtrip("""
%tree = type { int, %tree*, %tree* }
%root = global %tree* null
""")
        tree = decoded.named_types["tree"]
        assert tree.fields[1].pointee is tree

    def test_constant_expressions(self):
        _roundtrip("""
%arr = internal constant [4 x int] [ int 1, int 2, int 3, int 4 ]
%third = global int* getelementptr ([4 x int]* %arr, long 0, long 2)
%alias = global sbyte* cast ([4 x int]* %arr to sbyte*)
""")

    def test_fp_precision_preserved(self):
        module, decoded, _ = _roundtrip("""
%a = global double 0.1
%b = global float 0.25
""")
        assert decoded.globals["a"].initializer.value == \
            module.globals["a"].initializer.value

    def test_semantics_preserved(self):
        source = """
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
"""
        module = compile_source(source, "fib")
        expected = Interpreter(module).run("main")
        decoded = read_bytecode(write_bytecode(module))
        assert Interpreter(decoded).run("main") == expected == 144


class TestStripping:
    def test_stripped_is_smaller(self):
        module = compile_source("""
int compute_with_long_names(int meaningful_parameter) {
  int carefully_named_local = meaningful_parameter * 2;
  return carefully_named_local;
}
""", "named")
        named = write_bytecode(module, strip_names=False)
        stripped = write_bytecode(module, strip_names=True)
        assert len(stripped) < len(named)

    def test_stripped_still_executes(self):
        module = compile_source(
            "int main() { int x = 6; return x * 7; }", "strip"
        )
        decoded = read_bytecode(write_bytecode(module, strip_names=True))
        verify_module(decoded)
        assert Interpreter(decoded).run("main") == 42


class TestEncodingShape:
    def test_packed_word_majority(self):
        module = compile_source("""
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 10; i++) { acc += i * i; }
  return acc;
}
""", "enc")
        writer = BytecodeWriter()
        writer.write(module)
        total = writer.packed_count + writer.escaped_count
        assert writer.packed_count / total > 0.5

    def test_bad_magic_rejected(self):
        with pytest.raises(BytecodeError, match="magic"):
            read_bytecode(b"ELF\x7f" + b"\0" * 40)

    def test_bad_version_rejected(self):
        module = parse_module("%g = global int 1")
        data = bytearray(write_bytecode(module))
        data[4] = 99
        with pytest.raises(BytecodeError, match="version"):
            read_bytecode(bytes(data))

    def test_deterministic_output(self):
        module = compile_source("int main() { return 3; }", "det")
        assert write_bytecode(module) == write_bytecode(module)


def _locs(module):
    return [
        (fn.name, bi, ii, inst.loc)
        for fn in module.functions.values()
        for bi, block in enumerate(fn.blocks)
        for ii, inst in enumerate(block.instructions)
    ]


class TestLocAndVersioning:
    SOURCE = """
int square(int x) { return x * x; }
int main() {
  int a = square(5);
  if (a > 20) { a = a - 3; }
  return a;
}
"""

    def test_locs_survive_bytecode_round_trip(self):
        module = compile_source(self.SOURCE, "located")
        locs = _locs(module)
        assert any(loc is not None for *_ignored, loc in locs)
        decoded = read_bytecode(write_bytecode(module, strip_names=False))
        assert _locs(decoded) == locs

    def test_locs_survive_stripped_round_trip(self):
        """Name stripping drops symbols, never debug locations."""
        module = compile_source(self.SOURCE, "located")
        decoded = read_bytecode(write_bytecode(module, strip_names=True))
        assert [loc for *_ignored, loc in _locs(decoded)] == \
            [loc for *_ignored, loc in _locs(module)]

    def test_version1_bytecode_still_reads(self):
        """Pre-loc bytecode (version 1) must stay readable; locs absent."""
        module = compile_source(self.SOURCE, "old")
        writer = BytecodeWriter(strip_names=False, version=1)
        data = writer.write(module)
        assert data[4] == 1
        decoded = read_bytecode(data)
        verify_module(decoded)
        assert all(loc is None for *_ignored, loc in _locs(decoded))
        assert Interpreter(decoded).run("main") == \
            Interpreter(module).run("main")

    def test_unsupported_writer_version_rejected(self):
        with pytest.raises(ValueError):
            BytecodeWriter(version=0)
        with pytest.raises(ValueError):
            BytecodeWriter(version=99)

    def test_compile_twice_bytes_identical(self):
        """Full determinism: two independent compiles of the same source
        serialize to the same bytes (the incremental cache's contract)."""
        from repro.driver import optimize_module

        first = compile_source(self.SOURCE, "det")
        second = compile_source(self.SOURCE, "det")
        optimize_module(first, 2)
        optimize_module(second, 2)
        assert write_bytecode(first, strip_names=False) == \
            write_bytecode(second, strip_names=False)

    def test_write_twice_bytes_identical(self):
        module = compile_source(self.SOURCE, "det")
        writer_a = BytecodeWriter(strip_names=False)
        writer_b = BytecodeWriter(strip_names=False)
        assert writer_a.write(module) == writer_b.write(module)
