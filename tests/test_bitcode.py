"""Tests for the binary bytecode representation (section 2.5/4.1.3)."""

import pytest

from repro.bitcode import BytecodeError, BytecodeWriter, read_bytecode, write_bytecode
from repro.core import parse_module, print_module, verify_module
from repro.execution import Interpreter
from repro.frontend import compile_source


def _roundtrip(source: str):
    module = parse_module(source)
    data = write_bytecode(module, strip_names=False)
    decoded = read_bytecode(data)
    verify_module(decoded)
    assert print_module(decoded) == print_module(module)
    return module, decoded, data


class TestRoundTrips:
    def test_functions_and_globals(self):
        _roundtrip("""
%counter = global int 5
%text = internal constant [3 x sbyte] c"hi\\00"
declare int %printf(sbyte* %fmt, ...)
int %main(int %argc) {
entry:
  %v = load int* %counter
  %r = add int %v, %argc
  ret int %r
}
""")

    def test_all_opcode_shapes(self):
        _roundtrip("""
%node = type { int, %node* }
int %everything(int %a, int %b, bool %c, sbyte** %ap) {
entry:
  %add = add int %a, %b
  %cmp = setlt int %add, 100
  %shifted = shl int %add, ubyte 2
  %wide = cast int %shifted to long
  %narrow = cast long %wide to int
  %n = malloc %node
  %slot = alloca int
  store int %narrow, int* %slot
  %v = load int* %slot
  %field = getelementptr %node* %n, long 0, uint 0
  store int %v, int* %field
  %va = vaarg sbyte** %ap, int
  free %node* %n
  br bool %cmp, label %left, label %right
left:
  br label %join
right:
  br label %join
join:
  %p = phi int [ %add, %left ], [ %va, %right ]
  switch int %p, label %done [ int 1, label %done ]
done:
  ret int %p
}
""")

    def test_invoke_unwind(self):
        _roundtrip("""
declare void %risky()
int %f() {
entry:
  invoke void %risky() to label %ok unwind to label %no
ok:
  ret int 0
no:
  unwind
}
""")

    def test_forward_references_across_layout(self):
        # 'use' precedes 'def' in the block *layout* while being
        # dominated by it in the CFG — the case the reader's typed
        # placeholders exist for.
        _roundtrip("""
int %f(bool %c) {
entry:
  br label %def
use:
  %r = add int %value, 1
  ret int %r
def:
  %value = add int 1, 2
  br label %use
}
""")

    def test_recursive_types(self):
        module, decoded, _ = _roundtrip("""
%tree = type { int, %tree*, %tree* }
%root = global %tree* null
""")
        tree = decoded.named_types["tree"]
        assert tree.fields[1].pointee is tree

    def test_constant_expressions(self):
        _roundtrip("""
%arr = internal constant [4 x int] [ int 1, int 2, int 3, int 4 ]
%third = global int* getelementptr ([4 x int]* %arr, long 0, long 2)
%alias = global sbyte* cast ([4 x int]* %arr to sbyte*)
""")

    def test_fp_precision_preserved(self):
        module, decoded, _ = _roundtrip("""
%a = global double 0.1
%b = global float 0.25
""")
        assert decoded.globals["a"].initializer.value == \
            module.globals["a"].initializer.value

    def test_semantics_preserved(self):
        source = """
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
"""
        module = compile_source(source, "fib")
        expected = Interpreter(module).run("main")
        decoded = read_bytecode(write_bytecode(module))
        assert Interpreter(decoded).run("main") == expected == 144


class TestStripping:
    def test_stripped_is_smaller(self):
        module = compile_source("""
int compute_with_long_names(int meaningful_parameter) {
  int carefully_named_local = meaningful_parameter * 2;
  return carefully_named_local;
}
""", "named")
        named = write_bytecode(module, strip_names=False)
        stripped = write_bytecode(module, strip_names=True)
        assert len(stripped) < len(named)

    def test_stripped_still_executes(self):
        module = compile_source(
            "int main() { int x = 6; return x * 7; }", "strip"
        )
        decoded = read_bytecode(write_bytecode(module, strip_names=True))
        verify_module(decoded)
        assert Interpreter(decoded).run("main") == 42


class TestEncodingShape:
    def test_packed_word_majority(self):
        module = compile_source("""
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 10; i++) { acc += i * i; }
  return acc;
}
""", "enc")
        writer = BytecodeWriter()
        writer.write(module)
        total = writer.packed_count + writer.escaped_count
        assert writer.packed_count / total > 0.5

    def test_bad_magic_rejected(self):
        with pytest.raises(BytecodeError, match="magic"):
            read_bytecode(b"ELF\x7f" + b"\0" * 40)

    def test_bad_version_rejected(self):
        module = parse_module("%g = global int 1")
        data = bytearray(write_bytecode(module))
        data[4] = 99
        with pytest.raises(BytecodeError, match="version"):
            read_bytecode(bytes(data))

    def test_deterministic_output(self):
        module = compile_source("int main() { return 3; }", "det")
        assert write_bytecode(module) == write_bytecode(module)
