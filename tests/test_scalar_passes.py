"""Tests for the scalar optimization passes: SimplifyCFG, DCE/ADCE,
constant propagation, SCCP, GVN, InstCombine, Reassociate, LICM, SROA,
tail recursion elimination, and reg2mem."""

import pytest

from repro.core import (
    parse_function, print_function, types, verify_function,
)
from repro.core.instructions import (
    AllocaInst, BinaryOperator, CallInst, LoadInst, Opcode, PhiNode,
)
from repro.core.values import ConstantInt
from repro.execution import Interpreter
from repro.frontend import compile_source
from repro.transforms import (
    AggressiveDCE, ConstantPropagation, DeadCodeElimination, GVN,
    InstCombine, LICM, PromoteMem2Reg, Reassociate, SCCP,
    ScalarReplAggregates, SimplifyCFG, TailRecursionElimination,
)
from repro.transforms.reg2mem import DemoteRegisters


def _ops(fn, opcode):
    return [i for i in fn.instructions() if i.opcode == opcode]


class TestSimplifyCFG:
    def test_removes_unreachable(self):
        fn = parse_function("""
int %f() {
entry:
  ret int 1
dead:
  ret int 2
}
""")
        assert SimplifyCFG().run_on_function(fn)
        assert len(fn.blocks) == 1

    def test_folds_constant_branch(self):
        fn = parse_function("""
int %f() {
entry:
  br bool true, label %yes, label %no
yes:
  ret int 1
no:
  ret int 2
}
""")
        SimplifyCFG().run_on_function(fn)
        verify_function(fn)
        assert Interpreter(fn.parent).run("f") == 1
        assert len(fn.blocks) == 1  # merged and pruned

    def test_merges_chain(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  br label %middle
middle:
  %y = add int %x, 1
  br label %end
end:
  ret int %y
}
""")
        SimplifyCFG().run_on_function(fn)
        verify_function(fn)
        assert len(fn.blocks) == 1

    def test_single_incoming_phi_folded(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  br label %next
next:
  %p = phi int [ %x, %entry ]
  ret int %p
}
""")
        SimplifyCFG().run_on_function(fn)
        verify_function(fn)
        assert not list(fn.entry_block.phis())

    def test_constant_switch_folded(self):
        fn = parse_function("""
int %f() {
entry:
  switch int 2, label %d [ int 1, label %one int 2, label %two ]
one:
  ret int 10
two:
  ret int 20
d:
  ret int 0
}
""")
        SimplifyCFG().run_on_function(fn)
        verify_function(fn)
        assert Interpreter(fn.parent).run("f") == 20

    def test_preserves_semantics_on_diamond(self):
        source = """
int %f(int %x) {
entry:
  %c = setlt int %x, 10
  br bool %c, label %small, label %big
small:
  %a = add int %x, 100
  br label %join
big:
  %b = mul int %x, 2
  br label %join
join:
  %r = phi int [ %a, %small ], [ %b, %big ]
  ret int %r
}
"""
        fn = parse_function(source)
        before_small = Interpreter(fn.parent).run("f", [3])
        before_big = Interpreter(fn.parent).run("f", [30])
        SimplifyCFG().run_on_function(fn)
        verify_function(fn)
        assert Interpreter(fn.parent).run("f", [3]) == before_small == 103
        assert Interpreter(fn.parent).run("f", [30]) == before_big == 60


class TestDCE:
    def test_unused_arithmetic_removed(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %dead = mul int %x, 10
  %dead2 = add int %dead, 1
  ret int %x
}
""")
        assert DeadCodeElimination().run_on_function(fn)
        assert fn.instruction_count() == 1

    def test_stores_kept(self):
        fn = parse_function("""
void %f(int* %p) {
entry:
  store int 1, int* %p
  ret void
}
""")
        assert not DeadCodeElimination().run_on_function(fn)

    def test_unused_malloc_removed(self):
        fn = parse_function("""
void %f() {
entry:
  %leak = malloc int
  ret void
}
""")
        assert DeadCodeElimination().run_on_function(fn)

    def test_adce_kills_dead_phi_cycle(self):
        fn = parse_function("""
int %f(int %n) {
entry:
  br label %loop
loop:
  %dead = phi int [ 0, %entry ], [ %dead.next, %loop ]
  %live = phi int [ 0, %entry ], [ %live.next, %loop ]
  %dead.next = add int %dead, 3
  %live.next = add int %live, 1
  %c = setlt int %live.next, %n
  br bool %c, label %loop, label %out
out:
  ret int %live.next
}
""")
        assert AggressiveDCE().run_on_function(fn)
        verify_function(fn)
        names = [i.name for i in fn.instructions()]
        assert "dead.next" not in names and "live.next" in names
        assert Interpreter(fn.parent).run("f", [5]) == 5


class TestConstantPropagation:
    def test_chain_folds(self):
        fn = parse_function("""
int %f() {
entry:
  %a = add int 2, 3
  %b = mul int %a, 4
  %c = sub int %b, 1
  ret int %c
}
""")
        assert ConstantPropagation().run_on_function(fn)
        DeadCodeElimination().run_on_function(fn)
        assert fn.instruction_count() == 1
        assert fn.entry_block.terminator.return_value.value == 19


class TestSCCP:
    def test_through_branches(self):
        fn = parse_function("""
int %f() {
entry:
  %c = setlt int 3, 10
  br bool %c, label %yes, label %no
yes:
  ret int 1
no:
  ret int 2
}
""")
        assert SCCP().run_on_function(fn)
        SimplifyCFG().run_on_function(fn)
        assert len(fn.blocks) == 1
        assert Interpreter(fn.parent).run("f") == 1

    def test_phi_of_equal_constants(self):
        fn = parse_function("""
int %f(bool %c) {
entry:
  br bool %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi int [ 7, %a ], [ 7, %b ]
  %r = add int %p, 1
  ret int %r
}
""")
        SCCP().run_on_function(fn)
        verify_function(fn)
        ret = fn.blocks[-1].terminator
        assert isinstance(ret.return_value, ConstantInt)
        assert ret.return_value.value == 8

    def test_unreachable_arm_ignored(self):
        """SCCP's whole point: the false arm's poisoning value never
        reaches the phi because the edge is dead."""
        fn = parse_function("""
int %f(int %x) {
entry:
  br bool true, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi int [ 5, %a ], [ %x, %b ]
  ret int %p
}
""")
        SCCP().run_on_function(fn)
        ret = fn.blocks[-1].terminator
        assert isinstance(ret.return_value, ConstantInt)
        assert ret.return_value.value == 5

    def test_no_fold_keeps_semantics(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %double = add int %x, %x
  ret int %double
}
""")
        SCCP().run_on_function(fn)
        assert Interpreter(fn.parent).run("f", [21]) == 42


class TestGVN:
    def test_redundant_expression(self):
        fn = parse_function("""
int %f(int %a, int %b) {
entry:
  %x = add int %a, %b
  %y = add int %a, %b
  %z = add int %x, %y
  ret int %z
}
""")
        assert GVN().run_on_function(fn)
        adds = _ops(fn, Opcode.ADD)
        assert len(adds) == 2  # one a+b, one x+x

    def test_commutative_match(self):
        fn = parse_function("""
int %f(int %a, int %b) {
entry:
  %x = add int %a, %b
  %y = add int %b, %a
  %z = sub int %x, %y
  ret int %z
}
""")
        GVN().run_on_function(fn)
        assert Interpreter(fn.parent).run("f", [10, 5]) == 0
        assert len(_ops(fn, Opcode.ADD)) == 1

    def test_noncommutative_not_matched(self):
        fn = parse_function("""
int %f(int %a, int %b) {
entry:
  %x = sub int %a, %b
  %y = sub int %b, %a
  %z = add int %x, %y
  ret int %z
}
""")
        GVN().run_on_function(fn)
        assert len(_ops(fn, Opcode.SUB)) == 2

    def test_across_dominating_block(self):
        fn = parse_function("""
int %f(int %a, bool %c) {
entry:
  %x = mul int %a, 3
  br bool %c, label %then, label %exit
then:
  %y = mul int %a, 3
  ret int %y
exit:
  ret int %x
}
""")
        GVN().run_on_function(fn)
        assert len(_ops(fn, Opcode.MUL)) == 1

    def test_store_load_forwarding(self):
        fn = parse_function("""
int %f(int* %p, int %v) {
entry:
  store int %v, int* %p
  %r = load int* %p
  ret int %r
}
""")
        GVN().run_on_function(fn)
        assert not _ops(fn, Opcode.LOAD)
        assert fn.entry_block.terminator.return_value is fn.args[1]

    def test_load_past_nonaliasing_store(self):
        fn = parse_function("""
int %f(int %v) {
entry:
  %a = alloca int
  %b = alloca int
  store int %v, int* %a
  store int 9, int* %b
  %r = load int* %a
  ret int %r
}
""")
        GVN().run_on_function(fn)
        assert not _ops(fn, Opcode.LOAD)

    def test_load_not_forwarded_past_call(self):
        fn = parse_function("""
declare void %mystery()
int %f(int* %p, int %v) {
entry:
  store int %v, int* %p
  call void %mystery()
  %r = load int* %p
  ret int %r
}
""")
        GVN().run_on_function(fn)
        assert len(_ops(fn, Opcode.LOAD)) == 1

    def test_redundant_gep(self):
        fn = parse_function("""
int %f({ int, int }* %p) {
entry:
  %g1 = getelementptr { int, int }* %p, long 0, uint 1
  %g2 = getelementptr { int, int }* %p, long 0, uint 1
  %a = load int* %g1
  %b = load int* %g2
  %s = add int %a, %b
  ret int %s
}
""")
        GVN().run_on_function(fn)
        assert len(_ops(fn, Opcode.GETELEMENTPTR)) == 1
        # And the second load collapses onto the first.
        assert len(_ops(fn, Opcode.LOAD)) == 1


class TestInstCombine:
    @pytest.mark.parametrize("expr,expected", [
        ("add int %x, 0", "%x"),
        ("sub int %x, 0", "%x"),
        ("mul int %x, 1", "%x"),
        ("div int %x, 1", "%x"),
        ("and int %x, -1", "%x"),
        ("or int %x, 0", "%x"),
        ("xor int %x, 0", "%x"),
    ])
    def test_identities(self, expr, expected):
        fn = parse_function(f"""
int %f(int %x) {{
entry:
  %r = {expr}
  ret int %r
}}
""")
        InstCombine().run_on_function(fn)
        ret = fn.entry_block.terminator
        assert ret.return_value is fn.args[0]

    def test_x_minus_x(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %r = sub int %x, %x
  ret int %r
}
""")
        InstCombine().run_on_function(fn)
        assert fn.entry_block.terminator.return_value.value == 0

    def test_xor_self(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %r = xor int %x, %x
  ret int %r
}
""")
        InstCombine().run_on_function(fn)
        assert fn.entry_block.terminator.return_value.value == 0

    def test_constant_moves_right(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %r = add int 5, %x
  %r2 = add int %r, 2
  ret int %r2
}
""")
        InstCombine().run_on_function(fn)
        verify_function(fn)
        first = fn.entry_block.instructions[0]
        assert isinstance(first.operands[1], ConstantInt)

    def test_compare_self(self):
        fn = parse_function("""
bool %f(int %x) {
entry:
  %r = seteq int %x, %x
  ret bool %r
}
""")
        InstCombine().run_on_function(fn)
        from repro.core.values import ConstantBool

        assert isinstance(fn.entry_block.terminator.return_value, ConstantBool)

    def test_fp_compare_self_kept(self):
        """NaN != NaN: x == x is *not* always true for floats."""
        fn = parse_function("""
bool %f(double %x) {
entry:
  %r = seteq double %x, %x
  ret bool %r
}
""")
        InstCombine().run_on_function(fn)
        assert fn.instruction_count() == 2  # compare survives

    def test_gep_zero_folds(self):
        fn = parse_function("""
int %f(int* %p) {
entry:
  %g = getelementptr int* %p, long 0
  %v = load int* %g
  ret int %v
}
""")
        InstCombine().run_on_function(fn)
        assert not _ops(fn, Opcode.GETELEMENTPTR)

    def test_shift_zero(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %r = shl int %x, ubyte 0
  ret int %r
}
""")
        InstCombine().run_on_function(fn)
        assert fn.entry_block.terminator.return_value is fn.args[0]


class TestReassociate:
    def test_constants_gather(self):
        fn = parse_function("""
int %f(int %a, int %b) {
entry:
  %t1 = add int %a, 4
  %t2 = add int %b, 3
  %t3 = add int %t1, %t2
  ret int %t3
}
""")
        Reassociate().run_on_function(fn)
        verify_function(fn)
        assert Interpreter(fn.parent).run("f", [10, 20]) == 37
        # The two constants fold into one add of 7.
        constants = [
            op.value for i in fn.instructions()
            for op in i.operands if isinstance(op, ConstantInt)
        ]
        assert 7 in constants

    def test_idempotent(self):
        fn = parse_function("""
int %f(int %a, int %b) {
entry:
  %t1 = add int %a, 4
  %t2 = add int %b, 3
  %t3 = add int %t1, %t2
  ret int %t3
}
""")
        Reassociate().run_on_function(fn)
        assert not Reassociate().run_on_function(fn)

    def test_fp_untouched(self):
        fn = parse_function("""
double %f(double %a, double %b) {
entry:
  %t1 = add double %a, 4.0
  %t2 = add double %b, 3.0
  %t3 = add double %t1, %t2
  ret double %t3
}
""")
        assert not Reassociate().run_on_function(fn)


class TestLICM:
    def test_invariant_hoisted(self):
        fn = parse_function("""
int %f(int %n, int %k) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %loop ]
  %acc = phi int [ 0, %entry ], [ %acc2, %loop ]
  %inv = mul int %k, 7
  %acc2 = add int %acc, %inv
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %out
out:
  ret int %acc2
}
""")
        expected = Interpreter(fn.parent).run("f", [5, 3])
        assert LICM().run_on_function(fn)
        verify_function(fn)
        loop_block = next(b for b in fn.blocks if b.name == "loop")
        assert not any(i.opcode == Opcode.MUL for i in loop_block.instructions)
        assert Interpreter(fn.parent).run("f", [5, 3]) == expected == 105

    def test_variant_not_hoisted(self):
        fn = parse_function("""
int %f(int %n) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %loop ]
  %sq = mul int %i, %i
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %out
out:
  ret int %sq
}
""")
        LICM().run_on_function(fn)
        loop_block = next(b for b in fn.blocks if b.name == "loop")
        assert any(i.opcode == Opcode.MUL for i in loop_block.instructions)

    def test_division_not_speculated(self):
        """Hoisting a division above its zero-guard would inject a trap."""
        fn = parse_function("""
int %f(int %n, int %d) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %skip ]
  %safe = setne int %d, 0
  br bool %safe, label %divide, label %skip
divide:
  %q = div int 100, %d
  br label %skip
skip:
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %out
out:
  ret int %next
}
""")
        LICM().run_on_function(fn)
        verify_function(fn)
        # d == 0 must still run without a fault.
        assert Interpreter(fn.parent).run("f", [3, 0]) == 3

    def test_preheader_creation_reports_change(self):
        """Regression: LICM used to create a preheader (new block, phi
        and branch rewiring) yet return False when nothing hoisted —
        a changed-flag lie that verify_each now catches.  The CFG edit
        alone must count as a change, and a second run must quiesce."""
        fn = parse_function("""
int %f(int %n, bool %p) {
entry:
  br bool %p, label %a, label %b
a:
  br label %loop
b:
  br label %loop
loop:
  %i = phi int [ 0, %a ], [ 1, %b ], [ %next, %loop ]
  %sq = mul int %i, %i
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %out
out:
  ret int %sq
}
""")
        expected = Interpreter(fn.parent).run("f", [5, 1])
        before = len(fn.blocks)
        assert LICM().run_on_function(fn) is True
        verify_function(fn)
        assert len(fn.blocks) == before + 1  # the preheader
        assert Interpreter(fn.parent).run("f", [5, 1]) == expected
        # Quiescent now: the preheader exists, nothing hoists.
        assert LICM().run_on_function(fn) is False


class TestSROA:
    def test_struct_split_then_promoted(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %pair = alloca { int, int }
  %a = getelementptr { int, int }* %pair, long 0, uint 0
  %b = getelementptr { int, int }* %pair, long 0, uint 1
  store int %x, int* %a
  store int 10, int* %b
  %va = load int* %a
  %vb = load int* %b
  %sum = add int %va, %vb
  ret int %sum
}
""")
        assert ScalarReplAggregates().run_on_function(fn)
        verify_function(fn)
        allocas = [i for i in fn.instructions() if isinstance(i, AllocaInst)]
        assert all(a.allocated_type is types.INT for a in allocas)
        PromoteMem2Reg().run_on_function(fn)
        assert not [i for i in fn.instructions() if isinstance(i, AllocaInst)]
        assert Interpreter(fn.parent).run("f", [5]) == 15

    def test_small_array_split(self):
        fn = parse_function("""
int %f() {
entry:
  %arr = alloca [3 x int]
  %p0 = getelementptr [3 x int]* %arr, long 0, long 0
  store int 7, int* %p0
  %v = load int* %p0
  ret int %v
}
""")
        assert ScalarReplAggregates().run_on_function(fn)
        verify_function(fn)
        assert Interpreter(fn.parent).run("f") == 7

    def test_variable_index_blocks_split(self):
        fn = parse_function("""
int %f(long %i) {
entry:
  %arr = alloca [3 x int]
  %p = getelementptr [3 x int]* %arr, long 0, long %i
  %v = load int* %p
  ret int %v
}
""")
        assert not ScalarReplAggregates().run_on_function(fn)

    def test_escaping_aggregate_kept(self):
        fn = parse_function("""
declare void %take({ int, int }* %p)
void %f() {
entry:
  %pair = alloca { int, int }
  call void %take({ int, int }* %pair)
  ret void
}
""")
        assert not ScalarReplAggregates().run_on_function(fn)

    def test_nested_struct_iterates(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %nested = alloca { { int, int }, int }
  %inner = getelementptr { { int, int }, int }* %nested, long 0, uint 0, uint 1
  store int %x, int* %inner
  %v = load int* %inner
  ret int %v
}
""")
        assert ScalarReplAggregates().run_on_function(fn)
        verify_function(fn)
        assert Interpreter(fn.parent).run("f", [9]) == 9


class TestTailRecursion:
    def test_accumulator_style(self):
        fn = parse_function("""
int %sum(int %n, int %acc) {
entry:
  %done = seteq int %n, 0
  br bool %done, label %base, label %rec
base:
  ret int %acc
rec:
  %n1 = sub int %n, 1
  %acc1 = add int %acc, %n
  %r = call int %sum(int %n1, int %acc1)
  ret int %r
}
""")
        expected = Interpreter(fn.parent).run("sum", [10, 0])
        assert TailRecursionElimination().run_on_function(fn)
        verify_function(fn)
        assert not [i for i in fn.instructions() if isinstance(i, CallInst)]
        assert Interpreter(fn.parent).run("sum", [10, 0]) == expected == 55

    def test_deep_recursion_flattened(self):
        """After the transform the function iterates, so depths far past
        any recursion budget work."""
        fn = parse_function("""
int %count(int %n, int %acc) {
entry:
  %done = seteq int %n, 0
  br bool %done, label %base, label %rec
base:
  ret int %acc
rec:
  %n1 = sub int %n, 1
  %acc1 = add int %acc, 1
  %r = call int %count(int %n1, int %acc1)
  ret int %r
}
""")
        TailRecursionElimination().run_on_function(fn)
        assert Interpreter(fn.parent).run("count", [100000, 0]) == 100000

    def test_non_tail_call_untouched(self):
        fn = parse_function("""
int %fib(int %n) {
entry:
  %small = setlt int %n, 2
  br bool %small, label %base, label %rec
base:
  ret int %n
rec:
  %n1 = sub int %n, 1
  %a = call int %fib(int %n1)
  %n2 = sub int %n, 2
  %b = call int %fib(int %n2)
  %s = add int %a, %b
  ret int %s
}
""")
        assert not TailRecursionElimination().run_on_function(fn)


class TestReg2Mem:
    def test_round_trip_with_mem2reg(self):
        fn = parse_function("""
int %f(int %n) {
entry:
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %loop ]
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %out
out:
  ret int %i
}
""")
        expected = Interpreter(fn.parent).run("f", [7])
        assert DemoteRegisters().run_on_function(fn)
        verify_function(fn)
        assert not [i for i in fn.instructions() if isinstance(i, PhiNode)]
        assert Interpreter(fn.parent).run("f", [7]) == expected
        PromoteMem2Reg().run_on_function(fn)
        verify_function(fn)
        assert Interpreter(fn.parent).run("f", [7]) == expected

    def test_no_cross_block_values_remain(self):
        fn = parse_function("""
int %f(bool %c, int %x) {
entry:
  %v = mul int %x, 3
  br bool %c, label %a, label %b
a:
  %r1 = add int %v, 1
  ret int %r1
b:
  %r2 = add int %v, 2
  ret int %r2
}
""")
        DemoteRegisters().run_on_function(fn)
        verify_function(fn)
        for block in fn.blocks:
            for inst in block.instructions:
                for use in inst.uses:
                    user_parent = use.user.parent
                    if not isinstance(inst, AllocaInst):
                        assert user_parent is block


class TestLICMModRef:
    """Load hoisting past loop writes the alias analyses disambiguate."""

    def test_load_hoisted_past_disjoint_store(self):
        fn = parse_function("""
int %f(int %n) {
entry:
  %a = alloca int
  %b = alloca int
  store int 5, int* %a
  store int 0, int* %b
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %loop ]
  %v = load int* %a
  %acc = add int %i, %v
  store int %acc, int* %b
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %out
out:
  ret int %acc
}
""")
        expected = Interpreter(fn.parent).run("f", [4])
        licm = LICM()
        assert licm.run_on_function(fn)
        verify_function(fn)
        loop_block = next(b for b in fn.blocks if b.name == "loop")
        assert not any(isinstance(i, LoadInst)
                       for i in loop_block.instructions)
        assert licm.statistics()["loads-hoisted-past-writes"] == 1
        assert Interpreter(fn.parent).run("f", [4]) == expected == 8

    def test_load_not_hoisted_past_clobbering_store(self):
        fn = parse_function("""
int %f(int %n) {
entry:
  %a = alloca int
  store int 5, int* %a
  br label %loop
loop:
  %i = phi int [ 0, %entry ], [ %next, %loop ]
  %v = load int* %a
  %acc = add int %i, %v
  store int %acc, int* %a
  %next = add int %i, 1
  %c = setlt int %next, %n
  br bool %c, label %loop, label %out
out:
  ret int %acc
}
""")
        LICM().run_on_function(fn)
        verify_function(fn)
        loop_block = next(b for b in fn.blocks if b.name == "loop")
        assert any(isinstance(i, LoadInst) for i in loop_block.instructions)

    def test_load_hoisted_past_call_via_modref(self):
        module = compile_source("""
static int counter = 0;
static int source = 41;

static void bump() { counter = counter + 1; }

int f(int n) {
  int acc = 0;
  int i = 0;
  do {
    acc = acc + source;
    bump();
    i = i + 1;
  } while (i < n);
  return acc + counter;
}
""", "m")
        fn = module.functions["f"]
        PromoteMem2Reg().run_on_function(fn)
        expected = Interpreter(module).run("f", [3])
        licm = LICM()
        licm.run_on_function(fn)
        verify_function(fn)
        # The load of %source moves out (bump only writes %counter);
        # the load of %counter stays in place.
        hoisted = licm.statistics()["loads-hoisted-past-writes"]
        assert hoisted >= 1
        assert Interpreter(module).run("f", [3]) == expected == 126

    def test_load_not_hoisted_past_call_that_writes_it(self):
        module = compile_source("""
static int cell = 41;

static void poke() { cell = cell + 1; }

int f(int n) {
  int acc = 0;
  int i = 0;
  do {
    acc = acc + cell;
    poke();
    i = i + 1;
  } while (i < n);
  return acc;
}
""", "m")
        fn = module.functions["f"]
        PromoteMem2Reg().run_on_function(fn)
        expected = Interpreter(module).run("f", [3])
        licm = LICM()
        licm.run_on_function(fn)
        verify_function(fn)
        assert licm.statistics()["loads-hoisted-past-writes"] == 0
        assert Interpreter(module).run("f", [3]) == expected == 126


class TestGVNDSA:
    """Redundant-load elimination across stores only DSA can refute."""

    def test_load_survives_store_through_phi_pointer(self):
        # The second load of %slot is redundant: the intervening store
        # goes through a phi of %other, which the syntactic alias walker
        # cannot resolve (MAY_ALIAS) but DSA proves disjoint.
        fn = parse_function("""
int %f(bool %c) {
entry:
  %slot = alloca int
  %other = alloca int
  store int 7, int* %slot
  store int 1, int* %other
  br bool %c, label %left, label %right
left:
  br label %body
right:
  br label %body
body:
  %q = phi int* [ %other, %left ], [ %other, %right ]
  %v1 = load int* %slot
  store int 9, int* %q
  %v2 = load int* %slot
  %sum = add int %v1, %v2
  ret int %sum
}
""")
        expected = Interpreter(fn.parent).run("f", [1])
        gvn = GVN()
        assert gvn.run_on_function(fn)
        verify_function(fn)
        body = next(b for b in fn.blocks if b.name == "body")
        assert sum(isinstance(i, LoadInst)
                   for i in body.instructions) == 1
        assert gvn.statistics()["loads-eliminated-via-dsa"] == 1
        assert Interpreter(fn.parent).run("f", [1]) == expected == 14

    def test_load_evicted_when_store_may_clobber(self):
        # Same shape, but the phi carries %slot itself: DSA unifies the
        # store target with the loaded slot and the fact must die.
        fn = parse_function("""
int %f(bool %c) {
entry:
  %slot = alloca int
  store int 7, int* %slot
  br bool %c, label %left, label %right
left:
  br label %body
right:
  br label %body
body:
  %q = phi int* [ %slot, %left ], [ %slot, %right ]
  %v1 = load int* %slot
  store int 9, int* %q
  %v2 = load int* %slot
  %sum = add int %v1, %v2
  ret int %sum
}
""")
        expected = Interpreter(fn.parent).run("f", [1])
        gvn = GVN()
        gvn.run_on_function(fn)
        verify_function(fn)
        body = next(b for b in fn.blocks if b.name == "body")
        assert sum(isinstance(i, LoadInst)
                   for i in body.instructions) == 2
        assert gvn.statistics()["loads-eliminated-via-dsa"] == 0
        assert Interpreter(fn.parent).run("f", [1]) == expected == 16
