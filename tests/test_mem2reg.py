"""Tests for stack promotion (mem2reg) — the SSA construction pass."""

import pytest

from repro.core import parse_function, print_function, types, verify_function
from repro.core.instructions import AllocaInst, LoadInst, Opcode, PhiNode, StoreInst
from repro.execution import Interpreter
from repro.frontend import compile_source
from repro.transforms.mem2reg import PromoteMem2Reg, is_promotable


def _promote(source: str):
    fn = parse_function(source)
    changed = PromoteMem2Reg().run_on_function(fn)
    verify_function(fn)
    return fn, changed


def _count(fn, kind):
    return sum(1 for i in fn.instructions() if isinstance(i, kind))


class TestPromotion:
    def test_straightline(self):
        fn, changed = _promote("""
int %f(int %x) {
entry:
  %slot = alloca int
  store int %x, int* %slot
  %v = load int* %slot
  ret int %v
}
""")
        assert changed
        assert _count(fn, AllocaInst) == 0
        assert _count(fn, LoadInst) == 0
        assert _count(fn, StoreInst) == 0

    def test_diamond_gets_phi(self):
        fn, changed = _promote("""
int %f(bool %c) {
entry:
  %slot = alloca int
  br bool %c, label %a, label %b
a:
  store int 1, int* %slot
  br label %join
b:
  store int 2, int* %slot
  br label %join
join:
  %v = load int* %slot
  ret int %v
}
""")
        assert changed
        assert _count(fn, PhiNode) == 1
        assert _count(fn, AllocaInst) == 0

    def test_loop_counter(self):
        fn, changed = _promote("""
int %f(int %n) {
entry:
  %i = alloca int
  store int 0, int* %i
  br label %cond
cond:
  %iv = load int* %i
  %c = setlt int %iv, %n
  br bool %c, label %body, label %done
body:
  %next = add int %iv, 1
  store int %next, int* %i
  br label %cond
done:
  ret int %iv
}
""")
        assert changed
        assert _count(fn, AllocaInst) == 0
        phis = [i for i in fn.instructions() if isinstance(i, PhiNode)]
        assert len(phis) == 1

    def test_load_before_store_is_undef(self):
        fn, changed = _promote("""
int %f() {
entry:
  %slot = alloca int
  %v = load int* %slot
  ret int %v
}
""")
        assert changed
        from repro.core.values import UndefValue

        ret = fn.entry_block.terminator
        assert isinstance(ret.return_value, UndefValue)

    def test_dead_phis_pruned(self):
        fn, changed = _promote("""
void %f(bool %c) {
entry:
  %slot = alloca int
  br bool %c, label %a, label %b
a:
  store int 1, int* %slot
  br label %join
b:
  store int 2, int* %slot
  br label %join
join:
  ret void
}
""")
        assert changed
        assert _count(fn, PhiNode) == 0


class TestNonPromotable:
    def test_escaped_address_kept(self):
        fn = parse_function("""
declare void %capture(int* %p)
int %f() {
entry:
  %slot = alloca int
  store int 1, int* %slot
  call void %capture(int* %slot)
  %v = load int* %slot
  ret int %v
}
""")
        PromoteMem2Reg().run_on_function(fn)
        verify_function(fn)
        assert _count(fn, AllocaInst) == 1

    def test_stored_pointer_kept(self):
        fn = parse_function("""
void %f(int** %out) {
entry:
  %slot = alloca int
  store int* %slot, int** %out
  ret void
}
""")
        assert not PromoteMem2Reg().run_on_function(fn)

    def test_sized_alloca_kept(self):
        fn = parse_function("""
int %f(uint %n) {
entry:
  %buf = alloca int, uint %n
  %v = load int* %buf
  ret int %v
}
""")
        assert not PromoteMem2Reg().run_on_function(fn)

    def test_aggregate_alloca_kept(self):
        fn = parse_function("""
void %f() {
entry:
  %s = alloca { int, int }
  ret void
}
""")
        assert not PromoteMem2Reg().run_on_function(fn)

    def test_is_promotable_predicate(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %good = alloca int
  store int %x, int* %good
  %v = load int* %good
  ret int %v
}
""")
        alloca = fn.entry_block.instructions[0]
        assert is_promotable(alloca)


class TestSemanticsPreserved:
    PROGRAM = r"""
int collatz_steps(int n) {
  int steps = 0;
  while (n != 1 && steps < 1000) {
    if (n % 2 == 0) { n = n / 2; }
    else { n = 3 * n + 1; }
    steps = steps + 1;
  }
  return steps;
}
int main() {
  int total = 0;
  int i;
  for (i = 1; i < 40; i++) { total += collatz_steps(i); }
  return total % 251;
}
"""

    def test_collatz_before_after(self):
        module = compile_source(self.PROGRAM, "collatz")
        expected = Interpreter(module).run("main")
        pass_obj = PromoteMem2Reg()
        for fn in module.defined_functions():
            pass_obj.run_on_function(fn)
            verify_function(fn)
        assert Interpreter(module).run("main") == expected
        assert all(
            not isinstance(i, AllocaInst)
            for f in module.defined_functions() for i in f.instructions()
        )
