"""Tests for the IRBuilder convenience API."""

import pytest

from repro.core import (
    ConstantBool, ConstantInt, IRBuilder, Module, print_module, types,
    verify_module,
)
from repro.core.instructions import Opcode
from repro.execution import Interpreter


def _fresh(ret=types.INT, params=(types.INT,)):
    module = Module("b")
    fn = module.new_function(types.function(ret, list(params)), "f")
    builder = IRBuilder(fn.append_block("entry"))
    return module, fn, builder


class TestArithmeticHelpers:
    def test_all_binary_helpers(self):
        module, fn, builder = _fresh()
        x = fn.args[0]
        two = ConstantInt(types.INT, 2)
        value = builder.add(x, two)
        value = builder.sub(value, two)
        value = builder.mul(value, two)
        value = builder.div(value, two)
        value = builder.rem(value, two)
        value = builder.and_(value, two)
        value = builder.or_(value, two)
        value = builder.xor(value, two)
        builder.ret(value)
        verify_module(module)

    def test_comparison_helpers(self):
        module, fn, builder = _fresh(ret=types.BOOL)
        x = fn.args[0]
        two = ConstantInt(types.INT, 2)
        for helper in (builder.seteq, builder.setne, builder.setlt,
                       builder.setgt, builder.setle, builder.setge):
            flag = helper(x, two)
            assert flag.type is types.BOOL
        builder.ret(flag)
        verify_module(module)

    def test_neg_lowering(self):
        """There is no neg opcode: the builder emits 0 - x."""
        module, fn, builder = _fresh()
        builder.ret(builder.neg(fn.args[0]))
        assert Interpreter(module).run("f", [17]) == -17
        inst = fn.entry_block.instructions[0]
        assert inst.opcode == Opcode.SUB
        assert inst.operands[0].value == 0

    def test_not_lowering(self):
        """There is no not opcode: the builder emits x xor -1."""
        module, fn, builder = _fresh()
        builder.ret(builder.not_(fn.args[0]))
        assert Interpreter(module).run("f", [0]) == -1
        inst = fn.entry_block.instructions[0]
        assert inst.opcode == Opcode.XOR

    def test_bool_not(self):
        module, fn, builder = _fresh(ret=types.BOOL, params=(types.BOOL,))
        builder.ret(builder.not_(fn.args[0]))
        assert Interpreter(module).run("f", [True]) is False

    def test_cast_same_type_is_identity(self):
        module, fn, builder = _fresh()
        value = builder.cast(fn.args[0], types.INT)
        assert value is fn.args[0]
        builder.ret(value)


class TestMemoryHelpers:
    def test_struct_gep(self):
        module, fn, builder = _fresh()
        pair = types.struct([types.INT, types.INT])
        slot = builder.alloca(pair)
        field1 = builder.struct_gep(slot, 1)
        builder.store(fn.args[0], field1)
        builder.ret(builder.load(field1))
        verify_module(module)
        assert Interpreter(module).run("f", [5]) == 5

    def test_array_gep(self):
        module, fn, builder = _fresh()
        arr = builder.alloca(types.array(types.INT, 8))
        index = ConstantInt(types.LONG, 3)
        slot = builder.array_gep(arr, index)
        builder.store(fn.args[0], slot)
        builder.ret(builder.load(slot))
        assert Interpreter(module).run("f", [11]) == 11


class TestPositioning:
    def test_position_before(self):
        module, fn, builder = _fresh()
        x = fn.args[0]
        last = builder.add(x, ConstantInt(types.INT, 1), "last")
        builder.ret(last)
        builder.position_before(last)
        builder.add(x, ConstantInt(types.INT, 2), "first")
        names = [i.name for i in fn.entry_block.instructions]
        assert names == ["first", "last", ""]
        verify_module(module)

    def test_phi_inserted_at_block_top(self):
        module, fn, builder = _fresh(params=(types.BOOL,))
        a = fn.append_block("a")
        b = fn.append_block("b")
        join = fn.append_block("join")
        builder.cond_br(fn.args[0], a, b)
        IRBuilder(a).br(join)
        IRBuilder(b).br(join)
        join_builder = IRBuilder(join)
        # Insert a non-phi first, then ask for a phi: it must go on top.
        join_builder.ret(ConstantInt(types.INT, 0))
        phi = IRBuilder(join).phi(types.INT)
        assert join.instructions[0] is phi
        phi.add_incoming(ConstantInt(types.INT, 1), a)
        phi.add_incoming(ConstantInt(types.INT, 2), b)
        verify_module(module)

    def test_append_to_terminated_block_rejected(self):
        module, fn, builder = _fresh()
        builder.ret(fn.args[0])
        with pytest.raises(ValueError, match="terminated"):
            builder.add(fn.args[0], fn.args[0])

    def test_unpositioned_builder_rejected(self):
        builder = IRBuilder()
        with pytest.raises(ValueError, match="insertion block"):
            builder.ret_void()
