"""Tests for dominator trees and dominance frontiers, including a
property test against a naive fixed-point dominance computation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.cfg import reachable_blocks
from repro.analysis.dominators import DominanceFrontiers, DominatorTree
from repro.core import ConstantBool, IRBuilder, Module, types
from repro.core.values import ConstantInt


def _make_function(n_blocks):
    module = Module("dom")
    fn = module.new_function(types.function(types.VOID, [types.BOOL]), "f")
    blocks = [fn.append_block(f"b{i}") for i in range(n_blocks)]
    return fn, blocks


def _diamond():
    fn, (entry, left, right, join) = _make_function(4)
    IRBuilder(entry).cond_br(fn.args[0], left, right)
    IRBuilder(left).br(join)
    IRBuilder(right).br(join)
    IRBuilder(join).ret_void()
    return fn, entry, left, right, join


class TestDominatorTree:
    def test_diamond(self):
        fn, entry, left, right, join = _diamond()
        domtree = DominatorTree(fn)
        assert domtree.idom(entry) is None
        assert domtree.idom(left) is entry
        assert domtree.idom(right) is entry
        assert domtree.idom(join) is entry
        assert domtree.dominates_block(entry, join)
        assert not domtree.dominates_block(left, join)
        assert domtree.dominates_block(left, left)

    def test_chain(self):
        fn, blocks = _make_function(4)
        for a, b in zip(blocks, blocks[1:]):
            IRBuilder(a).br(b)
        IRBuilder(blocks[-1]).ret_void()
        domtree = DominatorTree(fn)
        for earlier, later in zip(blocks, blocks[1:]):
            assert domtree.idom(later) is earlier
            assert domtree.strictly_dominates(earlier, later)
        assert domtree.depth(blocks[3]) == 3

    def test_loop(self):
        fn, (entry, header, body, exit_block) = _make_function(4)
        IRBuilder(entry).br(header)
        IRBuilder(header).cond_br(fn.args[0], body, exit_block)
        IRBuilder(body).br(header)
        IRBuilder(exit_block).ret_void()
        domtree = DominatorTree(fn)
        assert domtree.idom(body) is header
        assert domtree.idom(exit_block) is header
        assert not domtree.dominates_block(body, exit_block)

    def test_unreachable_block(self):
        fn, (entry, dead) = _make_function(2)
        IRBuilder(entry).ret_void()
        IRBuilder(dead).ret_void()
        domtree = DominatorTree(fn)
        assert domtree.is_reachable(entry)
        assert not domtree.is_reachable(dead)
        assert not domtree.dominates_block(entry, dead)

    def test_preorder_visits_all_reachable(self):
        fn, entry, left, right, join = _diamond()
        domtree = DominatorTree(fn)
        visited = list(domtree.preorder())
        assert len(visited) == 4
        assert visited[0] is entry


class TestDominanceFrontiers:
    def test_diamond_frontiers(self):
        fn, entry, left, right, join = _diamond()
        frontiers = DominanceFrontiers(fn)
        assert frontiers.frontier(left) == [join]
        assert frontiers.frontier(right) == [join]
        assert frontiers.frontier(entry) == []
        assert frontiers.frontier(join) == []

    def test_loop_header_in_own_frontier(self):
        fn, (entry, header, body, exit_block) = _make_function(4)
        IRBuilder(entry).br(header)
        IRBuilder(header).cond_br(fn.args[0], body, exit_block)
        IRBuilder(body).br(header)
        IRBuilder(exit_block).ret_void()
        frontiers = DominanceFrontiers(fn)
        assert header in frontiers.frontier(body)
        assert header in frontiers.frontier(header)


# ---------------------------------------------------------------------------
# Property: the engineered algorithm agrees with naive dataflow dominance.
# ---------------------------------------------------------------------------

def _naive_dominators(fn):
    """Textbook iterative dominators: Dom(n) = {n} ∪ ⋂ Dom(preds)."""
    blocks = reachable_blocks(fn)
    ids = {id(b): b for b in blocks}
    entry = blocks[0]
    dom = {id(b): set(ids) for b in blocks}
    dom[id(entry)] = {id(entry)}
    changed = True
    while changed:
        changed = False
        for block in blocks[1:]:
            preds = [p for p in block.unique_predecessors() if id(p) in ids]
            if not preds:
                continue
            new = set.intersection(*(dom[id(p)] for p in preds)) | {id(block)}
            if new != dom[id(block)]:
                dom[id(block)] = new
                changed = True
    return dom


@st.composite
def random_cfgs(draw):
    """A random function of 2-10 blocks with arbitrary branch structure."""
    n = draw(st.integers(min_value=2, max_value=10))
    module = Module("rand")
    fn = module.new_function(types.function(types.VOID, [types.BOOL]), "f")
    blocks = [fn.append_block(f"b{i}") for i in range(n)]
    for index, block in enumerate(blocks):
        kind = draw(st.integers(min_value=0, max_value=2))
        if kind == 0 or index == n - 1:
            IRBuilder(block).ret_void()
        elif kind == 1:
            target = blocks[draw(st.integers(min_value=0, max_value=n - 1))]
            IRBuilder(block).br(target)
        else:
            t = blocks[draw(st.integers(min_value=0, max_value=n - 1))]
            f = blocks[draw(st.integers(min_value=0, max_value=n - 1))]
            IRBuilder(block).cond_br(fn.args[0], t, f)
    return fn


@given(random_cfgs())
@settings(max_examples=60, deadline=None)
def test_dominators_match_naive_dataflow(fn):
    domtree = DominatorTree(fn)
    naive = _naive_dominators(fn)
    for block in reachable_blocks(fn):
        for other in reachable_blocks(fn):
            expected = id(other) in naive[id(block)]
            assert domtree.dominates_block(other, block) == expected


@given(random_cfgs())
@settings(max_examples=60, deadline=None)
def test_frontier_definition_holds(fn):
    """DF(b) contains exactly the blocks y with a predecessor dominated
    by b where b does not strictly dominate y."""
    domtree = DominatorTree(fn)
    frontiers = DominanceFrontiers(fn, domtree)
    reachable = reachable_blocks(fn)
    for block in reachable:
        computed = {id(f) for f in frontiers.frontier(block)}
        expected = set()
        for candidate in reachable:
            preds = [p for p in candidate.unique_predecessors()
                     if domtree.is_reachable(p)]
            if any(domtree.dominates_block(block, p) for p in preds) \
                    and not domtree.strictly_dominates(block, candidate):
                expected.add(id(candidate))
        assert computed == expected
