"""Tests for the extension features: setjmp/longjmp on the unwinding
mechanism, heap-to-stack promotion, and the type-erasure ablation pass."""

import pytest

from repro.core import (
    ConstantInt, IRBuilder, Module, print_module, types, verify_module,
)
from repro.core.instructions import AllocaInst, FreeInst, MallocInst
from repro.cxxfe import SetjmpRegion, emit_longjmp
from repro.driver import optimize_module
from repro.execution import Interpreter, UnhandledUnwind
from repro.frontend import compile_source
from repro.transforms.ipo import HeapToStackPromotion
from repro.transforms.typeerase import TypeEraser


def _build_setjmp_module(nested: bool = False) -> Module:
    """jumper(depth) longjmps to buffer 7 with value 99; main opens a
    setjmp region around the call."""
    module = Module("sjlj")

    jumper = module.new_function(types.function(types.VOID, [types.INT]),
                                 "jumper", arg_names=["depth"])
    builder = IRBuilder(jumper.append_block("entry"))
    recurse = jumper.append_block("recurse")
    jump = jumper.append_block("jump")
    done = builder.setle(jumper.args[0], ConstantInt(types.INT, 0), "done")
    builder.cond_br(done, jump, recurse)
    recurse_builder = IRBuilder(recurse)
    deeper = recurse_builder.sub(jumper.args[0], ConstantInt(types.INT, 1), "d")
    recurse_builder.call(jumper, [deeper])
    recurse_builder.ret_void()
    emit_longjmp(module, IRBuilder(jump), ConstantInt(types.INT, 7),
                 ConstantInt(types.INT, 99))

    main = module.new_function(types.function(types.INT, [types.INT]),
                               "main", arg_names=["depth"])
    builder = IRBuilder(main.append_block("entry"))
    region = SetjmpRegion.open(module, builder,
                               ConstantInt(types.INT, 7))
    region.call(jumper, [main.args[0]])
    after = region.close()
    after.ret(region.result(after))
    verify_module(module)
    return module


class TestSetjmpLongjmp:
    def test_longjmp_returns_value_at_setjmp(self):
        module = _build_setjmp_module()
        # The longjmp fires five frames down and lands back at the
        # setjmp merge with its value.
        assert Interpreter(module).run("main", [5]) == 99

    def test_direct_jump(self):
        module = _build_setjmp_module()
        assert Interpreter(module).run("main", [0]) == 99

    def test_unmatched_buffer_keeps_unwinding(self):
        """A longjmp to a different buffer passes through the region."""
        module = Module("mismatch")
        thrower = module.new_function(types.function(types.VOID, []), "thrower")
        emit_longjmp(module, IRBuilder(thrower.append_block("entry")),
                     ConstantInt(types.INT, 42), ConstantInt(types.INT, 1))
        main = module.new_function(types.function(types.INT, []), "main")
        builder = IRBuilder(main.append_block("entry"))
        region = SetjmpRegion.open(module, builder, ConstantInt(types.INT, 7))
        region.call(thrower, [])
        after = region.close()
        after.ret(region.result(after))
        verify_module(module)
        with pytest.raises(UnhandledUnwind):
            Interpreter(module).run("main")

    def test_nested_regions_match_innermost_first(self):
        module = Module("nested")
        thrower = module.new_function(types.function(types.VOID, [types.INT]),
                                      "thrower", arg_names=["target"])
        emit_longjmp(module, IRBuilder(thrower.append_block("entry")),
                     thrower.args[0], ConstantInt(types.INT, 5))
        main = module.new_function(types.function(types.INT, [types.INT]),
                                   "main", arg_names=["target"])
        builder = IRBuilder(main.append_block("entry"))
        outer = SetjmpRegion.open(module, builder, ConstantInt(types.INT, 1))
        inner = SetjmpRegion.open(module, outer.builder,
                                  ConstantInt(types.INT, 2))
        inner.call(thrower, [main.args[0]])
        after_inner = inner.close()
        inner_result = inner.result(after_inner)
        outer.builder = after_inner
        after_outer = outer.close()
        outer_result = outer.result(after_outer)
        combined = after_outer.add(
            after_outer.mul(outer_result, ConstantInt(types.INT, 100), "o"),
            inner_result if False else after_outer.load(inner._slot, "i2"),
            "combo",
        )
        after_outer.ret(combined)
        verify_module(module)
        # longjmp to buffer 2: the inner region claims it -> inner=5,
        # outer=0 -> 5.
        assert Interpreter(module).run("main", [2]) == 5
        # longjmp to buffer 1: the inner handler re-unwinds... but the
        # outer region's handler only guards calls made through
        # outer.call; the inner rethrow escapes the frame entirely.
        with pytest.raises(UnhandledUnwind):
            Interpreter(module).run("main", [1])


class TestHeapToStack:
    def test_non_escaping_malloc_promoted(self):
        module = compile_source("""
struct Pair { int a; int b; };
typedef struct Pair Pair;
int main() {
  Pair *p = malloc(Pair);
  p->a = 20;
  p->b = 22;
  int r = p->a + p->b;
  free(p);
  return r;
}
""", "h2s")
        optimize_module(module, 2)   # heap2stack expects SSA-form input
        expected = Interpreter(module).run("main")
        h2s = HeapToStackPromotion()
        assert h2s.run_on_module(module)
        verify_module(module)
        assert h2s.stats.mallocs_promoted == 1
        assert h2s.stats.frees_deleted == 1
        instructions = [
            i for f in module.defined_functions() for i in f.instructions()
        ]
        assert not any(isinstance(i, MallocInst) for i in instructions)
        assert not any(isinstance(i, FreeInst) for i in instructions)
        interp = Interpreter(module)
        assert interp.run("main") == expected == 42
        assert interp.memory.live_allocations("heap") == 0

    def test_returned_pointer_not_promoted(self):
        module = compile_source("""
int *make() {
  int *p = malloc(int);
  *p = 1;
  return p;
}
""", "h2s")
        assert not HeapToStackPromotion().run_on_module(module)

    def test_stored_pointer_not_promoted(self):
        module = compile_source("""
static int *keep = null;
int main() {
  int *p = malloc(int);
  keep = p;
  return 0;
}
""", "h2s")
        assert not HeapToStackPromotion().run_on_module(module)

    def test_pointer_passed_to_callee_not_promoted(self):
        module = compile_source("""
extern int print_int(int x);
int main() {
  int *p = malloc(int);
  *p = 3;
  print_int(*p);
  free(p);
  return 0;
}
""", "h2s")
        optimize_module(module, 2)
        # *p loads are fine, but print_int(*p) passes the VALUE, not the
        # pointer — so this one actually promotes.  The blocking case is
        # passing the pointer itself:
        assert HeapToStackPromotion().run_on_module(module)
        module2 = compile_source("""
extern void capture(int *p);
int main() {
  int *p = malloc(int);
  capture(p);
  free(p);
  return 0;
}
""", "h2s")
        assert not HeapToStackPromotion().run_on_module(module2)

    def test_large_objects_stay_on_heap(self):
        module = compile_source("""
struct Big { int data[4096]; };
typedef struct Big Big;
int main() {
  Big *b = malloc(Big);
  b->data[0] = 1;
  int r = b->data[0];
  free(b);
  return r;
}
""", "h2s")
        assert not HeapToStackPromotion(max_bytes=4096).run_on_module(module)

    def test_gep_derived_uses_ok(self):
        module = compile_source("""
struct Node { int v; struct Node *next; };
typedef struct Node Node;
int main() {
  Node *n = malloc(Node);
  n->v = 7;
  n->next = null;
  int r = n->v;
  free(n);
  return r;
}
""", "h2s")
        optimize_module(module, 2)
        assert HeapToStackPromotion().run_on_module(module)
        assert Interpreter(module).run("main") == 7


class TestTypeEraser:
    def test_gep_rewritten_to_byte_arithmetic(self):
        module = compile_source("""
struct Pair { int a; int b; };
typedef struct Pair Pair;
int main() {
  Pair *p = malloc(Pair);
  p->a = 1;
  p->b = 2;
  return p->a + p->b;
}
""", "erase")
        expected = Interpreter(module).run("main")
        assert TypeEraser().run_on_module(module)
        verify_module(module)
        text = print_module(module)
        assert "uint 1" not in text, "no struct-field GEPs remain"
        assert Interpreter(module).run("main") == expected

    def test_erasure_preserves_semantics_after_optimization(self):
        source = """
static int table[32];
int main() {
  int i;
  for (i = 0; i < 32; i++) { table[i] = i * 3; }
  int acc = 0;
  for (i = 0; i < 32; i = i + 4) { acc += table[i]; }
  return acc;
}
"""
        module = compile_source(source, "erase")
        expected = Interpreter(module).run("main")
        TypeEraser().run_on_module(module)
        optimize_module(module, 2)
        verify_module(module)
        assert Interpreter(module).run("main") == expected


class TestSafeCodeBounds:
    def _checked(self, source, optimize=False):
        from repro.driver import link_time_optimize
        from repro.transforms.safecode import BoundsCheckInsertion

        module = compile_source(source, "sc")
        if optimize:
            optimize_module(module, 2)
            link_time_optimize(module, 2)
        passobj = BoundsCheckInsertion()
        passobj.run_on_module(module)
        verify_module(module)
        return module, passobj

    def test_out_of_bounds_trapped(self):
        from repro.execution import ExecutionError

        module, passobj = self._checked("""
static int table[8];
int get(int i) { return table[i]; }
int main() { return get(3); }
""")
        assert passobj.stats.checks_inserted >= 1
        assert Interpreter(module).run("main") == 0
        with pytest.raises(ExecutionError, match="out of bounds"):
            Interpreter(module).run("get", [12])
        with pytest.raises(ExecutionError, match="out of bounds"):
            Interpreter(module).run("get", [-1])

    def test_constant_indices_elided(self):
        module, passobj = self._checked("""
static int table[8];
int main() {
  table[0] = 1;
  table[7] = 2;
  return table[0] + table[7];
}
""")
        assert passobj.stats.checks_inserted == 0
        assert passobj.stats.checks_elided >= 2
        assert Interpreter(module).run("main") == 3

    def test_sccp_enables_elimination(self):
        """Optimization first: constants flow into the indices, so the
        checker statically discharges what would otherwise be runtime
        checks — the SAFECode "interprocedural static analysis to
        minimize runtime checks" effect at our scale."""
        source = """
static int table[8];
static int get(int i) { return table[i]; }
int main() {
  table[5] = 11;
  return get(5);
}
"""
        _, unoptimized = self._checked(source, optimize=False)
        module, optimized = self._checked(source, optimize=True)
        assert optimized.stats.checks_inserted < max(
            unoptimized.stats.checks_inserted, 1
        ) or optimized.stats.checks_elided > unoptimized.stats.checks_elided
        assert Interpreter(module).run("main") == 11

    def test_semantics_preserved_in_bounds(self):
        source = """
static int data[16];
int main() {
  int i;
  int acc = 0;
  for (i = 0; i < 16; i++) { data[i] = i; }
  for (i = 0; i < 16; i++) { acc += data[i]; }
  return acc;
}
"""
        module, passobj = self._checked(source)
        assert passobj.stats.checks_inserted >= 2
        assert Interpreter(module).run("main") == sum(range(16))
