"""Tests for profiling, trace formation, the offline reoptimizer, the
pipelines, the lifelong session, and the cxxfe lowering helpers."""

import pytest

from repro.core import parse_module, print_module, types, verify_module
from repro.core.instructions import CallInst
from repro.driver import (
    LifelongSession, compile_and_link, link_time_optimize, optimize_module,
)
from repro.execution import Interpreter
from repro.frontend import compile_source
from repro.profile import (
    Granularity, OfflineReoptimizer, ProfileData, ProfileInstrumentation,
    TraceFormation,
)

HOT_LOOP = """
extern int print_int(int x);
static int work(int n) {
  int acc = 0;
  int i;
  for (i = 0; i < n; i++) {
    if (i % 10 == 0) { acc += 100; }
    else { acc += i; }
  }
  return acc;
}
int main() {
  int r = work(500);
  print_int(r);
  return r % 251;
}
"""


class TestInstrumentation:
    def test_counters_inserted(self):
        module = compile_source(HOT_LOOP, "hot")
        instrumentation = ProfileInstrumentation(Granularity.BLOCKS)
        assert instrumentation.run_on_module(module)
        verify_module(module)
        assert len(instrumentation.profile_map) > 0
        counter_calls = sum(
            1 for f in module.defined_functions() for i in f.instructions()
            if isinstance(i, CallInst) and getattr(i.callee, "name", "")
            == "__profile_count"
        )
        assert counter_calls == len(instrumentation.profile_map)

    def test_region_granularity_marks_loops(self):
        module = compile_source(HOT_LOOP, "hot")
        instrumentation = ProfileInstrumentation(Granularity.REGIONS)
        instrumentation.run_on_module(module)
        kinds = {info.kind for info in instrumentation.profile_map.counters}
        assert kinds == {"entry", "loop"}

    def test_counts_collected(self):
        module = compile_source(HOT_LOOP, "hot")
        instrumentation = ProfileInstrumentation(Granularity.BLOCKS)
        instrumentation.run_on_module(module)
        profile = ProfileData(instrumentation.profile_map)
        interp = Interpreter(module, extra_externals=profile.externals())
        interp.run("main")
        counts = profile.block_counts("work")
        # The loop body ran 500 times.
        assert max(counts.values()) >= 500
        assert profile.function_entry_counts()["main"] == 1

    def test_instrumentation_preserves_output(self):
        clean = compile_source(HOT_LOOP, "hot")
        expected = Interpreter(clean).run("main")
        module = compile_source(HOT_LOOP, "hot")
        instrumentation = ProfileInstrumentation(Granularity.BLOCKS)
        instrumentation.run_on_module(module)
        profile = ProfileData(instrumentation.profile_map)
        interp = Interpreter(module, extra_externals=profile.externals())
        assert interp.run("main") == expected


class TestProfileData:
    def _collected(self):
        module = compile_source(HOT_LOOP, "hot")
        instrumentation = ProfileInstrumentation(Granularity.BLOCKS)
        instrumentation.run_on_module(module)
        profile = ProfileData(instrumentation.profile_map)
        interp = Interpreter(module, extra_externals=profile.externals())
        interp.run("main")
        return module, profile

    def test_hot_loops_query(self):
        _, profile = self._collected()
        hot = profile.hot_loops(threshold=100)
        assert hot and hot[0][2] >= 100

    def test_json_round_trip(self):
        _, profile = self._collected()
        restored = ProfileData.from_json(profile.to_json())
        assert restored.counts == profile.counts

    def test_merge(self):
        _, profile = self._collected()
        merged = ProfileData(profile.profile_map)
        merged.merge(profile)
        merged.merge(profile)
        sample = next(iter(profile.counts))
        assert merged.counts[sample] == 2 * profile.counts[sample]


class TestTraceFormation:
    def test_trace_preserves_semantics(self):
        module = compile_and_link([HOT_LOOP], "hot")
        expected = Interpreter(module).run("main")
        instrumentation = ProfileInstrumentation(Granularity.BLOCKS)
        instrumentation.run_on_module(module)
        profile = ProfileData(instrumentation.profile_map)
        interp = Interpreter(module, extra_externals=profile.externals())
        interp.run("main")

        tracer = TraceFormation()
        for fn in list(module.defined_functions()):
            counts = profile.block_counts(fn.name)
            if counts:
                tracer.optimize_function(fn, counts)
        verify_module(module)
        assert tracer.traces_formed >= 1
        quiet = Interpreter(module,
                            extra_externals={"__profile_count": lambda i, a: None})
        assert quiet.run("main") == expected


class TestOfflineReoptimizer:
    def test_cycle(self):
        session = LifelongSession([HOT_LOOP], "hot")
        before = session.run_uninstrumented()
        session.run()
        report = session.reoptimize(hot_call_threshold=1, hot_loop_threshold=50)
        after = session.run_uninstrumented()
        assert after.exit_value == before.exit_value
        assert after.output == before.output
        # Something happened: traces and/or layout changes.
        assert report.traces_formed + report.blocks_reordered > 0


class TestPipelines:
    def test_optimization_levels_ordered(self):
        source = """
static int square(int x) { return x * x; }
int main() {
  int acc = 0;
  int i;
  for (i = 0; i < 20; i++) { acc += square(i); }
  return acc % 251;
}
"""
        step_counts = {}
        outputs = set()
        for level in (0, 1, 2, 3):
            module = compile_source(source, f"o{level}")
            optimize_module(module, level)
            verify_module(module)
            interp = Interpreter(module)
            outputs.add(interp.run("main"))
            step_counts[level] = interp.steps
        assert len(outputs) == 1, "every level computes the same answer"
        assert step_counts[2] < step_counts[0]

    def test_lto_shrinks_program(self):
        source = """
static int used(int x) { return x + 1; }
static int unused_helper(int x) { return x * 999; }
static int dead_global_user() { return 0; }
int main() { return used(41); }
"""
        module = compile_source(source, "lto")
        optimize_module(module, 2)
        before = len(module.functions)
        link_time_optimize(module, 2)
        verify_module(module)
        assert len(module.functions) < before
        assert Interpreter(module).run("main") == 42

    def test_multi_tu_compile_and_link(self):
        library = "int add(int a, int b) { return a + b; }"
        app = """
extern int add(int a, int b);
int main() { return add(40, 2); }
"""
        module = compile_and_link([library, app], "two")
        verify_module(module)
        assert Interpreter(module).run("main") == 42

    def test_verify_each_mode(self):
        module = compile_source("int main() { return 1 + 1; }", "v")
        optimize_module(module, 3, verify_each=True)
        assert Interpreter(module).run("main") == 2


class TestCxxFE:
    def test_class_layout_matches_paper(self):
        """Paper 4.1.2: derived classes nest base structs."""
        from repro.core import Module
        from repro.cxxfe import ClassBuilder

        module = Module("classes")
        classes = ClassBuilder(module)

        def method(name):
            def body(builder, this):
                from repro.core import ConstantInt

                builder.ret(ConstantInt(types.INT, 1))

            return classes.emit_method(name, body)

        base = classes.define_class("base1", [types.INT],
                                    {"m": method("base1.m")})
        derived = classes.define_class("derived", [types.SHORT], {},
                                       base=base)
        # derived = { {vptr, int}, short }
        assert derived.struct_type.fields[0] is base.struct_type
        assert derived.struct_type.fields[1] is types.SHORT
        assert derived.methods == base.methods

    def test_override_replaces_slot(self):
        from repro.core import ConstantInt, IRBuilder, Module
        from repro.cxxfe import ClassBuilder

        module = Module("ovr")
        classes = ClassBuilder(module)

        def const_method(name, value):
            def body(builder, this):
                builder.ret(ConstantInt(types.INT, value))

            return classes.emit_method(name, body)

        base = classes.define_class("B", [], {"m": const_method("B.m", 1)})
        derived = classes.define_class("D", [], {"m": const_method("D.m", 2)},
                                       base=base)
        main = module.new_function(types.function(types.INT, []), "main")
        builder = IRBuilder(main.append_block("entry"))
        obj = classes.emit_new(builder, derived)
        result = classes.emit_virtual_call(builder, derived, obj, "m")
        builder.ret(result)
        verify_module(module)
        assert Interpreter(module).run("main") == 2


class TestJITEngine:
    SOURCE = """
extern int print_int(int x);
static int helper_a(int x) { return x + 1; }
static int helper_b(int x) { return x * 2; }
static int cold_path(int x) { return helper_b(x) + 100; }
int main(int which) {
  int r;
  if (which == 0) { r = helper_a(10); }
  else { r = cold_path(10); }
  print_int(r);
  return r;
}
"""

    def _bytecode(self):
        from repro.bitcode import write_bytecode

        module = compile_source(self.SOURCE, "jit")
        return write_bytecode(module, strip_names=False), module

    def test_lazy_materialization(self):
        from repro.execution import JITEngine

        bytecode, module = self._bytecode()
        expected = Interpreter(module).run("main", [0])
        jit = JITEngine(bytecode)
        assert jit.run("main", [0]) == expected == 11
        assert jit.materialized("main")
        assert jit.materialized("helper_a")
        # The cold path never ran: its body was never decoded.
        assert not jit.materialized("cold_path")
        assert not jit.materialized("helper_b")
        assert jit.stats.functions_materialized == 2

    def test_cold_path_decodes_when_taken(self):
        from repro.execution import JITEngine

        bytecode, _ = self._bytecode()
        jit = JITEngine(bytecode)
        assert jit.run("main", [1]) == 120
        assert jit.materialized("cold_path")
        assert jit.materialized("helper_b")
        assert not jit.materialized("helper_a")

    def test_jit_output_matches_interpreter(self):
        from repro.execution import JITEngine

        bytecode, module = self._bytecode()
        reference = Interpreter(module)
        reference.run("main", [1])
        jit = JITEngine(bytecode)
        jit.run("main", [1])
        assert jit.output == reference.output

    def test_jit_instrumentation(self):
        """Section 3.4: "The JIT translator can also insert the same
        instrumentation as the offline code generator"."""
        from repro.execution import JITEngine

        bytecode, _ = self._bytecode()
        jit = JITEngine(bytecode, instrument=True)
        jit.run("main", [0])
        counts = jit.profile.function_entry_counts()
        assert counts.get("main") == 1
        assert counts.get("helper_a") == 1
        # Never-materialized functions have no counters at all.
        assert "cold_path" not in counts

    def test_indirect_call_materializes(self):
        from repro.bitcode import write_bytecode
        from repro.execution import JITEngine

        module = compile_source("""
static int target(int x) { return x - 5; }
static int apply(int (*f)(int), int v) { return f(v); }
int main() { return apply(target, 47); }
""", "jit2")
        jit = JITEngine(write_bytecode(module, strip_names=False))
        assert jit.run("main") == 42
        assert jit.materialized("target")
