"""Tests over the synthetic SPEC-like benchmark suite: every program
compiles, runs deterministically, and optimization preserves its output.

(The Table 1 / Table 2 / Figure 5 *measurements* live under
``benchmarks/``; these are correctness gates.)
"""

import pytest

from repro.benchsuite import (
    BENCHMARKS, benchmark_info, benchmark_names, compile_benchmark,
    load_source,
)
from repro.core import verify_module
from repro.execution import Interpreter
from repro.frontend import compile_source

#: A couple of heavier programs get a higher step allowance.
STEP_LIMIT = 100_000_000

from functools import lru_cache


@lru_cache(maxsize=None)
def _optimized(name):
    return compile_benchmark(name)


@pytest.mark.parametrize("name", benchmark_names())
def test_compiles_and_verifies(name):
    module = compile_source(load_source(name), name)
    verify_module(module)
    assert module.instruction_count() > 100, "suite programs are not toys"


@pytest.mark.parametrize("name", benchmark_names())
def test_optimization_preserves_output(name):
    source = load_source(name)
    unoptimized = compile_source(source, name)
    raw = Interpreter(unoptimized, step_limit=STEP_LIMIT)
    expected = raw.run("main")

    optimized = _optimized(name)
    verify_module(optimized)
    cooked = Interpreter(optimized, step_limit=STEP_LIMIT)
    assert cooked.run("main") == expected
    assert cooked.output == raw.output
    assert cooked.steps < raw.steps, "optimization should reduce work"


@pytest.mark.parametrize("name", benchmark_names())
def test_deterministic(name):
    module = _optimized(name)
    first = Interpreter(module, step_limit=STEP_LIMIT)
    second = Interpreter(module, step_limit=STEP_LIMIT)
    assert first.run("main") == second.run("main")
    assert first.output == second.output


def test_suite_covers_table1():
    """Fifteen programs, one per SPEC CPU2000 C benchmark, in table order."""
    assert len(BENCHMARKS) == 15
    assert benchmark_names()[0] == "gzip"
    assert benchmark_names()[-1] == "twolf"
    info = benchmark_info("parser")
    assert info.spec_name == "197.parser"
    assert info.paper_typed_percent == 36.4


def test_sources_are_substantial():
    total_lines = sum(
        len(load_source(name).splitlines()) for name in benchmark_names()
    )
    assert total_lines > 2000, "the suite should be a real corpus"
