"""Tests for the IR verifier: every invariant has a test that breaks it."""

import pytest

from repro.core import (
    ConstantBool, ConstantInt, IRBuilder, Module, VerificationError,
    parse_function, types, verify_function, verify_module,
)
from repro.core.basicblock import BasicBlock
from repro.core.instructions import (
    BinaryOperator, BranchInst, Opcode, PhiNode, ReturnInst,
)


def _function(ret=types.INT, params=(types.INT,)):
    module = Module("v")
    return module.new_function(types.function(ret, list(params)), "f")


class TestStructure:
    def test_valid_function_passes(self):
        fn = parse_function("int %f(int %x) {\nentry:\n  ret int %x\n}")
        verify_function(fn)

    def test_empty_block_rejected(self):
        fn = _function()
        fn.append_block("entry")
        with pytest.raises(VerificationError, match="empty"):
            verify_function(fn)

    def test_missing_terminator_rejected(self):
        fn = _function()
        block = fn.append_block("entry")
        block.instructions.append(
            BinaryOperator(Opcode.ADD, fn.args[0], fn.args[0])
        )
        block.instructions[-1].parent = block
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(fn)

    def test_terminator_in_middle_rejected(self):
        fn = _function()
        block = fn.append_block("entry")
        for inst in (ReturnInst(fn.args[0]), ReturnInst(fn.args[0])):
            block.instructions.append(inst)
            inst.parent = block
        with pytest.raises(VerificationError, match="middle"):
            verify_function(fn)

    def test_branch_outside_function_rejected(self):
        fn = _function()
        other = _function()
        foreign = other.append_block("foreign")
        IRBuilder(foreign).ret(other.args[0])
        block = fn.append_block("entry")
        IRBuilder(block).br(foreign)
        with pytest.raises(VerificationError, match="outside"):
            verify_function(fn)

    def test_entry_with_predecessors_rejected(self):
        fn = _function()
        entry = fn.append_block("entry")
        IRBuilder(entry).br(entry)
        with pytest.raises(VerificationError, match="entry"):
            verify_function(fn)

    def test_declaration_not_verifiable(self):
        fn = _function()
        with pytest.raises(VerificationError, match="declaration"):
            verify_function(fn)


class TestTypesRules:
    def test_ret_type_mismatch(self):
        fn = _function(ret=types.LONG)
        IRBuilder(fn.append_block("entry")).ret(fn.args[0])
        with pytest.raises(VerificationError, match="ret"):
            verify_function(fn)

    def test_ret_value_in_void_function(self):
        fn = _function(ret=types.VOID)
        block = fn.append_block("entry")
        ret = ReturnInst(fn.args[0])
        block.instructions.append(ret)
        ret.parent = block
        with pytest.raises(VerificationError, match="void"):
            verify_function(fn)

    def test_missing_ret_value(self):
        fn = _function()
        block = fn.append_block("entry")
        ret = ReturnInst(None)
        block.instructions.append(ret)
        ret.parent = block
        with pytest.raises(VerificationError, match="non-void"):
            verify_function(fn)

    def test_hand_mutated_store_caught(self):
        fn = parse_function("""
void %f(int %x) {
entry:
  %slot = alloca int
  store int %x, int* %slot
  ret void
}
""")
        store = fn.entry_block.instructions[1]
        long_val = ConstantInt(types.LONG, 1)
        # Bypass the constructor check by poking the operand directly.
        store.set_operand(0, long_val)
        with pytest.raises(VerificationError, match="store"):
            verify_function(fn)


class TestPhiRules:
    def _diamond(self):
        fn = _function(params=(types.BOOL,))
        entry = fn.append_block("entry")
        left = fn.append_block("left")
        right = fn.append_block("right")
        join = fn.append_block("join")
        IRBuilder(entry).cond_br(fn.args[0], left, right)
        IRBuilder(left).br(join)
        IRBuilder(right).br(join)
        return fn, entry, left, right, join

    def test_valid_phi(self):
        fn, entry, left, right, join = self._diamond()
        builder = IRBuilder(join)
        phi = builder.phi(types.INT, "p")
        phi.add_incoming(ConstantInt(types.INT, 1), left)
        phi.add_incoming(ConstantInt(types.INT, 2), right)
        builder.ret(phi)
        verify_function(fn)

    def test_phi_missing_predecessor(self):
        fn, entry, left, right, join = self._diamond()
        builder = IRBuilder(join)
        phi = builder.phi(types.INT, "p")
        phi.add_incoming(ConstantInt(types.INT, 1), left)
        builder.ret(phi)
        with pytest.raises(VerificationError, match="predecessors"):
            verify_function(fn)

    def test_phi_extra_block(self):
        fn, entry, left, right, join = self._diamond()
        builder = IRBuilder(join)
        phi = builder.phi(types.INT, "p")
        phi.add_incoming(ConstantInt(types.INT, 1), left)
        phi.add_incoming(ConstantInt(types.INT, 2), right)
        phi.add_incoming(ConstantInt(types.INT, 3), entry)
        builder.ret(phi)
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_phi_after_non_phi(self):
        fn, entry, left, right, join = self._diamond()
        builder = IRBuilder(join)
        value = builder.add(ConstantInt(types.INT, 1),
                            ConstantInt(types.INT, 2), "v")
        phi = PhiNode(types.INT, "late")
        phi.add_incoming(ConstantInt(types.INT, 1), left)
        phi.add_incoming(ConstantInt(types.INT, 2), right)
        join.instructions.append(phi)
        phi.parent = join
        builder.position_at_end(join)
        builder.ret(value)
        with pytest.raises(VerificationError, match="phi after non-phi"):
            verify_function(fn)


class TestDominance:
    def test_use_before_def_in_other_branch(self):
        fn = _function(params=(types.BOOL,))
        entry = fn.append_block("entry")
        left = fn.append_block("left")
        right = fn.append_block("right")
        builder = IRBuilder(entry)
        builder.cond_br(fn.args[0], left, right)
        builder.position_at_end(left)
        value = builder.add(ConstantInt(types.INT, 1),
                            ConstantInt(types.INT, 1), "v")
        builder.ret(value)
        builder.position_at_end(right)
        # Illegal: 'v' is defined only on the left path.
        ret = ReturnInst(value)
        right.instructions.append(ret)
        ret.parent = right
        with pytest.raises(VerificationError, match="dominated"):
            verify_function(fn)

    def test_use_before_def_same_block(self):
        fn = _function()
        entry = fn.append_block("entry")
        first = BinaryOperator(Opcode.ADD, fn.args[0], fn.args[0], "a")
        second = BinaryOperator(Opcode.ADD, fn.args[0], fn.args[0], "b")
        # b uses a but is placed before it.
        second.set_operand(1, first)
        entry.instructions.append(second)
        second.parent = entry
        entry.instructions.append(first)
        first.parent = entry
        ret = ReturnInst(second)
        entry.instructions.append(ret)
        ret.parent = entry
        with pytest.raises(VerificationError, match="dominated"):
            verify_function(fn)

    def test_argument_of_other_function_rejected(self):
        fn = _function()
        other = _function()
        IRBuilder(fn.append_block("entry")).ret(other.args[0])
        with pytest.raises(VerificationError, match="argument"):
            verify_function(fn)

    def test_unreachable_block_uses_unconstrained(self):
        """Dominance is not enforced in unreachable code (the paper's
        compilers leave such code to the CFG cleaner)."""
        fn = parse_function("""
int %f(int %x) {
entry:
  ret int %x
dead:
  %v = add int %y, 1
  %y = add int %v, 1
  ret int %y
}
""")
        verify_function(fn)


class TestModuleVerifier:
    def test_module_with_bad_function(self):
        module = Module("m")
        fn = module.new_function(types.function(types.INT, []), "f")
        fn.append_block("entry")
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_declarations_are_skipped(self):
        module = Module("m")
        module.new_function(types.function(types.INT, []), "external_thing")
        verify_module(module)
