"""Tests for the IR verifier: every invariant has a test that breaks it."""

import pytest

from repro.core import (
    ConstantBool, ConstantInt, IRBuilder, Module, VerificationError,
    parse_function, types, verify_function, verify_module,
)
from repro.core.basicblock import BasicBlock
from repro.core.instructions import (
    BinaryOperator, BranchInst, Opcode, PhiNode, ReturnInst,
)


def _function(ret=types.INT, params=(types.INT,)):
    module = Module("v")
    return module.new_function(types.function(ret, list(params)), "f")


class TestStructure:
    def test_valid_function_passes(self):
        fn = parse_function("int %f(int %x) {\nentry:\n  ret int %x\n}")
        verify_function(fn)

    def test_empty_block_rejected(self):
        fn = _function()
        fn.append_block("entry")
        with pytest.raises(VerificationError, match="empty"):
            verify_function(fn)

    def test_missing_terminator_rejected(self):
        fn = _function()
        block = fn.append_block("entry")
        block.instructions.append(
            BinaryOperator(Opcode.ADD, fn.args[0], fn.args[0])
        )
        block.instructions[-1].parent = block
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(fn)

    def test_terminator_in_middle_rejected(self):
        fn = _function()
        block = fn.append_block("entry")
        for inst in (ReturnInst(fn.args[0]), ReturnInst(fn.args[0])):
            block.instructions.append(inst)
            inst.parent = block
        with pytest.raises(VerificationError, match="middle"):
            verify_function(fn)

    def test_branch_outside_function_rejected(self):
        fn = _function()
        other = _function()
        foreign = other.append_block("foreign")
        IRBuilder(foreign).ret(other.args[0])
        block = fn.append_block("entry")
        IRBuilder(block).br(foreign)
        with pytest.raises(VerificationError, match="outside"):
            verify_function(fn)

    def test_entry_with_predecessors_rejected(self):
        fn = _function()
        entry = fn.append_block("entry")
        IRBuilder(entry).br(entry)
        with pytest.raises(VerificationError, match="entry"):
            verify_function(fn)

    def test_declaration_not_verifiable(self):
        fn = _function()
        with pytest.raises(VerificationError, match="declaration"):
            verify_function(fn)


class TestTypesRules:
    def test_ret_type_mismatch(self):
        fn = _function(ret=types.LONG)
        IRBuilder(fn.append_block("entry")).ret(fn.args[0])
        with pytest.raises(VerificationError, match="ret"):
            verify_function(fn)

    def test_ret_value_in_void_function(self):
        fn = _function(ret=types.VOID)
        block = fn.append_block("entry")
        ret = ReturnInst(fn.args[0])
        block.instructions.append(ret)
        ret.parent = block
        with pytest.raises(VerificationError, match="void"):
            verify_function(fn)

    def test_missing_ret_value(self):
        fn = _function()
        block = fn.append_block("entry")
        ret = ReturnInst(None)
        block.instructions.append(ret)
        ret.parent = block
        with pytest.raises(VerificationError, match="non-void"):
            verify_function(fn)

    def test_hand_mutated_store_caught(self):
        fn = parse_function("""
void %f(int %x) {
entry:
  %slot = alloca int
  store int %x, int* %slot
  ret void
}
""")
        store = fn.entry_block.instructions[1]
        long_val = ConstantInt(types.LONG, 1)
        # Bypass the constructor check by poking the operand directly.
        store.set_operand(0, long_val)
        with pytest.raises(VerificationError, match="store"):
            verify_function(fn)

    def test_hand_mutated_load_caught(self):
        fn = parse_function("""
int %f() {
entry:
  %slot = alloca int
  %wide = alloca long
  %v = load int* %slot
  ret int %v
}
""")
        load = fn.entry_block.instructions[2]
        # Retarget the load at the long slot: pointee no longer matches.
        load.set_operand(0, fn.entry_block.instructions[1])
        with pytest.raises(VerificationError, match="load"):
            verify_function(fn)

    GEP_FN = """
int %f(long %i) {
entry:
  %a = alloca [4 x int]
  %p = getelementptr [4 x int]* %a, long 0, long %i
  %v = load int* %p
  ret int %v
}
"""

    def test_valid_gep_passes(self):
        verify_function(parse_function(self.GEP_FN))

    def test_hand_mutated_gep_nonpointer_base(self):
        fn = parse_function(self.GEP_FN)
        gep = fn.entry_block.instructions[1]
        gep.set_operand(0, ConstantInt(types.LONG, 0))
        with pytest.raises(VerificationError, match="not a pointer"):
            verify_function(fn)

    def test_hand_mutated_gep_noninteger_index(self):
        fn = parse_function(self.GEP_FN)
        gep = fn.entry_block.instructions[1]
        # Swap the array index for a pointer-typed value.
        gep.set_operand(2, fn.entry_block.instructions[0])
        with pytest.raises(VerificationError, match="index is not an integer"):
            verify_function(fn)

    def test_hand_mutated_gep_struct_index_not_constant(self):
        fn = parse_function("""
int %f(uint %i) {
entry:
  %a = alloca { int, bool }
  %p = getelementptr { int, bool }* %a, long 0, uint 0
  %v = load int* %p
  ret int %v
}
""")
        gep = fn.entry_block.instructions[1]
        # A variable struct field index makes the result type unknowable.
        gep.set_operand(2, fn.args[0])
        with pytest.raises(VerificationError, match="malformed getelementptr"):
            verify_function(fn)

    def test_hand_mutated_gep_stale_result_type(self):
        fn = parse_function(self.GEP_FN)
        entry = fn.entry_block
        builder = IRBuilder(entry)
        builder.position_before(entry.instructions[1])
        wide = builder.alloca(types.array(types.LONG, 4), name="w")
        gep = entry.instructions[2]
        # Point the GEP at [4 x long]: its int* result type is now stale.
        gep.set_operand(0, wide)
        with pytest.raises(VerificationError, match="result type"):
            verify_function(fn)

    def test_hand_mutated_call_argument_type(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %r = call int %f(int %x)
  ret int %r
}
""")
        call = fn.entry_block.instructions[0]
        call.set_operand(1, ConstantInt(types.LONG, 7))
        with pytest.raises(VerificationError, match="argument type"):
            verify_function(fn)

    def test_hand_mutated_call_arity(self):
        fn = parse_function("""
int %f(int %x) {
entry:
  %r = call int %f(int %x)
  ret int %r
}
""")
        call = fn.entry_block.instructions[0]
        # Drop the argument, leaving only the callee operand.
        call._pop_operands(1)
        with pytest.raises(VerificationError, match="args"):
            verify_function(fn)


class TestPhiRules:
    def _diamond(self):
        fn = _function(params=(types.BOOL,))
        entry = fn.append_block("entry")
        left = fn.append_block("left")
        right = fn.append_block("right")
        join = fn.append_block("join")
        IRBuilder(entry).cond_br(fn.args[0], left, right)
        IRBuilder(left).br(join)
        IRBuilder(right).br(join)
        return fn, entry, left, right, join

    def test_valid_phi(self):
        fn, entry, left, right, join = self._diamond()
        builder = IRBuilder(join)
        phi = builder.phi(types.INT, "p")
        phi.add_incoming(ConstantInt(types.INT, 1), left)
        phi.add_incoming(ConstantInt(types.INT, 2), right)
        builder.ret(phi)
        verify_function(fn)

    def test_phi_missing_predecessor(self):
        fn, entry, left, right, join = self._diamond()
        builder = IRBuilder(join)
        phi = builder.phi(types.INT, "p")
        phi.add_incoming(ConstantInt(types.INT, 1), left)
        builder.ret(phi)
        with pytest.raises(VerificationError, match="predecessors"):
            verify_function(fn)

    def test_phi_extra_block(self):
        fn, entry, left, right, join = self._diamond()
        builder = IRBuilder(join)
        phi = builder.phi(types.INT, "p")
        phi.add_incoming(ConstantInt(types.INT, 1), left)
        phi.add_incoming(ConstantInt(types.INT, 2), right)
        phi.add_incoming(ConstantInt(types.INT, 3), entry)
        builder.ret(phi)
        with pytest.raises(VerificationError):
            verify_function(fn)

    def test_phi_after_non_phi(self):
        fn, entry, left, right, join = self._diamond()
        builder = IRBuilder(join)
        value = builder.add(ConstantInt(types.INT, 1),
                            ConstantInt(types.INT, 2), "v")
        phi = PhiNode(types.INT, "late")
        phi.add_incoming(ConstantInt(types.INT, 1), left)
        phi.add_incoming(ConstantInt(types.INT, 2), right)
        join.instructions.append(phi)
        phi.parent = join
        builder.position_at_end(join)
        builder.ret(value)
        with pytest.raises(VerificationError, match="phi after non-phi"):
            verify_function(fn)


class TestDominance:
    def test_use_before_def_in_other_branch(self):
        fn = _function(params=(types.BOOL,))
        entry = fn.append_block("entry")
        left = fn.append_block("left")
        right = fn.append_block("right")
        builder = IRBuilder(entry)
        builder.cond_br(fn.args[0], left, right)
        builder.position_at_end(left)
        value = builder.add(ConstantInt(types.INT, 1),
                            ConstantInt(types.INT, 1), "v")
        builder.ret(value)
        builder.position_at_end(right)
        # Illegal: 'v' is defined only on the left path.
        ret = ReturnInst(value)
        right.instructions.append(ret)
        ret.parent = right
        with pytest.raises(VerificationError, match="dominated"):
            verify_function(fn)

    def test_use_before_def_same_block(self):
        fn = _function()
        entry = fn.append_block("entry")
        first = BinaryOperator(Opcode.ADD, fn.args[0], fn.args[0], "a")
        second = BinaryOperator(Opcode.ADD, fn.args[0], fn.args[0], "b")
        # b uses a but is placed before it.
        second.set_operand(1, first)
        entry.instructions.append(second)
        second.parent = entry
        entry.instructions.append(first)
        first.parent = entry
        ret = ReturnInst(second)
        entry.instructions.append(ret)
        ret.parent = entry
        with pytest.raises(VerificationError, match="dominated"):
            verify_function(fn)

    def test_argument_of_other_function_rejected(self):
        fn = _function()
        other = _function()
        IRBuilder(fn.append_block("entry")).ret(other.args[0])
        with pytest.raises(VerificationError, match="argument"):
            verify_function(fn)

    def test_unreachable_block_uses_unconstrained(self):
        """Dominance is not enforced in unreachable code (the paper's
        compilers leave such code to the CFG cleaner)."""
        fn = parse_function("""
int %f(int %x) {
entry:
  ret int %x
dead:
  %v = add int %y, 1
  %y = add int %v, 1
  ret int %y
}
""")
        verify_function(fn)


class TestModuleVerifier:
    def test_module_with_bad_function(self):
        module = Module("m")
        fn = module.new_function(types.function(types.INT, []), "f")
        fn.append_block("entry")
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_declarations_are_skipped(self):
        module = Module("m")
        module.new_function(types.function(types.INT, []), "external_thing")
        verify_module(module)
