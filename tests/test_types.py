"""Unit tests for the type system and data layout."""

import pytest

from repro.core import types
from repro.core.datalayout import DataLayout


class TestPrimitives:
    def test_keyword_table_is_complete(self):
        assert set(types.PRIMITIVES) == {
            "void", "bool", "sbyte", "ubyte", "short", "ushort", "int",
            "uint", "long", "ulong", "float", "double", "label",
        }

    def test_integer_names(self):
        assert str(types.SBYTE) == "sbyte"
        assert str(types.UINT) == "uint"
        assert str(types.LONG) == "long"

    def test_integer_ranges(self):
        assert types.SBYTE.min_value == -128
        assert types.SBYTE.max_value == 127
        assert types.UBYTE.min_value == 0
        assert types.UBYTE.max_value == 255
        assert types.LONG.max_value == 2**63 - 1

    def test_wrap_signed(self):
        assert types.SBYTE.wrap(128) == -128
        assert types.SBYTE.wrap(-129) == 127
        assert types.INT.wrap(2**31) == -(2**31)

    def test_wrap_unsigned(self):
        assert types.UBYTE.wrap(256) == 0
        assert types.UBYTE.wrap(-1) == 255

    def test_classification_flags(self):
        assert types.VOID.is_void and not types.VOID.is_first_class
        assert types.BOOL.is_integral and not types.BOOL.is_arithmetic
        assert types.INT.is_arithmetic and types.INT.is_integral
        assert types.DOUBLE.is_arithmetic and not types.DOUBLE.is_integral
        assert types.LABEL.is_label

    def test_integer_lookup(self):
        assert types.integer(32, True) is types.INT
        assert types.integer(8, False) is types.UBYTE
        with pytest.raises(ValueError):
            types.integer(24, True)


class TestDerivedTypes:
    def test_pointer_uniquing(self):
        assert types.pointer(types.INT) is types.pointer(types.INT)
        assert types.pointer(types.INT) is not types.pointer(types.UINT)

    def test_pointer_to_void_rejected(self):
        with pytest.raises(ValueError):
            types.PointerType(types.VOID)

    def test_array_uniquing(self):
        assert types.array(types.INT, 4) is types.array(types.INT, 4)
        assert types.array(types.INT, 4) is not types.array(types.INT, 5)

    def test_array_str(self):
        assert str(types.array(types.SBYTE, 10)) == "[10 x sbyte]"

    def test_negative_array_count_rejected(self):
        with pytest.raises(ValueError):
            types.array(types.INT, -1)

    def test_struct_uniquing(self):
        a = types.struct([types.INT, types.DOUBLE])
        b = types.struct([types.INT, types.DOUBLE])
        assert a is b
        assert a is not types.struct([types.DOUBLE, types.INT])

    def test_struct_str(self):
        assert str(types.struct([types.INT, types.INT])) == "{ int, int }"

    def test_named_struct_not_uniqued(self):
        a = types.named_struct("node", [types.INT])
        b = types.named_struct("node", [types.INT])
        assert a is not b

    def test_named_struct_recursion(self):
        node = types.named_struct("list")
        assert node.is_opaque
        node.set_body([types.INT, types.pointer(node)])
        assert not node.is_opaque
        assert node.fields[1].pointee is node

    def test_named_struct_body_set_once(self):
        node = types.named_struct("once", [types.INT])
        with pytest.raises(ValueError):
            node.set_body([types.INT])

    def test_opaque_struct_field_access_raises(self):
        opaque = types.named_struct("op")
        with pytest.raises(ValueError):
            _ = opaque.fields

    def test_function_type(self):
        fn = types.function(types.INT, [types.INT, types.DOUBLE])
        assert fn.return_type is types.INT
        assert fn.params == (types.INT, types.DOUBLE)
        assert not fn.is_vararg
        assert str(fn) == "int (int, double)"

    def test_vararg_function_str(self):
        fn = types.function(types.INT, [types.pointer(types.SBYTE)], True)
        assert str(fn) == "int (sbyte*, ...)"

    def test_function_uniquing(self):
        a = types.function(types.VOID, [types.INT])
        b = types.function(types.VOID, [types.INT])
        assert a is b
        assert a is not types.function(types.VOID, [types.INT], True)

    def test_element_at(self):
        struct = types.struct([types.INT, types.DOUBLE])
        assert types.element_at(struct, 1) is types.DOUBLE
        array = types.array(types.SBYTE, 3)
        assert types.element_at(array, 2) is types.SBYTE
        with pytest.raises(IndexError):
            types.element_at(struct, 5)
        with pytest.raises(TypeError):
            types.element_at(types.INT, 0)

    def test_lossless_convertibility(self):
        assert types.is_losslessly_convertible(types.INT, types.UINT)
        assert not types.is_losslessly_convertible(types.INT, types.LONG)
        assert types.is_losslessly_convertible(
            types.pointer(types.INT), types.pointer(types.SBYTE)
        )


class TestDataLayout:
    def setup_method(self):
        self.layout = DataLayout()

    def test_primitive_sizes(self):
        assert self.layout.size_of(types.BOOL) == 1
        assert self.layout.size_of(types.SBYTE) == 1
        assert self.layout.size_of(types.SHORT) == 2
        assert self.layout.size_of(types.INT) == 4
        assert self.layout.size_of(types.LONG) == 8
        assert self.layout.size_of(types.FLOAT) == 4
        assert self.layout.size_of(types.DOUBLE) == 8

    def test_pointer_size(self):
        assert self.layout.size_of(types.pointer(types.INT)) == 8
        assert DataLayout(pointer_size=4).size_of(types.pointer(types.INT)) == 4

    def test_array_size(self):
        assert self.layout.size_of(types.array(types.INT, 10)) == 40

    def test_struct_padding(self):
        # { sbyte, int } pads the byte to 4-aligned int.
        struct = types.struct([types.SBYTE, types.INT])
        assert self.layout.field_offset(struct, 0) == 0
        assert self.layout.field_offset(struct, 1) == 4
        assert self.layout.size_of(struct) == 8

    def test_struct_tail_padding(self):
        # { long, sbyte } pads to 16 so arrays stay aligned.
        struct = types.struct([types.LONG, types.SBYTE])
        assert self.layout.size_of(struct) == 16

    def test_nested_struct_offsets(self):
        inner = types.struct([types.INT, types.INT])
        outer = types.struct([types.SBYTE, inner, types.SBYTE])
        assert self.layout.field_offset(outer, 1) == 4
        assert self.layout.field_offset(outer, 2) == 12

    def test_alignment(self):
        assert self.layout.align_of(types.DOUBLE) == 8
        assert self.layout.align_of(types.array(types.SHORT, 7)) == 2
        struct = types.struct([types.SBYTE, types.DOUBLE])
        assert self.layout.align_of(struct) == 8

    def test_element_offset_array(self):
        array = types.array(types.INT, 8)
        assert self.layout.element_offset(array, 3) == 12

    def test_intptr_type(self):
        assert self.layout.intptr_type is types.ULONG
        assert DataLayout(pointer_size=4).intptr_type is types.UINT

    def test_bad_pointer_size(self):
        with pytest.raises(ValueError):
            DataLayout(pointer_size=3)

    def test_empty_struct(self):
        assert self.layout.size_of(types.struct([])) == 0
