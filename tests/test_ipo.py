"""Tests for the interprocedural (link-time) passes."""

import pytest

from repro.core import (
    ConstantInt, IRBuilder, Module, parse_module, print_module, types,
    verify_module,
)
from repro.core.instructions import CallInst, InvokeInst, Opcode
from repro.core.module import Function, Linkage
from repro.execution import Interpreter
from repro.transforms.ipo import (
    DeadArgumentElimination, DeadGlobalElimination, FunctionInlining,
    Internalize, IPConstantPropagation, PruneExceptionHandlers,
)
from repro.transforms.ipo.inline import inline_call_site


class TestInlining:
    def test_simple_inline(self):
        module = parse_module("""
internal int %helper(int %x) {
entry:
  %r = mul int %x, 3
  ret int %r
}
int %main() {
entry:
  %v = call int %helper(int 7)
  ret int %v
}
""")
        expected = Interpreter(module).run("main")
        assert FunctionInlining().run_on_module(module)
        verify_module(module)
        main = module.functions["main"]
        assert not any(isinstance(i, CallInst) for i in main.instructions())
        assert Interpreter(module).run("main") == expected == 21

    def test_unused_internal_callee_deleted(self):
        module = parse_module("""
internal int %helper(int %x) {
entry:
  ret int %x
}
int %main() {
entry:
  %v = call int %helper(int 1)
  ret int %v
}
""")
        inliner = FunctionInlining()
        inliner.run_on_module(module)
        assert "helper" not in module.functions
        assert inliner.stats.functions_deleted == 1

    def test_multiple_returns_become_phi(self):
        module = parse_module("""
internal int %pick(bool %c) {
entry:
  br bool %c, label %a, label %b
a:
  ret int 10
b:
  ret int 20
}
int %main(bool %c) {
entry:
  %v = call int %pick(bool %c)
  ret int %v
}
""")
        FunctionInlining().run_on_module(module)
        verify_module(module)
        assert Interpreter(module).run("main", [True]) == 10
        assert Interpreter(module).run("main", [False]) == 20

    def test_recursive_not_inlined(self):
        module = parse_module("""
int %loop(int %n) {
entry:
  %z = seteq int %n, 0
  br bool %z, label %stop, label %go
stop:
  ret int 0
go:
  %n1 = sub int %n, 1
  %r = call int %loop(int %n1)
  ret int %r
}
""")
        FunctionInlining().run_on_module(module)
        verify_module(module)
        fn = module.functions["loop"]
        assert any(isinstance(i, CallInst) for i in fn.instructions())

    def test_large_callee_skipped(self):
        lines = "\n".join(f"  %v{i} = add int %x, {i}" for i in range(60))
        module = parse_module(f"""
int %big(int %x) {{
entry:
{lines}
  ret int %v59
}}
int %main() {{
entry:
  %v = call int %big(int 1)
  ret int %v
}}
""")
        FunctionInlining(threshold=40, delete_unused=False).run_on_module(module)
        main = module.functions["main"]
        assert any(isinstance(i, CallInst) for i in main.instructions())

    def test_inline_at_invoke_site(self):
        module = parse_module("""
internal void %may_throw(int %x) {
entry:
  %bad = setgt int %x, 10
  br bool %bad, label %boom, label %fine
boom:
  unwind
fine:
  ret void
}
int %main(int %x) {
entry:
  invoke void %may_throw(int %x) to label %ok unwind to label %caught
ok:
  ret int 0
caught:
  ret int 1
}
""")
        expected_ok = Interpreter(module).run("main", [1])
        expected_caught = Interpreter(module).run("main", [99])
        FunctionInlining().run_on_module(module)
        verify_module(module)
        main = module.functions["main"]
        # The callee's unwind became a direct branch: no unwind remains.
        assert not any(i.opcode == Opcode.UNWIND for i in main.instructions())
        assert Interpreter(module).run("main", [1]) == expected_ok == 0
        assert Interpreter(module).run("main", [99]) == expected_caught == 1

    def test_inline_call_site_rejects_indirect(self):
        module = parse_module("""
int %target(int %x) {
entry:
  ret int %x
}
%fp = global int (int)* %target
int %main() {
entry:
  %f = load int (int)** %fp
  %v = call int (int)* %f(int 3)
  ret int %v
}
""")
        call = [i for i in module.functions["main"].instructions()
                if isinstance(i, CallInst)][0]
        assert not inline_call_site(call)


class TestDeadGlobalElimination:
    def test_unused_internal_global_removed(self):
        module = parse_module("""
%used = internal global int 1
%unused = internal global int 2
int %main() {
entry:
  %v = load int* %used
  ret int %v
}
""")
        dge = DeadGlobalElimination()
        assert dge.run_on_module(module)
        assert "unused" not in module.globals
        assert "used" in module.globals
        assert dge.stats.globals_deleted == 1

    def test_dead_cycle_removed(self):
        """The "aggressive" part: two dead functions calling each other."""
        module = parse_module("""
internal int %ping(int %x) {
entry:
  %r = call int %pong(int %x)
  ret int %r
}
internal int %pong(int %x) {
entry:
  %r = call int %ping(int %x)
  ret int %r
}
int %main() {
entry:
  ret int 0
}
""")
        dge = DeadGlobalElimination()
        assert dge.run_on_module(module)
        assert dge.stats.functions_deleted == 2
        assert set(module.functions) == {"main"}

    def test_external_symbols_kept(self):
        module = parse_module("""
%api = global int 5
int %exported(int %x) {
entry:
  ret int %x
}
""")
        assert not DeadGlobalElimination().run_on_module(module)

    def test_global_referenced_by_initializer_kept(self):
        module = parse_module("""
%target = internal global int 3
%table = global int* getelementptr (int* %target, long 0)
""")
        assert not DeadGlobalElimination().run_on_module(module)
        assert "target" in module.globals


class TestDeadArgumentElimination:
    def test_unused_argument_removed(self):
        module = parse_module("""
internal int %f(int %used, int %unused) {
entry:
  ret int %used
}
int %main() {
entry:
  %v = call int %f(int 3, int 999)
  ret int %v
}
""")
        expected = Interpreter(module).run("main")
        dae = DeadArgumentElimination()
        assert dae.run_on_module(module)
        verify_module(module)
        assert dae.stats.arguments_deleted == 1
        assert len(module.functions["f"].args) == 1
        assert Interpreter(module).run("main") == expected == 3

    def test_unused_return_demoted_to_void(self):
        module = parse_module("""
internal int %noisy(int* %out) {
entry:
  store int 1, int* %out
  ret int 42
}
int %main() {
entry:
  %slot = alloca int
  %ignored = call int %noisy(int* %slot)
  %v = load int* %slot
  ret int %v
}
""")
        dae = DeadArgumentElimination()
        assert dae.run_on_module(module)
        verify_module(module)
        assert dae.stats.returns_deleted == 1
        assert module.functions["noisy"].return_type.is_void
        assert Interpreter(module).run("main") == 1

    def test_external_function_untouched(self):
        module = parse_module("""
int %api(int %maybe_used_elsewhere) {
entry:
  ret int 0
}
""")
        assert not DeadArgumentElimination().run_on_module(module)

    def test_address_taken_untouched(self):
        module = parse_module("""
internal int %cb(int %x) {
entry:
  ret int 0
}
%table = global int (int)* %cb
""")
        assert not DeadArgumentElimination().run_on_module(module)


class TestIPConstantPropagation:
    def test_common_constant_argument(self):
        module = parse_module("""
internal int %scaled(int %x, int %factor) {
entry:
  %r = mul int %x, %factor
  ret int %r
}
int %main(int %a, int %b) {
entry:
  %u = call int %scaled(int %a, int 10)
  %v = call int %scaled(int %b, int 10)
  %s = add int %u, %v
  ret int %s
}
""")
        assert IPConstantPropagation().run_on_module(module)
        scaled = module.functions["scaled"]
        assert not scaled.args[1].is_used
        assert Interpreter(module).run("main", [1, 2]) == 30

    def test_differing_arguments_kept(self):
        module = parse_module("""
internal int %id(int %x) {
entry:
  ret int %x
}
int %main() {
entry:
  %a = call int %id(int 1)
  %b = call int %id(int 2)
  %s = add int %a, %b
  ret int %s
}
""")
        # The *argument* differs, but the return is not constant either;
        # nothing should change.
        assert not IPConstantPropagation().run_on_module(module)

    def test_constant_return_propagates(self):
        module = parse_module("""
internal int %answer() {
entry:
  ret int 42
}
int %main() {
entry:
  %v = call int %answer()
  %w = add int %v, 1
  ret int %w
}
""")
        assert IPConstantPropagation().run_on_module(module)
        assert Interpreter(module).run("main") == 43


class TestInternalize:
    def test_marks_everything_but_main(self):
        module = parse_module("""
%data = global int 1
int %helper(int %x) {
entry:
  ret int %x
}
int %main() {
entry:
  ret int 0
}
""")
        assert Internalize(("main",)).run_on_module(module)
        assert module.functions["helper"].linkage == Linkage.INTERNAL
        assert module.globals["data"].linkage == Linkage.INTERNAL
        assert module.functions["main"].linkage == Linkage.EXTERNAL

    def test_declarations_untouched(self):
        module = parse_module("declare int %printf(sbyte* %fmt, ...)\n")
        assert not Internalize(("main",)).run_on_module(module)
        assert module.functions["printf"].linkage == Linkage.EXTERNAL


class TestPruneEH:
    def test_invoke_of_nounwind_demoted(self):
        module = parse_module("""
internal int %calm(int %x) {
entry:
  ret int %x
}
int %main() {
entry:
  %v = invoke int %calm(int 3) to label %ok unwind to label %bad
ok:
  ret int %v
bad:
  ret int -1
}
""")
        prune = PruneExceptionHandlers()
        assert prune.run_on_module(module)
        verify_module(module)
        assert prune.stats.invokes_demoted == 1
        main = module.functions["main"]
        assert not any(isinstance(i, InvokeInst) for i in main.instructions())
        assert Interpreter(module).run("main") == 3

    def test_invoke_of_thrower_kept(self):
        module = parse_module("""
internal void %angry() {
entry:
  unwind
}
int %main() {
entry:
  invoke void %angry() to label %ok unwind to label %bad
ok:
  ret int 0
bad:
  ret int 1
}
""")
        PruneExceptionHandlers().run_on_module(module)
        main = module.functions["main"]
        assert any(isinstance(i, InvokeInst) for i in main.instructions())
        assert Interpreter(module).run("main") == 1

    def test_transitive_unwind_tracked(self):
        module = parse_module("""
internal void %inner() {
entry:
  unwind
}
internal void %outer() {
entry:
  call void %inner()
  ret void
}
int %main() {
entry:
  invoke void %outer() to label %ok unwind to label %bad
ok:
  ret int 0
bad:
  ret int 1
}
""")
        PruneExceptionHandlers().run_on_module(module)
        main = module.functions["main"]
        assert any(isinstance(i, InvokeInst) for i in main.instructions())

    def test_unknown_external_assumed_throwing(self):
        module = parse_module("""
declare void %mystery()
int %main() {
entry:
  invoke void %mystery() to label %ok unwind to label %bad
ok:
  ret int 0
bad:
  ret int 1
}
""")
        assert not PruneExceptionHandlers().run_on_module(module)
