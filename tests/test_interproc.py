"""Tests for the whole-program (interprocedural) lint layer.

Covers the summary algebra (JSON round-trip, recursive fixpoints that
never claim optimistically, sparse solving on irreducible def-use
webs), the golden cross-TU bug suite — each bug is caught by
``--whole-program`` and provably missed by per-TU lint — the
deterministic multi-file output contract (stable order, dedupe, JSON
format, exit codes), the summary sidecar cache (warm runs recompute
only changed TUs with byte-identical diagnostics), and the
interprocedural bounds advisor's fix-it suppression.
"""

import json

import pytest

from repro.core import parse_module
from repro.driver import BytecodeCache, LifelongSession, lint_whole_program
from repro.frontend import compile_source
from repro.sanalysis import (
    Diagnostic, Severity, dedupe, run_checkers, run_whole_program,
    solve_sparse, stable_order,
)
from repro.sanalysis.checkers import (
    NULL_MAYBE, NULL_NONNULL, NULL_NULL, NULL_TOP, _Nullness,
)
from repro.sanalysis.interproc import (
    ModuleAnalysisSummaries, ProgramSummaries, range_proves_in_bounds,
    value_range,
)
from repro.tools import lc_lint


def _wp(units, checks=None):
    """run_whole_program over (name, LLVM-IR-text) pairs."""
    return run_whole_program(
        [(name, parse_module(text)) for name, text in units], checks)


def _renders(result):
    return [d.render() for d in result.diagnostics]


# ---------------------------------------------------------------------------
# Summary computation and composition
# ---------------------------------------------------------------------------

NULL_LIB = """
int* %find(int %key) {
entry:
  ret int* null
}
"""

NULL_MAIN = """
declare int* %find(int %key)

int %main() {
entry:
  %p = call int* %find(int 7)
  %v = load int* %p
  ret int %v
}
"""


class TestSummaries:
    def test_json_roundtrip_is_exact(self):
        module = parse_module(NULL_LIB + NULL_MAIN.replace(
            "declare int* %find(int %key)", ""))
        table = ModuleAnalysisSummaries.compute(module)
        text = table.to_json()
        again = ModuleAnalysisSummaries.from_json(text)
        assert again.to_json() == text

    def test_stale_format_rejected(self):
        table = ModuleAnalysisSummaries.compute(parse_module(NULL_LIB))
        blob = json.loads(table.to_json())
        blob["format"] = 999
        with pytest.raises(ValueError):
            ModuleAnalysisSummaries.from_json(json.dumps(blob))

    def test_self_recursion_never_claims_optimistically(self):
        # f returns its own recursive result: the fixpoint must settle
        # at "no evidence", not at an optimistic nonnull claim.
        module = parse_module("""
int* %f(int* %p) {
entry:
  %r = call int* %f(int* %p)
  ret int* %r
}
""")
        program = ProgramSummaries(
            [("tu", ModuleAnalysisSummaries.compute(module))])
        resolved = program.resolved_for(0, "f")
        assert resolved.return_null == NULL_TOP
        assert not resolved.returns_fresh

    def test_mutual_recursion_converges_without_nonnull_claim(self):
        # even/odd-style mutual recursion where only one path produces
        # a real allocation: the meet over paths must not be nonnull.
        module = parse_module("""
int* %even(int %n) {
entry:
  %stop = seteq int %n, 0
  br bool %stop, label %base, label %rec
base:
  ret int* null
rec:
  %m = sub int %n, 1
  %r = call int* %odd(int %m)
  ret int* %r
}

int* %odd(int %n) {
entry:
  %m = sub int %n, 1
  %r = call int* %even(int %m)
  ret int* %r
}
""")
        program = ProgramSummaries(
            [("tu", ModuleAnalysisSummaries.compute(module))])
        for name in ("even", "odd"):
            resolved = program.resolved_for(0, name)
            assert resolved.return_null != NULL_NONNULL
        stats = program.statistics()
        assert stats["ipa-largest-scc"] == 2

    def test_sparse_nullness_on_irreducible_cfg(self):
        # A loop entered at two points; the phi web has a cycle, so the
        # sparse solver must iterate to a sound fixpoint rather than
        # finish in one def-use sweep.
        module = parse_module("""
int* %f(bool %c, int* %q) {
entry:
  br bool %c, label %b1, label %b2
b1:
  %p1 = phi int* [ %q, %entry ], [ %p2, %b2 ]
  br label %b2
b2:
  %p2 = phi int* [ null, %entry ], [ %p1, %b1 ]
  br bool %c, label %b1, label %exit
exit:
  ret int* %p2
}
""")
        function = module.functions["f"]
        result = solve_sparse(_Nullness(), function)
        blocks = {b.name: b for b in function.blocks}
        p1 = blocks["b1"].instructions[0]
        p2 = blocks["b2"].instructions[0]
        # null flows around the cycle: both phis must admit it.
        assert result[p2] in (NULL_NULL, NULL_MAYBE)
        assert result[p1] in (NULL_NULL, NULL_MAYBE)
        assert result.iterations > 1


# ---------------------------------------------------------------------------
# The golden cross-TU bug suite: whole-program catches, per-TU misses
# ---------------------------------------------------------------------------

class TestCrossTUBugs:
    def _per_tu_clean(self, units, checker):
        for _, text in units:
            diags = run_checkers(parse_module(text))
            assert not any(d.checker == checker for d in diags)

    def test_null_return_dereferenced_in_other_tu(self):
        units = [("lib.ll", NULL_LIB), ("main.ll", NULL_MAIN)]
        result = _wp(units)
        errors = [d for d in result.diagnostics
                  if d.checker == "ipa-null-deref" and d.is_error]
        assert len(errors) == 1
        assert errors[0].file == "main.ll"
        # ... while neither TU alone shows the bug.
        self._per_tu_clean(units, "null-deref")

    def test_null_argument_to_dereferencing_callee(self):
        units = [
            ("sink.ll", """
int %read(int* %p) {
entry:
  %v = load int* %p
  ret int %v
}
"""),
            ("main.ll", """
declare int %read(int* %p)

int %main() {
entry:
  %v = call int %read(int* null)
  ret int %v
}
"""),
        ]
        result = _wp(units)
        errors = [d for d in result.diagnostics
                  if d.checker == "ipa-null-deref" and d.is_error]
        assert errors and errors[0].file == "main.ll"
        self._per_tu_clean(units, "null-deref")

    LEAK_LIB = """
int* %make_buffer() {
entry:
  %m = malloc int, uint 16
  ret int* %m
}
"""

    def test_leak_through_allocating_helper(self):
        units = [
            ("lib.ll", self.LEAK_LIB),
            ("use.ll", """
declare int* %make_buffer()

int %consume() {
entry:
  %p = call int* %make_buffer()
  %v = load int* %p
  ret int %v
}
"""),
        ]
        result = _wp(units)
        leaks = [d for d in result.diagnostics if d.checker == "ipa-memleak"]
        assert len(leaks) == 1
        assert leaks[0].severity == Severity.WARNING
        assert leaks[0].file == "use.ll"
        self._per_tu_clean(units, "memleak")

    def test_no_leak_when_caller_frees(self):
        units = [
            ("lib.ll", self.LEAK_LIB),
            ("use.ll", """
declare int* %make_buffer()

int %consume() {
entry:
  %p = call int* %make_buffer()
  %v = load int* %p
  free int* %p
  ret int %v
}
"""),
        ]
        result = _wp(units)
        assert not [d for d in result.diagnostics
                    if d.checker == "ipa-memleak"]

    def test_use_and_double_free_across_call(self):
        units = [
            ("lib.ll", """
void %release(int* %p) {
entry:
  free int* %p
  ret void
}
"""),
            ("main.ll", """
declare void %release(int* %p)

int %main() {
entry:
  %m = malloc int
  call void %release(int* %m)
  %v = load int* %m
  free int* %m
  ret int %v
}
"""),
        ]
        result = _wp(units)
        uaf = [d for d in result.diagnostics
               if d.checker == "ipa-use-after-free"]
        messages = " / ".join(d.message for d in uaf)
        assert any(d.is_error for d in uaf)
        assert "free" in messages
        assert all(d.file == "main.ll" for d in uaf)
        self._per_tu_clean(units, "use-after-free")

    def test_taint_flows_through_returning_helper(self):
        units = [
            ("lib.ll", """
int %ident(int %x) {
entry:
  ret int %x
}
"""),
            ("main.ll", """
declare int %ident(int %x)

int %main(int %argc) {
entry:
  %table = alloca [8 x int]
  %i = call int %ident(int %argc)
  %slot = getelementptr [8 x int]* %table, long 0, int %i
  %v = load int* %slot
  ret int %v
}
"""),
        ]
        result = _wp(units, ["ipa-taint"])
        taints = [d for d in result.diagnostics if d.checker == "ipa-taint"]
        assert taints and taints[0].file == "main.ll"
        # A sanitizing mask on the helper's return kills the finding.
        masked = units[0][1].replace(
            "  ret int %x", "  %m = and int %x, 7\n  ret int %m")
        clean = _wp([("lib.ll", masked), units[1]], ["ipa-taint"])
        assert not [d for d in clean.diagnostics
                    if d.checker == "ipa-taint"]

    def test_diagnostics_are_deterministically_ordered(self):
        units = [
            ("b.ll", NULL_MAIN.replace("%main", "%use_b")),
            ("a.ll", NULL_MAIN.replace("%main", "%use_a")),
            ("lib.ll", NULL_LIB),
        ]
        result = _wp(units)
        files = [d.file for d in result.diagnostics]
        assert files == sorted(files)
        # Repeat runs produce the identical rendering.
        assert _renders(_wp(units)) == _renders(result)


# ---------------------------------------------------------------------------
# Diagnostic ordering and dedupe primitives
# ---------------------------------------------------------------------------

class TestOutputContract:
    def _diag(self, file, line, checker="c", message="m",
              severity=Severity.WARNING):
        return Diagnostic(checker=checker, severity=severity,
                          message=message, line=line, file=file)

    def test_stable_order_sorts_by_file_then_line(self):
        diags = [self._diag("b.lc", 1), self._diag("a.lc", 9),
                 self._diag("a.lc", 2)]
        ordered = stable_order(diags)
        assert [(d.file, d.line) for d in ordered] == [
            ("a.lc", 2), ("a.lc", 9), ("b.lc", 1)]

    def test_dedupe_drops_linked_copies(self):
        # The same finding surfacing from two linked views differs only
        # in the file attribute; dedupe must collapse it.
        a = self._diag("a.lc", 4, message="dup")
        b = self._diag("b.lc", 4, message="dup")
        c = self._diag("b.lc", 4, message="other")
        assert len(dedupe([a, b, c])) == 2

    def test_to_dict_shape(self):
        record = self._diag("a.lc", 3).to_dict()
        assert record["file"] == "a.lc"
        assert record["line"] == 3
        assert record["severity"] == "warning"


# ---------------------------------------------------------------------------
# The lc-lint CLI: --whole-program, --format=json, exit codes
# ---------------------------------------------------------------------------

LC_NULL_LIB = """
int *find(int key) {
  return (int *)0;
}
"""

LC_NULL_MAIN = """
extern int *find(int key);
int main() {
  int *p = find(7);
  return *p;
}
"""


@pytest.fixture
def null_pair(tmp_path):
    lib = tmp_path / "lib.lc"
    main = tmp_path / "main.lc"
    lib.write_text(LC_NULL_LIB)
    main.write_text(LC_NULL_MAIN)
    return str(lib), str(main)


class TestLintCLI:
    def test_whole_program_catches_what_per_tu_misses(self, null_pair,
                                                      capsys):
        lib, main = null_pair
        assert lc_lint([lib, main, "--checks", "null-deref"]) == 0
        capsys.readouterr()
        assert lc_lint([lib, main, "--whole-program",
                        "--checks", "ipa-null-deref"]) == 1
        out = capsys.readouterr().out
        assert f"{main}:5: error:" in out and "[ipa-null-deref]" in out

    def test_json_format(self, null_pair, capsys):
        lib, main = null_pair
        assert lc_lint([lib, main, "--whole-program", "--format=json",
                        "--checks", "ipa-null-deref"]) == 1
        captured = capsys.readouterr()
        records = [json.loads(line) for line in
                   captured.out.strip().splitlines()]
        assert {r["checker"] for r in records} >= {"ipa-null-deref"}
        assert all(set(r) == {"file", "line", "checker", "severity",
                              "message", "function", "block", "fixit"}
                   for r in records)
        # JSON mode emits records only — no human summary line.
        assert "error(s)" not in captured.err

    def test_max_errors_truncates_output(self, tmp_path, capsys):
        lib = tmp_path / "lib.lc"
        lib.write_text(LC_NULL_LIB)
        texts = []
        for name in ("one", "two", "three"):
            tu = tmp_path / f"{name}.lc"
            tu.write_text(LC_NULL_MAIN.replace("main", f"use_{name}"))
            texts.append(str(tu))
        assert lc_lint([str(lib)] + texts + ["--whole-program",
                       "--checks", "ipa-null-deref",
                       "--max-errors", "1"]) == 1
        captured = capsys.readouterr()
        assert captured.out.count("error:") == 1
        assert "stopping after 1" in captured.err

    def test_werror_single_dash_alias(self, tmp_path, capsys):
        source = tmp_path / "dead.lc"
        source.write_text("""
int main() {
  int x = 1;
  x = 2;
  return x;
}
""")
        assert lc_lint([str(source)]) == 0
        capsys.readouterr()
        assert lc_lint([str(source), "-Werror"]) == 1

    def test_ipa_checker_requires_whole_program(self, null_pair):
        lib, main = null_pair
        with pytest.raises(SystemExit):
            lc_lint([lib, main, "--checks", "ipa-null-deref"])

    def test_missing_input_is_usage_error(self, tmp_path):
        assert lc_lint([str(tmp_path / "nope.lc")]) == 2

    def test_list_checks_includes_ipa_suite(self, capsys):
        assert lc_lint(["--list-checks"]) == 0
        out = capsys.readouterr().out
        for name in ("ipa-null-deref", "ipa-memleak", "ipa-use-after-free",
                     "ipa-taint"):
            assert name in out


# ---------------------------------------------------------------------------
# Incremental re-lint through the summary sidecar cache
# ---------------------------------------------------------------------------

class TestIncrementalLint:
    def test_warm_run_recomputes_nothing_and_matches_cold(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        sources = [LC_NULL_LIB, LC_NULL_MAIN]
        cold = lint_whole_program(sources, cache=cache)
        assert cold.computed_scopes == [0, 1]
        warm = lint_whole_program(sources, cache=cache)
        assert warm.computed_scopes == []
        assert warm.statistics()["ipa-summaries-cached"] == 2
        assert _renders(warm) == _renders(cold)
        assert cache.summary_hits == 2

    def test_editing_one_tu_recomputes_only_it(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        sources = [LC_NULL_LIB, LC_NULL_MAIN]
        lint_whole_program(sources, cache=cache)
        edited = [LC_NULL_LIB, LC_NULL_MAIN + "\nint unrelated() "
                  "{\n  return 3;\n}\n"]
        again = lint_whole_program(edited, cache=cache)
        assert again.computed_scopes == [1]
        # The unchanged TU's findings are still reported: checking
        # always sweeps every unit, only summarization is skipped.
        assert any(d.checker == "ipa-null-deref" and d.is_error
                   for d in again.diagnostics)

    def test_corrupt_sidecar_is_recomputed(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        sources = [LC_NULL_LIB]
        lint_whole_program(sources, cache=cache)
        key = cache.key(LC_NULL_LIB, 2, tag="ipa-summary")
        cache.store_text(key, "{not json")
        result = lint_whole_program(sources, cache=cache)
        assert result.computed_scopes == [0]

    def test_lifelong_session_lint(self, tmp_path):
        cache = BytecodeCache(str(tmp_path))
        session = LifelongSession([LC_NULL_LIB, LC_NULL_MAIN],
                                  cache=cache)
        result = session.lint()
        assert any(d.checker == "ipa-null-deref"
                   for d in result.diagnostics)
        # The session already compiled both TUs through the same cache,
        # so linting adds summary computation but no recompilation.
        warm = session.lint()
        assert warm.computed_scopes == []


# ---------------------------------------------------------------------------
# The interprocedural bounds advisor
# ---------------------------------------------------------------------------

class TestBoundsAdvisor:
    MASKED = """
int %mask(int %x) {
entry:
  %m = and int %x, 15
  ret int %m
}
"""

    def _caller(self, helper):
        return """
declare int %HELPER(int %x)

int %pick(int %x) {
entry:
  %table = alloca [16 x int]
  %i = call int %HELPER(int %x)
  %slot = getelementptr [16 x int]* %table, long 0, int %i
  %v = load int* %slot
  ret int %v
}
""".replace("HELPER", helper)

    def test_range_summary_suppresses_note_through_call(self):
        units = [("lib.ll", self.MASKED), ("use.ll", self._caller("mask"))]
        result = _wp(units, ["gep-bounds"])
        assert not result.diagnostics

    def test_unproven_index_still_noted(self):
        unbounded = self.MASKED.replace("%mask", "%ident") \
            .replace("  %m = and int %x, 15\n", "") \
            .replace("ret int %m", "ret int %x")
        units = [("lib.ll", unbounded), ("use.ll", self._caller("ident"))]
        result = _wp(units, ["gep-bounds"])
        notes = [d for d in result.diagnostics if d.checker == "gep-bounds"]
        assert notes and all(d.severity == Severity.NOTE for d in notes)

    def test_value_range_interval_arithmetic(self):
        module = parse_module("""
int %f(int %x) {
entry:
  %m = and int %x, 7
  %d = mul int %m, 2
  %s = add int %d, 1
  ret int %s
}
""")
        blocks = list(module.functions["f"].blocks)
        s = blocks[0].instructions[2]
        assert value_range(s) == (1, 15)
        assert range_proves_in_bounds(value_range(s), 16)
        assert not range_proves_in_bounds(value_range(s), 15)
