"""Regression corpus: reduced reproducers for bugs the fuzzer found.

Every entry here is a minimized program that once made two
supposedly-equivalent paths disagree.  Each test pins the *full* oracle
matrix (interpreter at -O0/-O1/-O2, text and bytecode round-trips,
both simulated backends at -O0/-O2), so a regression in any layer —
optimizer, printer, bytecode, instruction selection, register
allocation, simulation semantics — trips the same wire that caught the
original bug.
"""

import pytest

from repro.core import parse_module, print_module
from repro.core.instructions import CastInst
from repro.core import types
from repro.driver.pipelines import optimize_module
from repro.frontend import compile_source
from repro.fuzz import HarnessConfig, check_program

CONFIG = HarnessConfig(step_limit=1_000_000)


def assert_all_oracles_agree(source: str, expected_output: str = None):
    result = check_program(source, CONFIG)
    assert result.error is None, result.error
    assert not result.skipped, "reference timed out; fixture too slow"
    assert result.divergences == [], [
        d.describe() for d in result.divergences]
    if expected_output is not None:
        assert result.reference.output == expected_output


# ----------------------------------------------------------------------
# instcombine: double-cast fold must respect the middle type's
# reinterpretation.  (long)(uint)x zero-extends; folding it to (long)x
# sign-extended — found by the interp -O0 vs -O1 oracle.
# ----------------------------------------------------------------------

def test_double_cast_widening_keeps_middle_signedness():
    assert_all_oracles_agree("""
extern int print_long(long x);
long widen(int x) { return (long)(uint)x; }
int main() {
  print_long(widen(-5));
  print_long(widen(2147483647));
  return 0;
}
""", "4294967291\n2147483647\n")


def test_double_cast_fold_unit():
    """The fold itself: widening past the middle type must survive
    instcombine with the middle cast intact."""
    module = parse_module("""
long %widen(int %x) {
entry:
  %mid = cast int %x to uint
  %wide = cast uint %mid to long
  ret long %wide
}
""")
    optimize_module(module, level=1)
    widen = module.functions["widen"]
    casts = [i for i in widen.instructions() if isinstance(i, CastInst)]
    # However it is expressed, the semantics must be zero-extension:
    from repro.execution.interpreter import Interpreter

    interp = Interpreter(module)
    assert interp.run("widen", [-5]) == 4294967291
    # And the shrunken form may not be a single sign-extending cast.
    assert not (len(casts) == 1
                and casts[0].value.type is types.INT
                and casts[0].type is types.LONG)


def test_double_cast_corpus_program_through_validator():
    """The original corpus entry, regenerated with the translation
    validator riding along as a third oracle column: the (fixed) fold
    must produce zero validation findings on top of the zero end-to-end
    divergences."""
    result = check_program("""
extern int print_long(long x);
long widen(int x) { return (long)(uint)x; }
int main() {
  print_long(widen(-5));
  print_long(widen(2147483647));
  return 0;
}
""", HarnessConfig(step_limit=1_000_000, translation_validate=True))
    assert result.error is None, result.error
    assert result.divergences == [], [
        d.describe() for d in result.divergences]


def test_validator_rejects_resurrected_double_cast_fold():
    """Unit pin: the pre-fix fold (resurrected behind the test-only
    ``unsafe_cast_fold`` switch) must be caught by the validator as a
    refinement violation with a concrete counterexample — this is the
    bug the fuzzer needed a whole oracle matrix to find, caught at the
    pass boundary instead."""
    from repro.transforms.instcombine import InstCombine
    from repro.tvalid import FAILED, TranslationValidator

    text = """
long %widen(int %x) {
entry:
  %mid = cast int %x to uint
  %wide = cast uint %mid to long
  ret long %wide
}
"""
    before = parse_module(text)
    after = parse_module(text)
    InstCombine(unsafe_cast_fold=True).run_on_function(
        after.functions["widen"])
    results = TranslationValidator().validate(before, after)
    assert len(results) == 1
    verdict = results[0]
    assert verdict.status == FAILED
    assert verdict.counterexample is not None
    # Any negative int input witnesses the sign-vs-zero extension bug.
    assert verdict.counterexample.args[0] < 0


def test_cast_chain_verifier_rejects_buggy_triple():
    """The synthesizer's cast auditor agrees: (long)(uint)(int x) is
    not foldable to (long)x, with a concrete witness."""
    from repro.tvalid.synth import verify_cast_chain

    witness = verify_cast_chain(types.INT, types.UINT, types.LONG)
    assert witness is not None
    assert types.LONG.wrap(types.UINT.wrap(witness)) != types.LONG.wrap(
        witness)


def test_double_cast_narrowing_still_folds():
    """The legal half of the fold must keep working: narrowing or
    same-width outer casts ignore the middle reinterpretation."""
    module = parse_module("""
sbyte %narrow(int %x) {
entry:
  %mid = cast int %x to uint
  %low = cast uint %mid to sbyte
  ret sbyte %low
}
""")
    optimize_module(module, level=1)
    narrow = module.functions["narrow"]
    casts = [i for i in narrow.instructions() if isinstance(i, CastInst)]
    assert len(casts) == 1, print_module(module)
    assert casts[0].value.type is types.INT


# ----------------------------------------------------------------------
# isel: comparisons must encode signedness/floatness in the condition
# code.  With signed-only ccs, uint/ulong comparisons crossing the sign
# boundary flip — found by the sim-x86/-sparc vs interp oracle.
# ----------------------------------------------------------------------

def test_unsigned_comparisons_in_backend():
    assert_all_oracles_agree("""
extern int print_int(int x);
int main() {
  uint big = 2147483648u;
  uint one = 1u;
  ulong huge = 9223372036854775808ul;
  print_int((int)(big > one));
  print_int((int)(big < one));
  print_int((int)(huge > 5ul));
  print_int((int)(one <= big));
  double d = 2.5;
  print_int((int)(d > 2.0));
  print_int((int)(d < -1.0));
  return 0;
}
""", "1\n0\n1\n1\n1\n0\n")


# ----------------------------------------------------------------------
# isel: casts are conversions, not register moves.  A cast lowered to
# MOV keeps the full 64-bit pattern: truncations keep high bits,
# widenings miss the sign/zero extension — found by the backend oracle.
# ----------------------------------------------------------------------

def test_cast_truncation_and_extension_in_backend():
    assert_all_oracles_agree("""
extern int print_int(int x);
extern int print_long(long x);
int main() {
  long wide = 4294967298l;
  int truncated = (int)wide;
  print_int(truncated);
  char c = (char)511;
  print_int((int)c);
  int negative = -5;
  print_long((long)(uint)negative);
  print_long((long)negative);
  uint u = 4000000000u;
  print_long((long)u);
  return 0;
}
""", "2\n-1\n4294967291\n-5\n4000000000\n")


# ----------------------------------------------------------------------
# isel: ALU ops carry (kind, size).  Untyped 64-bit ALU loses 32-bit
# wrapping and signed division semantics — found by the backend oracle.
# ----------------------------------------------------------------------

def test_narrow_arithmetic_wraps_in_backend():
    assert_all_oracles_agree("""
extern int print_int(int x);
extern int print_long(long x);
int main() {
  int big = 2000000000;
  print_int(big + big);
  uint ubig = 4000000000u;
  print_long((long)(ubig + ubig));
  int prod = 100000 * 100000;
  print_int(prod);
  short s = (short)30000;
  print_int((int)((short)(s + s)));
  return 0;
}
""", "-294967296\n3705032704\n1410065408\n-5536\n")


def test_int_min_division_and_remainder():
    assert_all_oracles_agree("""
extern int print_int(int x);
extern int print_long(long x);
int main() {
  int min = -2147483647 - 1;
  int minus_one = -1;
  print_int(min / (minus_one | 1));
  print_int(min % (minus_one | 1));
  print_int((-7) / 2);
  print_int((-7) % 2);
  print_int(7 / (-2));
  long lmin = -9223372036854775807l - 1l;
  print_long(lmin / (-1l | 1l));
  return 0;
}
""", "-2147483648\n0\n-3\n-1\n-3\n-9223372036854775808\n")


def test_over_wide_shifts_saturate_consistently():
    assert_all_oracles_agree("""
extern int print_int(int x);
extern int print_long(long x);
int main() {
  int x = 123456;
  print_int(x << 35);
  print_int(x >> 40);
  int neg = -9;
  print_int(neg >> 33);
  uint u = 3000000000u;
  print_long((long)(u >> 34));
  print_int(1 << 31);
  return 0;
}
""", "0\n0\n-1\n0\n-2147483648\n")


# ----------------------------------------------------------------------
# phi elimination: parallel-copy semantics (lost copy / swap problem)
# must survive the backend at -O2, where mem2reg builds real phi
# cycles — guarded by the sim-*-O2 oracle.
# ----------------------------------------------------------------------

def test_phi_swap_in_backend():
    assert_all_oracles_agree("""
extern int print_int(int x);
int main() {
  int a = 1;
  int b = 2;
  int i = 0;
  for (i = 0; i < 7; i = i + 1) {
    int t = a;
    a = b;
    b = t + b;
  }
  print_int(a);
  print_int(b);
  return 0;
}
""", "34\n55\n")


def test_loop_carried_dependencies_in_backend():
    assert_all_oracles_agree("""
extern int print_long(long x);
int main() {
  long x = 1;
  long y = 1;
  long z = 0;
  int i = 0;
  for (i = 0; i < 10; i = i + 1) {
    z = x + y;
    x = y * 2 - z;
    y = z - x;
  }
  print_long(x);
  print_long(y);
  print_long(z);
  return 0;
}
""")


# ----------------------------------------------------------------------
# linear scan: a value live across a loop back edge must keep its
# register for the whole loop span — including values whose interval
# *starts* inside the span because block layout put a defining block
# (e.g. a phi copy or a join-block temporary) after the loop head.
#
# Found by the fuzzer as seed 1026: sim-sparc-O2 diverged while every
# other oracle agreed.  The old interval extension only covered
# intervals starting *before* the loop head, so the bug needed a
# register file large enough to avoid spilling (spill slots are always
# reloaded, so the 8-register x86-like target masked it).
# ----------------------------------------------------------------------

def test_register_reuse_across_loop_backedge():
    # Hand-minimized from fuzzer seed 1026.  The branchy join feeding
    # the second `if` makes mid-loop intervals; at -O2 on the
    # 26-register target the clobbered value changes a14[0].
    assert_all_oracles_agree("""
extern int print_long(long x);
uint f11(short p12) {
  uint v13 = (uint)(0 < p12);
  return ((- v13) % (((uint)p12 * v13) | 1u)) - v13;
}
int main() {
  uint a14[4];
  int i15 = 0;
  for (i15 = 0; i15 < 4; i15 = i15 + 1) {
    a14[i15] = (uint)(i15 * 7 - 13);
  }
  long checksum = 0;
  if (1 < 2) {
    int i19 = 0;
    for (i19 = 0; i19 < 3; i19 = i19 + 1) {
      checksum = checksum + i19;
    }
  } else {
    checksum = (long)a14[3];
  }
  if ((- (char)i15) < ((char)i15 ^ (char)checksum)) {
    a14[(- i15) & 3] = 7u;
  } else {
    int i21 = 0;
    for (i21 = 0; i21 < 11; i21 = i21 + 1) {
      checksum = checksum ^ (long)(f11((short)i15));
      checksum = checksum + i21;
    }
  }
  checksum = checksum * 31 + (long)a14[0];
  print_long(checksum);
  return (int)(((ulong)checksum) % 251ul);
}
""", "100\n")


def test_interval_extension_covers_defs_inside_loop_span():
    """Unit-level pin for the same bug: an interval defined at the loop
    head itself (start == target block start) must be extended to the
    back edge, not left to die mid-loop."""
    from repro.backend.machine import (
        MachineBlock, MachineFunction, MachineInstr, MOp,
    )
    from repro.backend.regalloc import LinearScanAllocator

    fn = MachineFunction("f")
    entry = fn.new_block("entry")
    head = fn.new_block("head")
    latch = fn.new_block("latch")
    exit_block = fn.new_block("exit")

    entry.append(MachineInstr(MOp.LI, dst=0, imm=1))
    entry.append(MachineInstr(MOp.JMP, block=head))
    # vreg 5 is defined at the first instruction of the loop head and
    # read in the latch — and again on the next trip around the loop.
    head.append(MachineInstr(MOp.ALUI, sub="add", dst=5, srcs=(0,),
                             imm=1, kind="s", size=8))
    head.append(MachineInstr(MOp.JMP, block=latch))
    latch.append(MachineInstr(MOp.ALU, sub="add", dst=0, srcs=(0, 5),
                              kind="s", size=8))
    backedge = latch.append(MachineInstr(MOp.CMPBR, sub="lt",
                                         srcs=(0, 5), block=head))
    latch.append(MachineInstr(MOp.JMP, block=exit_block))
    exit_block.append(MachineInstr(MOp.SETRET, srcs=(0,)))
    exit_block.append(MachineInstr(MOp.RET))

    allocator = LinearScanAllocator(26)
    order = [inst for block in fn.blocks for inst in block.instructions]
    spans = []
    position = 0
    for block in fn.blocks:
        spans.append((position, position + len(block.instructions)))
        position += len(block.instructions)
    intervals = allocator._build_intervals(fn, order, spans)
    backedge_index = order.index(backedge)
    assert intervals[5].end >= backedge_index, intervals[5].__dict__


# ----------------------------------------------------------------------
# representations: names and structure must survive both round-trips
# byte-for-byte (the harness writes bytecode with names kept).
# ----------------------------------------------------------------------

def test_roundtrips_preserve_structured_program():
    assert_all_oracles_agree("""
extern int print_int(int x);
struct Point { int x; int y; };
int g_scale = 3;
int area(struct Point *p) { return p->x * p->y; }
int main() {
  struct Point pt;
  pt.x = 6;
  pt.y = 7;
  int r = area(&pt) * g_scale;
  print_int(r);
  return r % 256;
}
""", "126\n")
