"""Quickstart: build IR with the builder API, optimize it, run it, and
round-trip it through all three equivalent representations.

Run:  python examples/quickstart.py
"""

from repro.bitcode import read_bytecode, write_bytecode
from repro.core import (
    ConstantInt, IRBuilder, Module, parse_module, print_module, types,
    verify_module,
)
from repro.driver import optimize_module
from repro.execution import Interpreter


def build_module() -> Module:
    """A module computing gcd(a, b) and a main() that calls it."""
    module = Module("quickstart")

    gcd = module.new_function(
        types.function(types.INT, [types.INT, types.INT]), "gcd",
        arg_names=["a", "b"],
    )
    entry = gcd.append_block("entry")
    loop = gcd.append_block("loop")
    body = gcd.append_block("body")
    done = gcd.append_block("done")

    builder = IRBuilder(entry)
    builder.br(loop)

    # The front-end way would be allocas + mem2reg; here we write the
    # phis by hand to show the SSA form directly.
    builder.position_at_end(loop)
    a_phi = builder.phi(types.INT, "a.cur")
    b_phi = builder.phi(types.INT, "b.cur")
    a_phi.add_incoming(gcd.args[0], entry)
    b_phi.add_incoming(gcd.args[1], entry)
    zero = ConstantInt(types.INT, 0)
    builder.cond_br(builder.setne(b_phi, zero, "nonzero"), body, done)

    builder.position_at_end(body)
    remainder = builder.rem(a_phi, b_phi, "r")
    a_phi.add_incoming(b_phi, body)
    b_phi.add_incoming(remainder, body)
    builder.br(loop)

    builder.position_at_end(done)
    builder.ret(a_phi)

    main = module.new_function(types.function(types.INT, []), "main")
    builder = IRBuilder(main.append_block("entry"))
    result = builder.call(gcd, [ConstantInt(types.INT, 1071),
                                ConstantInt(types.INT, 462)], "g")
    builder.ret(result)

    verify_module(module)
    return module


def main() -> None:
    module = build_module()

    print("=== textual representation ===")
    text = print_module(module)
    print(text)

    print("=== executing (interpreter / Execution Engine) ===")
    interpreter = Interpreter(module)
    print("gcd(1071, 462) =", interpreter.run("main"), f"({interpreter.steps} steps)")

    print()
    print("=== round trips ===")
    reparsed = parse_module(text)
    assert print_module(reparsed) == text
    print("text -> IR -> text: identical")

    bytecode = write_bytecode(module, strip_names=False)
    decoded = read_bytecode(bytecode)
    assert print_module(decoded) == text
    print(f"IR -> {len(bytecode)}-byte bytecode -> IR: identical")

    print()
    print("=== optimizing at -O2 ===")
    optimize_module(module, level=2)
    print(print_module(module))
    rerun = Interpreter(module)
    print("gcd(1071, 462) =", rerun.run("main"), f"({rerun.steps} steps)")


if __name__ == "__main__":
    main()
