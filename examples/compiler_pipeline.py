"""The whole-program pipeline of paper Figure 4: two translation units
are compiled by the LC front-end, linked, interprocedurally optimized,
analysed by DSA, and emitted as bytecode plus native images for both
targets.

Run:  python examples/compiler_pipeline.py
"""

from repro.analysis.dsa import DataStructureAnalysis
from repro.backend import SPARC, X86, compile_for_size, print_machine_function
from repro.bitcode import write_bytecode
from repro.driver import link_time_optimize, optimize_module
from repro.execution import Interpreter
from repro.frontend import compile_source
from repro.linker import link_modules

#: Translation unit 1: a tiny intrusive-list library.
LIBRARY = r"""
struct Item { int key; int payload; struct Item *next; };
typedef struct Item Item;

Item *list_push(Item *head, int key, int payload) {
  Item *item = malloc(Item);
  item->key = key;
  item->payload = payload;
  item->next = head;
  return item;
}

Item *list_find(Item *head, int key) {
  while (head != null) {
    if (head->key == key) { return head; }
    head = head->next;
  }
  return null;
}

int list_sum(Item *head) {
  int total = 0;
  while (head != null) {
    total += head->payload;
    head = head->next;
  }
  return total;
}

// Dead code for the link-time optimizer to find:
static int never_called(int x) { return x * 31337; }
int list_length_unused(Item *head) {
  int n = 0;
  while (head != null) { n = n + 1; head = head->next; }
  return n;
}
"""

#: Translation unit 2: the application.
APPLICATION = r"""
struct Item { int key; int payload; struct Item *next; };
typedef struct Item Item;
extern Item *list_push(Item *head, int key, int payload);
extern Item *list_find(Item *head, int key);
extern int list_sum(Item *head);
extern int print_int(int x);

int main() {
  Item *head = null;
  int i;
  for (i = 0; i < 50; i++) {
    head = list_push(head, i, i * i);
  }
  Item *hit = list_find(head, 25);
  int sum = list_sum(head);
  print_int(hit->payload);
  print_int(sum);
  return sum % 251;
}
"""


def main() -> None:
    print("=== front-end: compiling two translation units ===")
    modules = []
    for index, source in enumerate((LIBRARY, APPLICATION)):
        module = compile_source(source, f"tu{index}")
        optimize_module(module, level=2)
        modules.append(module)
        print(f"tu{index}: {module.instruction_count()} instructions, "
              f"{len(module.functions)} functions")

    print()
    print("=== linking + link-time interprocedural optimization ===")
    linked = link_modules(modules, "pipeline")
    before = linked.instruction_count()
    before_functions = len(linked.functions)
    link_time_optimize(linked, level=2)
    print(f"instructions: {before} -> {linked.instruction_count()}")
    print(f"functions: {before_functions} -> {len(linked.functions)} "
          "(dead library code eliminated, hot paths inlined)")

    print()
    print("=== Data Structure Analysis (typed memory accesses) ===")
    report = DataStructureAnalysis(linked).report()
    print(f"{report.typed}/{report.total} static accesses provably typed "
          f"({report.typed_percent:.1f}%)")

    print()
    print("=== the three artifacts ===")
    bytecode = write_bytecode(linked)
    x86 = compile_for_size(linked, X86)
    sparc = compile_for_size(linked, SPARC)
    print(f"LLVM bytecode: {len(bytecode)} bytes")
    print(f"x86 image:     {x86.total_size} bytes "
          f"({x86.code_size} code, {len(x86.data)} data)")
    print(f"sparc image:   {sparc.total_size} bytes "
          f"({sparc.code_size} code, {len(sparc.data)} data)")

    print()
    print("=== machine code for main (x86-like, first 25 lines) ===")
    for line in print_machine_function(
        x86.functions[0].machine_fn
    ).splitlines()[:25]:
        print(line)

    print()
    print("=== executing the optimized program ===")
    interpreter = Interpreter(linked)
    code = interpreter.run("main")
    print("output:", "".join(interpreter.output).split())
    print("exit code:", code)


if __name__ == "__main__":
    main()
