"""The lifelong loop of paper Figure 4 / sections 3.5-3.6.

One program goes through the full lifecycle: static compile + link-time
IPO, instrumented end-user runs, profile accumulation, and an offline
(idle-time) reoptimization that inlines hot paths and forms superblock
traces for biased hot loops — then runs again, faster, with identical
output.

Run:  python examples/lifelong_optimization.py
"""

from repro.driver import LifelongSession

#: An interpreter-shaped workload: a hot dispatch loop with one very
#: biased branch — exactly what trace formation wants.
PROGRAM = r"""
extern int print_int(int x);

static uint seed = 42;
static uint next_random() {
  seed = seed ^ (seed << 13);
  seed = seed ^ (seed >> 17);
  seed = seed ^ (seed << 5);
  return seed;
}

static int memory[256];

static int step_vm(int pc, int op) {
  if (op < 90) {                       // the hot path: 90% of ops
    memory[pc & 255] = memory[pc & 255] + op;
    return pc + 1;
  }
  if (op < 95) {                       // occasional backward jump
    return pc - (op - 89);
  }
  memory[(pc + op) & 255] = 0;         // rare clear
  return pc + 2;
}

int main() {
  int pc = 0;
  int executed = 0;
  while (executed < 20000) {
    int op = (int)(next_random() % 100);
    pc = step_vm(pc, op);
    if (pc < 0) { pc = 0; }
    executed = executed + 1;
  }
  int check = 0;
  int i;
  for (i = 0; i < 256; i++) {
    check = (check * 31 + memory[i]) % 1000003;
  }
  print_int(check);
  return check % 251;
}
"""


def main() -> None:
    print("=== static compile + link-time IPO ===")
    session = LifelongSession([PROGRAM], "vm")
    print(f"bytecode shipped with the executable: {len(session.bytecode)} bytes")

    print()
    print("=== end-user runs (instrumented) ===")
    baseline = session.run_uninstrumented()
    print(f"baseline: exit={baseline.exit_value}, {baseline.steps} steps")
    for run in range(3):
        result = session.run()
        print(f"profiled run {run + 1}: exit={result.exit_value}")
    hot_loops = session.profile.hot_loops(threshold=1000)
    print("hot loops observed:",
          [(fn, block, count) for fn, block, count in hot_loops[:3]])

    print()
    print("=== idle-time reoptimization ===")
    report = session.reoptimize(hot_call_threshold=2, hot_loop_threshold=500)
    print(f"hot functions: {report.hot_functions}")
    print(f"calls inlined: {report.inlined_calls}, "
          f"traces formed: {report.traces_formed}, "
          f"blocks re-laid-out: {report.blocks_reordered}")

    print()
    print("=== the next run ===")
    after = session.run_uninstrumented()
    print(f"reoptimized: exit={after.exit_value}, {after.steps} steps")
    assert after.exit_value == baseline.exit_value
    assert after.output == baseline.output
    saved = 1 - after.steps / baseline.steps
    print(f"identical output, {saved:.1%} fewer interpreter steps")
    print(f"updated bytecode ({len(session.bytecode)} bytes) replaces the "
          "shipped copy, ready for the next cycle")


if __name__ == "__main__":
    main()
