"""Exception handling end-to-end (paper section 2.4, Figures 1-3).

Shows the same mechanism at two levels:

1. the LC surface syntax — ``try``/``catch``/``throw`` lowered to
   ``invoke``/``unwind`` by the front-end, optimized, and executed;
2. the C++-style lowering of Figures 2 and 3 — runtime-allocated
   exception objects, cleanup (destructor) code run during unwinding,
   typeid dispatch — built directly with the ``cxxfe`` helpers.

Run:  python examples/exceptions.py
"""

from repro.core import (
    ConstantInt, IRBuilder, Module, print_module, types, verify_module,
)
from repro.cxxfe import build_throw, build_try_catch
from repro.cxxfe.exceptions import current_exception
from repro.driver import compile_and_link
from repro.execution import Interpreter
from repro.frontend import compile_source

LC_PROGRAM = r"""
extern int print_str(char *s);
extern int print_int(int x);

static int parse_digit(char c) {
  if (c < '0' || c > '9') { throw; }   // unwinds to the caller's catch
  return (int)c - (int)'0';
}

static int parse_number(char *text) {
  int value = 0;
  while (*text != (char)0) {
    value = value * 10 + parse_digit(*text);
    text = text + 1;
  }
  return value;
}

int main() {
  int good = 0;
  int bad = 0;
  try {
    good = parse_number("2026");
  } catch {
    good = 0 - 1;
  }
  try {
    bad = parse_number("12x4");
  } catch {
    bad = 0 - 1;
  }
  print_int(good);
  print_int(bad);
  return good + bad;
}
"""


def lc_level() -> None:
    print("=== LC try/catch/throw, unoptimized vs optimized ===")
    unopt = compile_source(LC_PROGRAM, "parse")
    raw = Interpreter(unopt)
    print("unoptimized:", raw.run("main"), "output:",
          "".join(raw.output).split(), f"({raw.steps} steps)")
    opt = compile_and_link([LC_PROGRAM], "parse")
    cooked = Interpreter(opt)
    print("optimized:  ", cooked.run("main"), "output:",
          "".join(cooked.output).split(), f"({cooked.steps} steps)")


def figure_2_and_3() -> None:
    print()
    print("=== the C++ lowering of Figures 2 and 3 ===")
    module = Module("cxx_eh")

    # func() from Figure 1: might throw.  Here: throws iff x is odd.
    func = module.new_function(types.function(types.VOID, [types.INT]),
                               "func", arg_names=["x"])
    builder = IRBuilder(func.append_block("entry"))
    ok = func.append_block("even")
    bad = func.append_block("odd")
    parity = builder.rem(func.args[0], ConstantInt(types.INT, 2), "p")
    builder.cond_br(builder.seteq(parity, ConstantInt(types.INT, 0), "even"),
                    ok, bad)
    IRBuilder(ok).ret_void()
    # Figure 3: allocate the exception object through the runtime,
    # construct the value, register it, unwind.
    build_throw(module, IRBuilder(bad), func.args[0], typeid=4)

    destructor_runs = module.new_global(types.INT, "destructor_runs",
                                        ConstantInt(types.INT, 0))

    caller = module.new_function(types.function(types.INT, [types.INT]),
                                 "call_with_cleanup", arg_names=["x"])
    builder = IRBuilder(caller.append_block("entry"))
    caught = caller.append_block("caught")

    def run_destructor(handler: IRBuilder) -> None:
        # Figure 2: "If unwind occurs, execution continues here.
        # First, destroy the object" — then we stop the unwind at the
        # catch instead of continuing it.
        count = handler.load(destructor_runs, "d")
        handler.store(handler.add(count, ConstantInt(types.INT, 1), "d1"),
                      destructor_runs)

    _, normal = build_try_catch(
        module, builder, func, [caller.args[0]],
        handler_body=lambda handler: handler.br(caught),
        cleanup=run_destructor,
    )
    normal.ret(ConstantInt(types.INT, 0))
    catcher = IRBuilder(caught)
    _, typeid = current_exception(module, catcher)
    catcher.ret(typeid)

    verify_module(module)
    print(print_module(module))

    interpreter = Interpreter(module)
    print("call_with_cleanup(8)  ->", interpreter.run("call_with_cleanup", [8]))
    print("call_with_cleanup(13) ->", interpreter.run("call_with_cleanup", [13]),
          "(the typeid; destructor ran during unwinding)")


def _run_all() -> None:
    lc_level()
    figure_2_and_3()


def setjmp_longjmp() -> None:
    """The same unwinding mechanism implementing C's setjmp/longjmp."""
    from repro.core import Module
    from repro.cxxfe import SetjmpRegion, emit_longjmp

    print()
    print("=== setjmp/longjmp on the same mechanism ===")
    module = Module("sjlj")
    deep = module.new_function(types.function(types.VOID, [types.INT]),
                               "deep", arg_names=["n"])
    builder = IRBuilder(deep.append_block("entry"))
    stop = deep.append_block("stop")
    go = deep.append_block("go")
    builder.cond_br(builder.setle(deep.args[0], ConstantInt(types.INT, 0),
                                  "done"), stop, go)
    emit_longjmp(module, IRBuilder(stop), ConstantInt(types.INT, 1),
                 ConstantInt(types.INT, 123))
    go_builder = IRBuilder(go)
    go_builder.call(deep, [go_builder.sub(deep.args[0],
                                          ConstantInt(types.INT, 1), "m")])
    go_builder.ret_void()

    main = module.new_function(types.function(types.INT, []), "sjlj_main")
    builder = IRBuilder(main.append_block("entry"))
    region = SetjmpRegion.open(module, builder, ConstantInt(types.INT, 1))
    region.call(deep, [ConstantInt(types.INT, 6)])
    after = region.close()
    after.ret(region.result(after))
    verify_module(module)
    result = Interpreter(module).run("sjlj_main")
    print("setjmp returned 0 on entry; after a longjmp six frames down it")
    print("returned the longjmp value:", result)


if __name__ == "__main__":
    _run_all()
    setjmp_longjmp()
