"""Virtual call resolution (paper section 4.1.2).

Lowers a C++-style class hierarchy exactly as the paper describes —
nested structure types, constant vtable globals of typed function
pointers, vtable pointers installed at allocation — then shows the
link-time optimizer resolving and inlining the virtual calls.

Run:  python examples/devirtualization.py
"""

from repro.core import (
    ConstantInt, IRBuilder, Module, print_module, types, verify_module,
)
from repro.core.instructions import CallInst
from repro.core.module import Function
from repro.cxxfe import ClassBuilder
from repro.driver import link_time_optimize, optimize_module
from repro.execution import Interpreter


def build_animals() -> Module:
    """class Animal { virtual int legs(); virtual int noise(); };
    class Dog : Animal; class Bird : Animal { int noise() override; }"""
    module = Module("animals")
    classes = ClassBuilder(module)

    def constant_method(name: str, value: int) -> Function:
        def body(builder, this):
            builder.ret(ConstantInt(types.INT, value))

        return classes.emit_method(name, body)

    animal = classes.define_class(
        "Animal", [],
        {"legs": constant_method("Animal.legs", 4),
         "noise": constant_method("Animal.noise", 1)},
    )
    dog = classes.define_class("Dog", [], {}, base=animal)
    bird = classes.define_class(
        "Bird", [],
        {"legs": constant_method("Bird.legs", 2),
         "noise": constant_method("Bird.noise", 9)},
        base=animal,
    )

    main = module.new_function(types.function(types.INT, []), "main")
    builder = IRBuilder(main.append_block("entry"))
    total = None
    for info in (dog, bird):
        obj = classes.emit_new(builder, info)
        legs = classes.emit_virtual_call(builder, info, obj, "legs", "legs")
        noise = classes.emit_virtual_call(builder, info, obj, "noise", "noise")
        contribution = builder.mul(legs, noise, "part")
        total = contribution if total is None else builder.add(
            total, contribution, "total"
        )
    builder.ret(total)
    verify_module(module)
    return module


def count_calls(module: Module) -> tuple[int, int]:
    direct = 0
    indirect = 0
    for function in module.defined_functions():
        for inst in function.instructions():
            if isinstance(inst, CallInst):
                if isinstance(inst.callee, Function):
                    direct += 1
                else:
                    indirect += 1
    return direct, indirect


def main() -> None:
    module = build_animals()
    print("=== before optimization ===")
    direct, indirect = count_calls(module)
    print(f"calls in module: {direct} direct, {indirect} virtual (indirect)")
    print("main(): Dog.legs*Dog.noise + Bird.legs*Bird.noise =",
          Interpreter(module).run("main"))

    optimize_module(module, level=2)
    link_time_optimize(module, level=2)

    print()
    print("=== after link-time optimization ===")
    direct, indirect = count_calls(module)
    print(f"calls in module: {direct} direct, {indirect} virtual (indirect)")
    print(print_module(module))
    print("main() still computes:", Interpreter(module).run("main"))
    print("(4*1 + 2*9 = 22; the virtual dispatch constant-folded away)")


if __name__ == "__main__":
    main()
